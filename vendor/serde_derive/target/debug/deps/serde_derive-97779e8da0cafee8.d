/root/repo/vendor/serde_derive/target/debug/deps/serde_derive-97779e8da0cafee8.d: src/lib.rs Cargo.toml

/root/repo/vendor/serde_derive/target/debug/deps/libserde_derive-97779e8da0cafee8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
