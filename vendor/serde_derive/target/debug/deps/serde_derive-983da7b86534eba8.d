/root/repo/vendor/serde_derive/target/debug/deps/serde_derive-983da7b86534eba8.d: src/lib.rs Cargo.toml

/root/repo/vendor/serde_derive/target/debug/deps/libserde_derive-983da7b86534eba8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
