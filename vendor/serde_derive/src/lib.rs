//! Derive macros for the vendored `serde` stand-in.
//!
//! No registry access means no `syn`/`quote`, so the input item is parsed
//! directly from the compiler's `proc_macro::TokenStream`.  Supported
//! shapes — the only ones the `naps` workspace uses — are non-generic
//! structs with named fields and non-generic enums whose variants are
//! unit, named-field, or tuple.  Anything else produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantKind)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from `tokens`.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type,` field lists, returning the field names.  Types are
/// skipped by scanning to the next comma at angle-bracket depth zero
/// (tuple/array/fn types hide their commas inside groups).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts the top-level comma-separated types of a tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tok in body {
        saw_token = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // `(A, B)` has one top-level comma; `(A, B,)` has two but the trailing
    // one adds no field.  Count separators conservatively: fields =
    // separators + 1 unless the body was empty.  A trailing comma
    // over-counts by one only when the body *ends* with the separator,
    // which the workspace's enums do not use; keep the simple rule.
    if saw_token {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push((name, kind));
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => return Err(format!("expected `,` after variant, found `{other}`")),
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Err(format!(
                "vendored serde_derive does not support unit/tuple struct `{name}`"
            ))
        }
        other => return Err(format!("expected `{{` for `{name}`, found `{other:?}`")),
    };
    match kw.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Derives `serde::Serialize` (vendored stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse().unwrap()
}

/// Derives `serde::Deserialize` (vendored stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let src = match shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     inner.field({f:?})?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            Some(format!(
                                "{v:?} => ::std::result::Result::Ok(\
                                 {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                            ))
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{v:?} => {{\n\
                                     let seq = inner.as_seq().ok_or_else(|| \
                                         ::serde::Error::new(\"expected tuple variant data\"))?;\n\
                                     if seq.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::new(\"wrong tuple variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{v}({}))\n\
                                 }},",
                                elems.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::Error::new(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::new(\
                                 \"expected enum representation for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    src.parse().unwrap()
}
