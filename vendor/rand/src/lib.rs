//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements exactly the API subset the `naps` workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].  The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for tests,
//! data synthesis and benchmarks, though **not** a drop-in bit-for-bit
//! reproduction of upstream `StdRng` streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-type uniform sampling over an interval, mirroring upstream's
/// `SampleUniform` so that `gen_range` inference flows through a single
/// blanket impl (separate per-type impls would make float literals
/// default to `f64` prematurely).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the span sizes used here
                // (64 random bits over spans << 2^64).
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding.  Deterministic per seed; not the upstream `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(-2.5..4.0f32);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
