/root/repo/vendor/rand/target/debug/deps/rand-67f1350969e496e6.d: src/lib.rs Cargo.toml

/root/repo/vendor/rand/target/debug/deps/librand-67f1350969e496e6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
