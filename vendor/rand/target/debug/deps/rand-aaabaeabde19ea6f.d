/root/repo/vendor/rand/target/debug/deps/rand-aaabaeabde19ea6f.d: src/lib.rs Cargo.toml

/root/repo/vendor/rand/target/debug/deps/librand-aaabaeabde19ea6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
