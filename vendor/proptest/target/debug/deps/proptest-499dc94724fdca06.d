/root/repo/vendor/proptest/target/debug/deps/proptest-499dc94724fdca06.d: src/lib.rs Cargo.toml

/root/repo/vendor/proptest/target/debug/deps/libproptest-499dc94724fdca06.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
