/root/repo/vendor/proptest/target/debug/deps/proptest-2718ccfcd0a64895.d: src/lib.rs Cargo.toml

/root/repo/vendor/proptest/target/debug/deps/libproptest-2718ccfcd0a64895.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
