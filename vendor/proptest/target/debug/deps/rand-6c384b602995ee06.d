/root/repo/vendor/proptest/target/debug/deps/rand-6c384b602995ee06.d: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand-6c384b602995ee06.rmeta: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/rand/src/lib.rs:
