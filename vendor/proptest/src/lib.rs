//! Offline stand-in for `proptest`.
//!
//! Implements the subset the `naps` property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), [`Strategy`] with `prop_map`,
//! [`any`], range strategies, `collection::vec`, and the `prop_assert*`
//! macros.  Cases are generated from a deterministic per-test RNG (seeded
//! by hashing the test name), so failures reproduce; there is **no
//! shrinking** — a failing case panics with the generated inputs' debug
//! representation via the standard assert messages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test deterministic random source handed to [`Strategy::generate`].
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the source from a test name (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy for "any value of `T`" — [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniformly random values of `T` over its natural domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen()
            }
        }
    )*};
}

impl_any!(bool, u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy type.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __pt_case in 0..__pt_cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn` runs its body for every generated
/// case.  Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = <$crate::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_and_map(v in collection::vec(any::<bool>(), 1..7),
                               w in collection::vec(0u32..5, 4)) {
            prop_assert!((1..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (0usize..10).prop_map(|x| x * 2);
        let mut rng = TestRng::for_test("prop_map_applies");
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = 0u64..u64::MAX;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
