/root/repo/vendor/serde/target/debug/deps/serde-2e3a96b3fe6ff25e.d: src/lib.rs Cargo.toml

/root/repo/vendor/serde/target/debug/deps/libserde-2e3a96b3fe6ff25e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=--no-deps__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
