/root/repo/vendor/serde/target/debug/deps/serde-7a9081e1ecbfff1f.d: src/lib.rs Cargo.toml

/root/repo/vendor/serde/target/debug/deps/libserde-7a9081e1ecbfff1f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=--no-deps__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
