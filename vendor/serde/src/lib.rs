//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the API surface the `naps` workspace actually uses: the
//! [`Serialize`] / [`Deserialize`] traits (re-exported alongside their
//! derive macros, exactly like `use serde::{Deserialize, Serialize}`
//! upstream) and impls for the primitives and containers appearing in the
//! workspace's snapshot types.
//!
//! Instead of upstream serde's visitor architecture, values pass through a
//! small self-describing [`Value`] tree; `serde_json` (also vendored)
//! renders and parses that tree.  Derived impls are produced by the
//! `serde_derive` stand-in.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value — the data model connecting
/// [`Serialize`], [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A floating-point number (possibly non-finite).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, enum variants, maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The fields of a map value, or `None`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of a sequence value, or `None`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name).map(|(_, v)| v))
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::new(format!("expected {expected}, found {}", got.kind()))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::Int(n) => *n as i128,
                    Value::UInt(n) => *n as i128,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                if n <= i64::MAX as u64 {
                    Value::Int(n as i64)
                } else {
                    Value::UInt(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::Int(n) => *n as i128,
                    Value::UInt(n) => *n as i128,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(type_error("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-character string", other)),
        }
    }
}

// ---- containers -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| type_error("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| type_error("map", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| type_error("map", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| type_error("tuple sequence", v))?;
                let want = [$($idx),+].len();
                if seq.len() != want {
                    return Err(Error::new(format!(
                        "expected tuple of length {want}, found {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u64, -3i32), (4, 5, -6)];
        let round: Vec<(u32, u64, i32)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
    }
}
