//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `naps` benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], the [`criterion_group!`] / [`criterion_main!`] macros —
//! with a simple wall-clock harness: each benchmark runs `sample_size`
//! samples after a warm-up and reports the median per-iteration time.
//! There is no statistical analysis, plotting or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the black-box optimisation barrier.
pub use std::hint::black_box;

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How [`Bencher::iter_batched`] amortises setup cost.  The stand-in
/// runs one setup per routine call regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.config, &id.id, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement-time budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.config, &format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&self.config, &format!("{}/{}", self.name, id.id), |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Config, label: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also calibrates the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));

    // Choose an iteration count so all samples fit the measurement budget.
    let budget = config.measurement_time.as_nanos();
    let per_sample = budget / config.sample_size.max(1) as u128;
    let iters = (per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

    // `measurement_time` is treated as a total budget: slow routines get
    // fewer samples instead of blowing up the wall clock (upstream
    // criterion warns and stretches time instead; a stub should stay
    // bounded).
    let mut samples: Vec<u128> = Vec::with_capacity(config.sample_size);
    let measure_start = Instant::now();
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() / u128::from(iters));
        if measure_start.elapsed() > config.measurement_time.saturating_mul(2) {
            break;
        }
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{label:<60} median {median:>10} ns/iter (range {lo} .. {hi}, {iters} iters/sample)");
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(b.elapsed > Duration::ZERO || b.elapsed == b.elapsed);
    }
}
