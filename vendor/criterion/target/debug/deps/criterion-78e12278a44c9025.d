/root/repo/vendor/criterion/target/debug/deps/criterion-78e12278a44c9025.d: src/lib.rs Cargo.toml

/root/repo/vendor/criterion/target/debug/deps/libcriterion-78e12278a44c9025.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
