/root/repo/vendor/criterion/target/debug/deps/criterion-a7c2a5eb7b026283.d: src/lib.rs Cargo.toml

/root/repo/vendor/criterion/target/debug/deps/libcriterion-a7c2a5eb7b026283.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
