/root/repo/vendor/serde_json/target/debug/deps/serde-2b0ba02c3d3b8dc2.d: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-2b0ba02c3d3b8dc2.rmeta: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde/src/lib.rs:
