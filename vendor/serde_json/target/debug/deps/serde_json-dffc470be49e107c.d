/root/repo/vendor/serde_json/target/debug/deps/serde_json-dffc470be49e107c.d: src/lib.rs Cargo.toml

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-dffc470be49e107c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=--no-deps__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
