//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! vendored `serde` [`Value`] data model.  One deliberate divergence from
//! upstream: non-finite floats (which the workspace's interval/DBM zones
//! legitimately contain as empty-envelope sentinels) are encoded as the
//! strings `"inf"`, `"-inf"` and `"nan"` instead of `null`, so snapshot
//! round-trips preserve them exactly.

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        s: s.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.s.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("\"nan\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognisably float-typed, as serde_json does.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        None => ("", String::new(), String::new()),
        Some(unit) => ("\n", unit.repeat(depth), unit.repeat(depth + 1)),
    };
    let sep = if indent.is_some() { ": " } else { ":" };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(sep);
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.s.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + width;
                    let chunk = self
                        .s
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.s.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.s.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => {
                let s = self.string()?;
                // Undo the non-finite-float encoding: these strings can
                // only have been produced by `write_float`, and the typed
                // Deserialize impl decides whether a float was expected.
                Ok(match s.as_str() {
                    "inf" => Value::Float(f64::INFINITY),
                    "-inf" => Value::Float(f64::NEG_INFINITY),
                    "nan" => Value::Float(f64::NAN),
                    _ => Value::Str(s),
                })
            }
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&-42i32).unwrap(), "-42");
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
        assert_eq!(from_str::<f32>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        let v = vec![f32::INFINITY, f32::NEG_INFINITY, 1.5];
        let json = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let json = to_string(&f64::NAN).unwrap();
        assert!(from_str::<f64>(&json).unwrap().is_nan());
    }

    #[test]
    fn float_precision_roundtrips() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.731).sin() * 1e3).collect();
        let back: Vec<f32> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn containers_and_pretty() {
        let v: Vec<(u32, String)> = vec![(1, "a\"b".into()), (2, "".into())];
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&compact).unwrap(), v);
        assert_eq!(from_str::<Vec<(u32, String)>>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
