/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-93f00a5fe0e7591b.d: src/lib.rs Cargo.toml

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-93f00a5fe0e7591b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
