/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-717c0cc0d330dec8.d: src/lib.rs Cargo.toml

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-717c0cc0d330dec8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
