//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `lock`,
//! `read` and `write` return guards directly.  A poisoned std lock (a
//! panic while held) is surfaced by recovering the inner guard, matching
//! parking_lot's "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose `read`/`write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
