//! Fixture-driven end-to-end tests for the analyzer.
//!
//! `tests/fixtures/ws/` is a miniature workspace with its own
//! `analyzer.toml`.  Violation sites in the fixture sources carry
//! `seed:<tag>` markers in trailing comments; lines that must be
//! caught-but-waived carry `seed:waived`.  The tests assert *exact*
//! multiset equality between the markers and the analyzer's findings,
//! so a missed seed (false negative) and a hit on an unmarked line
//! (false positive — the tricky-token file exists to provoke these)
//! both fail.
//!
//! The last test is the self-hosting gate: the real workspace, under
//! the real checked-in `analyzer.toml`, must be clean with no unused
//! waivers.

use naps_analyzer::driver::Finding;
use naps_analyzer::{analyze_root, Analysis, Config};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Marker tag → rule name.  Tags are deliberately short so no marker
/// comment can satisfy a rule's own justification scan (`ordering:`,
/// `SAFETY:`) or be mistaken for a waiver.
const MARKERS: [(&str, &str); 9] = [
    ("seed:panic", "panic_freedom"),
    ("seed:hotalloc", "hot_path_alloc"),
    ("seed:atomics", "atomics_ordering"),
    ("seed:lock", "lock_hygiene"),
    ("seed:unsafe", "unsafe_audit"),
    ("seed:typed", "typed_errors"),
    ("seed:flaky", "test_flakiness"),
    ("seed:facade", "sync_facade"),
    ("seed:waiver", "waiver_syntax"),
];

fn ws_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn ws_config() -> Config {
    let text = std::fs::read_to_string(ws_root().join("analyzer.toml")).expect("fixture config");
    Config::from_toml_str(&text).expect("fixture config parses")
}

fn run_fixtures() -> Analysis {
    analyze_root(&ws_root(), &ws_config()).expect("fixture workspace analyzes")
}

/// All fixture `.rs` files as (`/`-separated relative path, contents).
fn fixture_sources() -> Vec<(String, String)> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    let root = ws_root();
    let mut files = Vec::new();
    walk(&root, &mut files);
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let rel: Vec<String> = p
                .strip_prefix(&root)
                .expect("under fixture root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            let text = std::fs::read_to_string(&p).expect("fixture file reads");
            (rel.join("/"), text)
        })
        .collect()
}

type Multiset = BTreeMap<(String, usize, String), usize>;

/// The expected multiset of (file, line, rule) from `seed:` markers.
fn expected_from_markers(marker_rule: &[(&str, &str)]) -> Multiset {
    let mut out = Multiset::new();
    for (rel, text) in fixture_sources() {
        for (idx, line) in text.lines().enumerate() {
            for (marker, rule) in marker_rule {
                let n = line.matches(marker).count();
                if n > 0 {
                    *out.entry((rel.clone(), idx + 1, rule.to_string()))
                        .or_insert(0) += n;
                }
            }
        }
    }
    out
}

fn to_multiset<'a>(findings: impl Iterator<Item = &'a Finding>) -> Multiset {
    let mut out = Multiset::new();
    for f in findings {
        *out.entry((
            f.violation.file.clone(),
            f.violation.line,
            f.violation.rule.to_string(),
        ))
        .or_insert(0) += 1;
    }
    out
}

fn diff(expected: &Multiset, actual: &Multiset) -> String {
    let mut lines = Vec::new();
    for (k, n) in expected {
        if actual.get(k) != Some(n) {
            lines.push(format!("missed (want {n}): {k:?} got {:?}", actual.get(k)));
        }
    }
    for (k, n) in actual {
        if !expected.contains_key(k) {
            lines.push(format!("false positive ({n}): {k:?}"));
        }
    }
    lines.join("\n")
}

#[test]
fn seeded_violations_are_caught_exactly() {
    let expected = expected_from_markers(&MARKERS);
    assert!(
        expected.len() >= 15,
        "marker scan looks broken: only {} seeded sites",
        expected.len()
    );
    let analysis = run_fixtures();
    let actual = to_multiset(analysis.findings.iter().filter(|f| f.waived_by.is_none()));
    assert!(
        expected == actual,
        "seeded markers and unwaived findings disagree:\n{}",
        diff(&expected, &actual)
    );
    assert!(!analysis.is_clean(), "fixture workspace must fail the gate");
}

#[test]
fn waived_findings_are_suppressed_not_dropped() {
    let expected = expected_from_markers(&[("seed:waived", "waived")]);
    let analysis = run_fixtures();
    let mut actual = Multiset::new();
    for f in analysis.findings.iter().filter(|f| f.waived_by.is_some()) {
        *actual
            .entry((
                f.violation.file.clone(),
                f.violation.line,
                "waived".to_string(),
            ))
            .or_insert(0) += 1;
    }
    assert!(
        expected == actual,
        "seed:waived markers and waived findings disagree:\n{}",
        diff(&expected, &actual)
    );
    for f in analysis.findings.iter().filter(|f| f.waived_by.is_some()) {
        let w = &analysis.waivers[f.waived_by.expect("waived")];
        assert!(
            w.suppressed > 0 && w.rules.iter().any(|r| r == f.violation.rule),
            "finding {:?} points at a waiver that does not cover it: {w:?}",
            f.violation
        );
    }
}

#[test]
fn waiver_census_counts_suppressions() {
    let analysis = run_fixtures();
    let by_reason = |needle: &str| {
        analysis
            .waivers
            .iter()
            .find(|w| w.reason.contains(needle))
            .unwrap_or_else(|| panic!("no waiver with reason containing {needle:?}"))
    };
    // The line waiver covers one index, the fn waiver both indices in
    // its body, the flakiness waiver one sleep; the deliberately
    // unused waiver suppresses nothing but is still reported.
    assert_eq!(by_reason("the line waiver must suppress").suppressed, 1);
    assert_eq!(by_reason("must cover the whole body").suppressed, 2);
    assert_eq!(by_reason("not a sync point").suppressed, 1);
    assert_eq!(by_reason("hot-path waiver must suppress").suppressed, 1);
    assert_eq!(by_reason("facade waiver must suppress").suppressed, 1);
    assert_eq!(by_reason("must show up as unused").suppressed, 0);
    let total_suppressed: usize = analysis.waivers.iter().map(|w| w.suppressed).sum();
    let total_waived = analysis
        .findings
        .iter()
        .filter(|f| f.waived_by.is_some())
        .count();
    assert_eq!(total_suppressed, total_waived);
}

#[test]
fn tricky_token_file_is_silent() {
    let analysis = run_fixtures();
    let hits: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.violation.file.ends_with("tricky.rs"))
        .collect();
    assert!(
        hits.is_empty(),
        "the tricky-token file is deny-listed and clean; every hit is a \
         false positive: {hits:?}"
    );
}

/// The self-hosting gate: the real workspace under the real config.
/// Runs the exact code path CI runs, so `cargo test` alone catches a
/// violation (or a stale waiver) before the analyze job does.
#[test]
fn workspace_is_clean_self_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("analyzer.toml")).expect("checked-in config");
    let cfg = Config::from_toml_str(&text).expect("checked-in config parses");
    let analysis = analyze_root(&root, &cfg).expect("workspace analyzes");
    assert!(analysis.files_scanned > 50, "walk found too few files");
    let unwaived: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.waived_by.is_none())
        .map(|f| {
            format!(
                "{}:{} {}: {}",
                f.violation.file, f.violation.line, f.violation.rule, f.violation.message
            )
        })
        .collect();
    assert!(
        analysis.is_clean() && unwaived.is_empty(),
        "the workspace must be analyzer-clean (fix it or waive with a reason):\n{}",
        unwaived.join("\n")
    );
    let unused: Vec<_> = analysis
        .waivers
        .iter()
        .filter(|w| w.suppressed == 0)
        .map(|w| format!("{}:{} {:?}", w.file, w.line, w.rules))
        .collect();
    assert!(
        unused.is_empty(),
        "stale waivers suppress nothing — delete them:\n{}",
        unused.join("\n")
    );
}
