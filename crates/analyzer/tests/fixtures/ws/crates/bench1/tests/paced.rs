//! The `bench1` crate is on the fixture config's
//! `[rules.test_flakiness] exempt_crates` list: sleeps in its test
//! code are deliberate pacing and must not be flagged.

#[test]
fn paced_probe() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
