//! Tricky-token file: deny-listed for panic_freedom yet completely
//! clean — any finding in this file is a scanner false positive.
//!
//! Docs may mention `v.unwrap()`, `arr[0]` and even panic!("…")
//! without being code, as this comment just did.

/// A plain string literal full of panicky spellings: `.unwrap()`,
/// `.expect("…")`, `panic!`, `x[i]` — all masked by the scanner.
pub const STR_WITH_PANICS: &str = "calling .unwrap() or arr[0] will panic!(\"here\")";

/// Raw strings keep their hash-guarded quotes out of the code channel.
pub const RAW: &str = r#"panic!("not real") .expect("nope") buf[0]"#;

/// A char literal holding an escaped quote is not a string opener.
pub const CHAR_TICK: char = '\'';

/// A bracket-heavy char: `[` inside a char literal is masked.
pub const CHAR_BRACKET: char = '[';

pub fn lifetimes_not_chars<'a>(s: &'a str, t: &'a str) -> &'a str {
    /* Block comments hide .unwrap() and s[0] from the rules,
       /* even when nested: panic!("x") */
       and the scanner must find this real closer: */
    if s.len() > t.len() {
        s
    } else {
        t
    }
}

pub fn brackets_that_are_not_indexing(x: &mut [u8]) -> Vec<[u8; 2]> {
    let a = [0u8; 4];
    let _coords = [(1, 2), (3, 4)];
    let _slice: &[u8] = &a;
    let _v = vec![1, 2, 3];
    let pairs: Vec<[u8; 2]> = x
        .chunks_exact(2)
        .filter_map(|c| <[u8; 2]>::try_from(c).ok())
        .collect();
    pairs
}

pub fn labeled_loops_are_not_lifetimes() -> u32 {
    let mut n = 0u32;
    'outer: for i in 0..3 {
        for j in 0..3 {
            if i * j == 4 {
                break 'outer;
            }
            n += 1;
        }
    }
    n
}
