//! Seeded hot-path-allocation violations.  This file is on the fixture
//! config's `[rules.hot_path_alloc] deny_files` list; every seed-tagged
//! line must be flagged, every untagged line must stay silent.  Not
//! compiled — consumed only by the analyzer's fixture tests.

pub fn bad_vec_new() -> Vec<u32> {
    Vec::new() // seed:hotalloc
}

pub fn bad_vec_macro() -> Vec<u32> {
    vec![1, 2, 3] // seed:hotalloc
}

pub fn bad_to_vec(v: &[u32]) -> Vec<u32> {
    v.to_vec() // seed:hotalloc
}

pub fn bad_tensor_zeros() -> Tensor {
    Tensor::zeros(&[4, 4]) // seed:hotalloc
}

pub fn bad_clone(t: &Tensor) -> Tensor {
    t.clone() // seed:hotalloc
}

pub fn bad_chain(rows: &[Vec<u32>]) -> Vec<u32> {
    rows.first().cloned().unwrap_or_else(|| vec![0]) // seed:hotalloc
}

pub fn waived_warm_up(rows: &mut Vec<Vec<u32>>) {
    // naps-lint: allow(hot_path_alloc, "fixture: warm-up growth, the hot-path waiver must suppress")
    rows.push(Vec::new()); // seed:waived
}

#[cfg(test)]
mod tests {
    // Test code inside a deny-listed file is out of scope for
    // hot_path_alloc: nothing below may be flagged.
    #[test]
    fn allocating_in_tests_is_fine() {
        let v = vec![1u32, 2];
        assert_eq!(v.to_vec().clone(), Vec::from([1, 2]));
    }
}
