//! Lookalike-token file: deny-listed for hot_path_alloc yet completely
//! clean — any finding in this file is a rule false positive.
//!
//! Docs may mention `Vec::new()`, `vec![…]`, `.to_vec()` and
//! `t.clone()` without being code, as this comment just did.

/// A string literal full of allocating spellings, all masked by the
/// scanner: `Vec::new()` vec![1] .to_vec() Tensor::zeros .clone().
pub const STR_WITH_ALLOCS: &str = "Vec::new() vec![1] x.to_vec() t.clone() Tensor::zeros(&[1])";

/// `Arc::clone(&x)` is the cheap refcount bump written UFCS by
/// convention — it must not match the `.clone(` needle.
pub fn share(x: &Arc<State>) -> Arc<State> {
    Arc::clone(x)
}

/// `.cloned()` is an iterator adapter, not `.clone(`; `with_capacity`
/// and `collect` are deliberate one-time reservations, not needles.
pub fn reserve(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend(xs.iter().cloned());
    out
}

/// Identifiers that merely *contain* needle spellings stay silent.
pub fn to_vec_len(my_vec_new: usize) -> usize {
    my_vec!(my_vec_new)
}

#[cfg(test)]
mod tests {
    // Allocation in test code is always fine, deny-listed or not.
    #[test]
    fn test_allocations_do_not_flag() {
        let v = vec![1u32].to_vec();
        assert_eq!(v.clone(), Vec::new().into_iter().chain(v.iter().cloned()).collect::<Vec<_>>());
    }
}
