//! Seeded panic-freedom violations.  This file is on the fixture
//! config's `deny_files` list; every seed-tagged line must be
//! flagged, every untagged line must stay silent.  Not compiled —
//! consumed only by the analyzer's fixture tests.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // seed:panic
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present") // seed:panic
}

pub fn bad_panic(x: bool) {
    if x {
        panic!("boom"); // seed:panic
    }
}

pub fn bad_unreachable(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(), // seed:panic
    }
}

pub fn bad_todo() {
    todo!() // seed:panic
}

pub fn bad_unimplemented() {
    unimplemented!() // seed:panic
}

pub fn bad_index(v: &[u32], i: usize) -> u32 {
    v[i] // seed:panic
}

pub fn bad_slice(v: &[u32]) -> &[u32] {
    &v[1..] // seed:panic
}

pub fn bad_chain(v: &[Vec<u32>]) -> u32 {
    v[0][1] // seed:panic seed:panic
}

pub fn waived_line(v: &[u32]) -> u32 {
    // naps-lint: allow(panic_freedom, "fixture: provably in-bounds, the line waiver must suppress")
    v[0] // seed:waived
}

// naps-lint: allow-fn(panic_freedom, "fixture: the fn-scoped waiver must cover the whole body")
pub fn waived_fn(v: &[u32]) -> u32 {
    v[0] + v[1] // seed:waived seed:waived
}

#[cfg(test)]
mod tests {
    // Test code inside a deny-listed file is out of scope for
    // panic_freedom: nothing below may be flagged.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let arr = [1u32, 2];
        assert_eq!(arr[0], 1);
    }
}
