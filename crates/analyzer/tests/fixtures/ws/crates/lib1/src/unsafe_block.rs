//! Seeded unsafe_audit violation: an `unsafe` block with no
//! justification.  The two annotated forms must stay silent.

pub fn seeded(p: *const u8) -> u8 {
    unsafe { *p } // seed:unsafe
}

pub fn justified_above(p: *const u8) -> u8 {
    // SAFETY: caller contract — `p` is valid for reads in this fixture.
    unsafe { *p }
}

pub fn justified_same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller contract — `p` is valid for reads.
}
