//! Seeded atomics_ordering violations: weak orderings without an
//! justification note are seed-tagged; the justified forms
//! below them must stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn seeded(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed); // seed:atomics
    c.store(2, Ordering::Release); // seed:atomics
    let a = c.load(Ordering::Acquire); // seed:atomics
    a + c.swap(3, Ordering::AcqRel) // seed:atomics
}

pub fn justified(c: &AtomicU64) -> u64 {
    c.store(1, Ordering::Release); // ordering: publishes the fixture epoch
    // ordering: pairs with the release store above
    let a = c.load(Ordering::Acquire);
    // ordering: a stat counter only; the tally is advisory.
    // A multi-line comment block directly above still attaches.
    c.fetch_add(a, Ordering::Relaxed);
    c.load(Ordering::SeqCst)
}
