//! Seeded typed_errors violations in a library crate: boxed dynamic
//! errors, stringly expects, and silent `unwrap_or_default()`.

pub fn boxed() -> Result<(), Box<dyn std::error::Error>> { // seed:typed
    Ok(())
}

pub fn defaulted(r: Result<u32, ()>) -> u32 {
    r.unwrap_or_default() // seed:typed
}

pub fn stringly(v: Option<u32>) -> u32 {
    v.expect("present") // seed:typed
}

pub fn stringly_split(v: Option<u32>) -> u32 {
    v.expect( // seed:typed
        "rustfmt may push the message to the next line",
    )
}

pub fn expect_on_a_typed_error(v: Option<u32>) -> u32 {
    // A non-string argument is not a stringly expect; this must stay
    // silent (the rule only fires on string literals).
    v.expect(MESSAGE)
}

const MESSAGE: &str = "named message";
