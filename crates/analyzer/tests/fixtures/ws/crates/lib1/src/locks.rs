//! Seeded lock_hygiene violation: `.lock()` on one mutex while a
//! `let`-bound guard of a different mutex is live.  The disciplined
//! variants below — drop first, scope first, bind the clone not the
//! guard — must stay silent.

use std::sync::{Arc, Mutex};

pub struct Two {
    pub left: Mutex<u32>,
    pub right: Mutex<u32>,
    pub shared: Mutex<Arc<u32>>,
}

pub fn seeded(t: &Two) -> u32 {
    let gl = t.left.lock().unwrap_or_else(|e| e.into_inner());
    let gr = t.right.lock().unwrap_or_else(|e| e.into_inner()); // seed:lock
    *gl + *gr
}

pub fn dropped_first(t: &Two) -> u32 {
    let gl = t.left.lock().unwrap_or_else(|e| e.into_inner());
    let x = *gl;
    drop(gl);
    let gr = t.right.lock().unwrap_or_else(|e| e.into_inner());
    x + *gr
}

pub fn scoped_first(t: &Two) -> u32 {
    let x = {
        let gl = t.left.lock().unwrap_or_else(|e| e.into_inner());
        *gl
    };
    let gr = t.right.lock().unwrap_or_else(|e| e.into_inner());
    x + *gr
}

pub fn clone_is_not_a_guard(t: &Two) -> u32 {
    // The guard here is a temporary dropped at the end of the
    // statement; `snap` binds the Arc, so the later lock is fine.
    let snap = Arc::clone(&t.shared.lock().unwrap_or_else(|e| e.into_inner()));
    let gr = t.right.lock().unwrap_or_else(|e| e.into_inner());
    *snap.as_ref() + *gr
}
