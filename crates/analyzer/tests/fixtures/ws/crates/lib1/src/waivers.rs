//! Seeded waiver_syntax violations: every malformed waiver is itself a
//! seed-tagged deny finding, and none of them can suppress
//! anything.  The well-formed-but-unused waiver at the bottom must be
//! reported with a suppression count of zero.

pub fn missing_reason() -> u32 {
    // naps-lint: allow(typed_errors) // seed:waiver
    0
}

pub fn unknown_rule() -> u32 {
    // naps-lint: allow(not_a_rule, "reason") // seed:waiver
    0
}

pub fn empty_reason() -> u32 {
    // naps-lint: allow(typed_errors, "") // seed:waiver
    0
}

pub fn unterminated() -> u32 {
    // naps-lint: allow(typed_errors, "no closing paren // seed:waiver
    0
}

pub fn not_allow() -> u32 {
    // naps-lint: deny(typed_errors, "wrong verb") // seed:waiver
    0
}

// naps-lint: allow-fn(panic_freedom, "fixture: nothing below is a function") // seed:waiver
pub const NOT_A_FN: u32 = 0;

pub fn unused_waiver() -> u32 {
    // naps-lint: allow(typed_errors, "fixture: suppresses nothing and must show up as unused")
    0
}
