//! Bench targets may sleep on purpose: `benches/` is exempt from
//! test_flakiness by file kind, so nothing here may be flagged.

fn main() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
