//! Seeded test_flakiness violation: a bare sleep in test code.  The
//! waived sleep and the deadline poll must stay silent.

#[test]
fn seeded_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(10)); // seed:flaky
}

#[test]
fn waived_sleep() {
    // naps-lint: allow(test_flakiness, "fixture: pacing inside a deadline poll, not a sync point")
    std::thread::sleep(std::time::Duration::from_millis(1)); // seed:waived
}

#[test]
fn deadline_poll_is_fine() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(1);
    while std::time::Instant::now() < deadline {
        std::thread::yield_now();
        break;
    }
}
