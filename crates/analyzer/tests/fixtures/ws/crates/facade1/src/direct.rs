//! Seeded sync_facade violations: direct `std::sync` / `std::thread`
//! paths in a facade crate's `src/` code.  Mentions in comments and
//! strings, longer identifiers (`mystd`, masked by token boundaries)
//! and `#[cfg(test)]` code must all stay silent, and a waiver with a
//! reason gates the rule like any other.  Not compiled — consumed
//! only by the analyzer's fixture tests.

use std::sync::{Arc, Mutex}; // seed:facade
use std::thread; // seed:facade

pub fn inline_path() -> std::thread::JoinHandle<u32> { // seed:facade
    thread::spawn(|| 0)
}

/// Talking about std::sync in a doc comment is fine.
pub fn mentions_are_silent() -> u32 {
    // plain comment: std::thread is also fine here
    let msg = "std::sync::Mutex inside a string";
    let longer = mystd::sync::helper();
    msg.len() as u32 + longer
}

pub fn waived_direct() {
    // naps-lint: allow(sync_facade, "fixture: the facade waiver must suppress this pinned std path")
    std::thread::yield_now(); // seed:waived
}

#[cfg(test)]
mod tests {
    // Test code runs under the real OS scheduler; direct std paths
    // here are out of scope for sync_facade.
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn real_threads_are_fine_in_tests() {
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || tx.send(1u32));
        assert_eq!(rx.recv(), Ok(1));
    }
}
