//! The analysis driver: walks the workspace, scans every `.rs` file,
//! runs the rules, matches violations against waivers and aggregates
//! the result.  `main.rs` and the test suites both enter through
//! [`analyze_root`] / [`analyze_files`], so CI and the self-check test
//! exercise exactly the code path a developer runs locally.

use crate::config::{Config, Severity};
use crate::rules::{self, FileContext, FileKind, Violation};
use crate::scanner;
use crate::waiver;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One violation, resolved against the waivers in its file.
#[derive(Debug)]
pub struct Finding {
    pub violation: Violation,
    /// Index into [`Analysis::waivers`] when suppressed.
    pub waived_by: Option<usize>,
    pub severity: Severity,
}

/// A waiver as it appears in the report, with its suppression count.
#[derive(Debug)]
pub struct WaiverRecord {
    pub file: String,
    pub line: usize,
    pub rules: Vec<String>,
    pub reason: String,
    pub suppressed: usize,
}

/// The aggregated result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    pub lines_scanned: usize,
    pub findings: Vec<Finding>,
    pub waivers: Vec<WaiverRecord>,
}

impl Analysis {
    /// Whether the run passes: no unwaived violation of a deny rule.
    pub fn is_clean(&self) -> bool {
        !self
            .findings
            .iter()
            .any(|f| f.waived_by.is_none() && f.severity == Severity::Deny)
    }
}

/// Analyzes every `.rs` file under `root`'s configured roots.
pub fn analyze_root(root: &Path, cfg: &Config) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        collect_rs_files(&root.join(r), &mut files)?;
    }
    files.sort();
    let rel: Vec<String> = files
        .iter()
        .filter_map(|f| relative_slash(root, f))
        .filter(|r| !cfg.exclude.iter().any(|e| r.starts_with(e.as_str())))
        .collect();
    analyze_files(root, &rel, cfg)
}

/// Analyzes an explicit list of workspace-relative `/`-separated
/// paths.  The fixture tests use this to point the engine at seeded
/// files with a fixture config.
pub fn analyze_files(root: &Path, rel_paths: &[String], cfg: &Config) -> io::Result<Analysis> {
    let mut analysis = Analysis::default();
    for rel in rel_paths {
        let ctx = classify(rel);
        let text = fs::read_to_string(root.join(rel))?;
        let scanned = scanner::scan(&text, ctx.kind == FileKind::Test);
        analysis.files_scanned += 1;
        analysis.lines_scanned += scanned.lines.len();

        let (waivers, waiver_errors) = waiver::extract(&scanned);
        let waiver_base = analysis.waivers.len();
        for w in &waivers {
            analysis.waivers.push(WaiverRecord {
                file: rel.clone(),
                line: w.line,
                rules: w.rules.clone(),
                reason: w.reason.clone(),
                suppressed: 0,
            });
        }
        // Malformed waivers are violations themselves and can never be
        // waived — a broken escape hatch must not open an escape hatch.
        for e in waiver_errors {
            analysis.findings.push(Finding {
                violation: Violation {
                    rule: "waiver_syntax",
                    file: rel.clone(),
                    line: e.line,
                    message: e.message,
                },
                waived_by: None,
                severity: Severity::Deny,
            });
        }
        for v in rules::check_file(&ctx, &scanned, cfg) {
            let waived_by = waivers
                .iter()
                .position(|w| w.covers(v.rule, v.line))
                .map(|i| waiver_base + i);
            if let Some(wi) = waived_by {
                analysis.waivers[wi].suppressed += 1;
            }
            let severity = cfg.severity(v.rule);
            analysis.findings.push(Finding {
                violation: v,
                waived_by,
                severity,
            });
        }
    }
    Ok(analysis)
}

/// Recursively collects `.rs` files, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (report paths must not
/// depend on the host OS).
fn relative_slash(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Derives crate directory and file kind from a workspace-relative
/// path like `crates/serve/tests/hot_swap.rs`.
fn classify(rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_dir = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1]
    } else {
        parts.first().copied().unwrap_or("")
    };
    let kind_seg = if parts.first() == Some(&"crates") {
        parts.get(2)
    } else {
        parts.get(1)
    };
    let kind = match kind_seg.copied() {
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        _ => FileKind::Lib,
    };
    FileContext {
        path: rel.to_string(),
        crate_dir: crate_dir.to_string(),
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_reads_crate_and_kind() {
        let c = classify("crates/serve/tests/hot_swap.rs");
        assert_eq!(c.crate_dir, "serve");
        assert_eq!(c.kind, FileKind::Test);
        let c = classify("crates/bdd/src/compiled.rs");
        assert_eq!(c.crate_dir, "bdd");
        assert_eq!(c.kind, FileKind::Lib);
        let c = classify("crates/bench/benches/bench_throughput.rs");
        assert_eq!(c.kind, FileKind::Bench);
    }
}
