//! CLI entry point: `cargo run -p naps-analyzer [-- --quiet] [--root DIR]`.
//!
//! Reads `analyzer.toml` at the workspace root, analyzes the
//! configured roots, writes the JSON artifact and exits non-zero on
//! any unwaived deny violation.  Never panics on bad input: config and
//! IO failures map to error messages and exit code 2.

use naps_analyzer::{config::Config, driver, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("naps-analyzer: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("naps-analyzer: unknown argument `{other}` (try --quiet, --root DIR)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    let config_path = root.join("analyzer.toml");
    let toml = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("naps-analyzer: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::from_toml_str(&toml) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("naps-analyzer: {e}");
            return ExitCode::from(2);
        }
    };

    let analysis = match driver::analyze_root(&root, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("naps-analyzer: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    let json = report::to_json(&analysis, &cfg);
    let out_path = root.join(&cfg.results);
    if let Some(dir) = out_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("naps-analyzer: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("naps-analyzer: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    if !quiet {
        print!("{}", report::human(&analysis, &cfg));
        println!("[results written to {}]", out_path.display());
    }
    if analysis.is_clean() {
        if !quiet {
            println!("naps-analyzer: clean");
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "naps-analyzer: unwaived violations (see above / {})",
            cfg.results
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `analyzer.toml`
/// (running from a crate subdirectory should work too); falls back to
/// the current directory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("analyzer.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
