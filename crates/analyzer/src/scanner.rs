//! Token-aware source preparation.
//!
//! Rules must never fire on `"unwrap()"` inside a string literal, on a
//! lifetime tick that looks like an unterminated char, or on code that
//! only exists inside `#[cfg(test)]`.  The scanner therefore does one
//! careful pass over each file and hands rules a per-line view where
//!
//! * string/char-literal *contents* are blanked to spaces (delimiters
//!   kept, so `.expect("…")` is still recognisably string-argumented),
//! * comment text is moved out of the code channel into a separate
//!   per-line comment channel (where waivers and `// ordering:`
//!   justifications are looked up),
//! * every line is tagged as test or non-test code (`tests/` files,
//!   `#[cfg(test)]` items, `#[test]` functions),
//! * `fn` items are resolved to body line ranges, for function-scoped
//!   waivers and the lock-nesting rule.
//!
//! The scanner understands raw strings (`r#"…"#`, any hash depth, with
//! `b`/`c` prefixes), byte and char literals with escapes, lifetimes
//! vs. char ticks, and nested block comments.  It does not parse Rust;
//! it only has to be exact about *where code is*, which is a much
//! smaller problem.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// Source text with comments removed and literal contents blanked.
    /// Column positions are preserved (every blanked char becomes one
    /// space), so byte offsets into `code` match the original line.
    pub code: String,
    /// Concatenated comment text appearing on this line, `//` / `/*`
    /// markers stripped.  Waivers and justifications live here.
    pub comment: String,
    /// True when this line belongs to test code (a `tests/` file, a
    /// `#[cfg(test)]` item or a `#[test]` function body).
    pub in_test: bool,
}

/// A `fn` item located in a file: where its signature starts and which
/// lines its body covers (1-based, inclusive, brace lines included).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based first line of the body (the line holding the opening
    /// brace).
    pub body_start: usize,
    /// 1-based last line of the body (the line holding the closing
    /// brace).
    pub body_end: usize,
}

/// A fully prepared file, ready for the rule engine.
#[derive(Debug)]
pub struct ScannedFile {
    /// 1-based indexable as `lines[line - 1]`.
    pub lines: Vec<ScannedLine>,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnSpan>,
    /// True when the whole file is test code (lives under `tests/`).
    pub whole_file_test: bool,
}

impl ScannedFile {
    /// The code channel of a 1-based line, or `""` past the end.
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.code.as_str())
    }

    /// The comment channel of a 1-based line, or `""` past the end.
    pub fn comment(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.comment.as_str())
    }

    /// Whether a 1-based line is test code.
    pub fn in_test(&self, line: usize) -> bool {
        self.lines
            .get(line.wrapping_sub(1))
            .is_some_and(|l| l.in_test)
    }

    /// The innermost `fn` whose body covers `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start <= line && line <= f.body_end)
            .max_by_key(|f| f.body_start)
    }
}

/// Lexer state while sweeping the file once.
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str { raw_hashes: Option<usize> },
    Char,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `text` into per-line code/comment channels, then derives test
/// regions and `fn` spans from the masked code.
pub fn scan(text: &str, whole_file_test: bool) -> ScannedFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(ScannedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: whole_file_test,
            });
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b' || c == 'c')
                    && (i == 0 || !is_ident(chars[i - 1]))
                    && raw_or_prefixed_string(&chars, i).is_some()
                {
                    // One of r"…", r#"…"#, b"…", br#"…"#, c"…", …: emit
                    // the prefix and hashes as code, enter string state.
                    // The second call cannot return None (guarded one
                    // line up); the fallback only placates the types.
                    let (quote_at, hashes) = raw_or_prefixed_string(&chars, i).unwrap_or((i, 0));
                    for &p in &chars[i..=quote_at] {
                        code.push(p);
                    }
                    // Raw forms (any prefix containing `r`) take no
                    // escapes; plain b"…"/c"…" escape like normal strs.
                    let is_raw = chars[i..quote_at].contains(&'r');
                    state = State::Str {
                        raw_hashes: if is_raw { Some(hashes) } else { None },
                    };
                    i = quote_at + 1;
                } else if c == '\'' {
                    // Lifetime / loop label vs. char literal.  After the
                    // tick: `\` means char; an ident char followed by a
                    // closing tick means char (`'a'`, `'_'`); an ident
                    // char not followed by a tick means lifetime (`'a`,
                    // `'static`); anything else (`' '`, `'('`) is char.
                    let n1 = chars.get(i + 1).copied();
                    let is_lifetime = match n1 {
                        Some('\\') => false,
                        Some(nc) if is_ident(nc) => {
                            // Scan the ident; a tick right after makes
                            // it a char literal.
                            let mut j = i + 2;
                            while j < chars.len() && is_ident(chars[j]) {
                                j += 1;
                            }
                            chars.get(j).copied() != Some('\'')
                        }
                        _ => false,
                    };
                    if is_lifetime {
                        code.push('\'');
                        i += 1;
                    } else {
                        state = State::Char;
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                comment.push(c);
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    code.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    comment.push(' ');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    code.push(' ');
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        // Escape: blank both chars (handles \" and \\).
                        code.push(' ');
                        if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Some(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without a trailing newline still counts.
    if !code.is_empty() || !comment.is_empty() {
        lines.push(ScannedLine {
            code,
            comment,
            in_test: whole_file_test,
        });
    }

    let mut file = ScannedFile {
        lines,
        fns: Vec::new(),
        whole_file_test,
    };
    mark_test_regions(&mut file);
    file.fns = find_fns(&file);
    file
}

/// If position `i` (an `r`, `b` or `c`) starts a raw/prefixed string,
/// returns `(index_of_opening_quote, hash_count)`.
fn raw_or_prefixed_string(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    // Prefix: one of r, b, c, br, cr (we accept any 1–2 of these).
    let mut prefix = 0;
    while prefix < 2 && matches!(chars.get(j), Some('r' | 'b' | 'c')) {
        j += 1;
        prefix += 1;
    }
    if prefix == 0 {
        return None;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        // `b#` without r is not a string; hashes require a raw prefix.
        if hashes > 0 && !chars[i..j - hashes].contains(&'r') {
            return None;
        }
        Some((j, hashes))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by `hashes` `#`s (closing a raw
/// string of that depth).
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items as test code by
/// tracking brace depth through the masked code channel.
fn mark_test_regions(file: &mut ScannedFile) {
    // Flatten the code channel with a per-char line map.
    let mut flat = String::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (ln, l) in file.lines.iter().enumerate() {
        for c in l.code.chars() {
            flat.push(c);
            line_of.push(ln);
        }
        flat.push('\n');
        line_of.push(ln);
    }
    let bytes: Vec<char> = flat.chars().collect();

    let mut depth: usize = 0;
    // Depth at which a test attribute is pending a block.
    let mut pending: Option<usize> = None;
    // Stack of depths at which a test region opened.
    let mut test_open: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '#' && starts_test_attr(&bytes[i..]) {
            pending = Some(depth);
        }
        match c {
            '{' => {
                if pending == Some(depth) {
                    pending = None;
                    test_open.push(depth);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if test_open.last() == Some(&depth) {
                    test_open.pop();
                    // The closing brace line itself is still test code.
                    file.lines[line_of[i]].in_test = true;
                }
            }
            ';' if pending == Some(depth) => {
                // `#[cfg(test)] use …;` — attribute on a non-block
                // item; nothing to mark beyond the statement.
                file.lines[line_of[i]].in_test = true;
                pending = None;
            }
            _ => {}
        }
        if !test_open.is_empty() || pending.is_some() {
            file.lines[line_of[i]].in_test = true;
        }
        i += 1;
    }
}

/// Whether the masked code starting at a `#` spells a test attribute:
/// `#[test]`, `#[cfg(test)]` or `#[cfg(all(test, …))]`-style forms.
fn starts_test_attr(rest: &[char]) -> bool {
    let s: String = rest.iter().take(32).collect();
    let s = s.replace(' ', "");
    s.starts_with("#[test]")
        || s.starts_with("#[cfg(test)]")
        || s.starts_with("#[cfg(test,")
        || s.starts_with("#[cfg(all(test")
        || s.starts_with("#[cfg(any(test")
}

/// Locates every `fn` item and its body line range in the masked code.
fn find_fns(file: &ScannedFile) -> Vec<FnSpan> {
    let mut flat = String::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (ln, l) in file.lines.iter().enumerate() {
        for c in l.code.chars() {
            flat.push(c);
            line_of.push(ln);
        }
        flat.push('\n');
        line_of.push(ln);
    }
    let chars: Vec<char> = flat.chars().collect();
    let mut fns = Vec::new();
    let mut i = 0;
    while i + 1 < chars.len() {
        let is_fn_kw = chars[i] == 'f'
            && chars[i + 1] == 'n'
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + 2).is_some_and(|&c| !is_ident(c));
        if !is_fn_kw {
            i += 1;
            continue;
        }
        let start_line = line_of[i] + 1;
        // Find the body `{` or a `;` (trait/extern declaration — no
        // body).  Parenthesis depth guards against `{` inside default
        // const-generic args; brace starts the body only at paren
        // depth 0.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut body_open = None;
        while j < chars.len() {
            match chars[j] {
                '(' | '[' | '<' => paren += 1,
                ')' | ']' | '>' => paren = paren.saturating_sub(1),
                ';' if paren == 0 => break,
                '{' if paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body_open {
            // Match the brace.
            let mut depth = 0usize;
            let mut k = open;
            let mut body_end = line_of[open] + 1;
            while k < chars.len() {
                match chars[k] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            body_end = line_of[k] + 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            fns.push(FnSpan {
                start_line,
                body_start: line_of[open] + 1,
                body_end,
            });
            // Continue scanning *inside* the body too (nested fns).
            i = open + 1;
        } else {
            i = j;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_chars_are_blanked_but_delimited() {
        let f = scan(
            "let s = \"unwrap() inside\"; let c = 'x'; let l: &'static str = s;\n",
            false,
        );
        assert!(!f.code(1).contains("unwrap"));
        assert!(f.code(1).contains('"'));
        assert!(f.code(1).contains("'static"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = scan("/* a /* b */ still comment */ let x = 1;\n", false);
        assert!(f.code(1).contains("let x = 1;"));
        assert!(!f.code(1).contains("still"));
        assert!(f.comment(1).contains("still comment"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let f = scan(
            "let s = r#\"has \"quotes\" and unwrap()\"#; foo();\n",
            false,
        );
        assert!(!f.code(1).contains("unwrap"));
        assert!(f.code(1).contains("foo();"));
    }

    #[test]
    fn cfg_test_mod_is_marked_to_its_closing_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = scan(src, false);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() {\n    body();\n}\nstruct S;\nfn b() { one_liner(); }\n";
        let f = scan(src, false);
        assert_eq!(f.fns.len(), 2);
        assert_eq!((f.fns[0].body_start, f.fns[0].body_end), (1, 3));
        assert_eq!((f.fns[1].body_start, f.fns[1].body_end), (5, 5));
        assert!(f.enclosing_fn(2).is_some());
        assert!(f.enclosing_fn(4).is_none());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n", false);
        assert!(f.code(1).contains("&'a str"));
        assert!(f.code(1).contains("{ x }"));
    }
}
