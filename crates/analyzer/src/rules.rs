//! The rule engine: each rule sweeps a [`ScannedFile`] and yields
//! violations, which the driver then matches against waivers.
//!
//! Rules are textual and token-aware, not type-aware — they run on the
//! scanner's masked code channel, so strings, comments, lifetimes and
//! `#[cfg(test)]` regions can't fool them, but they deliberately trade
//! a little precision for zero build-time dependencies (the analyzer
//! gates the workspace that *produces* typed ASTs, so it cannot depend
//! on it).  Where a rule is heuristic (e.g. `unwrap_or_default` on a
//! `Result` vs. an `Option`), a waiver with a reason is the escape
//! hatch, and every waiver is counted in the report.

use crate::config::Config;
use crate::scanner::ScannedFile;

/// Every rule the engine knows, in report order.  Waivers may only
/// name rules from this list (typos are `waiver_syntax` violations).
pub const RULE_NAMES: [&str; 9] = [
    "panic_freedom",
    "hot_path_alloc",
    "atomics_ordering",
    "lock_hygiene",
    "unsafe_audit",
    "typed_errors",
    "test_flakiness",
    "sync_facade",
    "waiver_syntax",
];

/// Where a file sits in its crate, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/` (including `src/bin/`).
    Lib,
    /// Under `tests/` — every line is test code.
    Test,
    /// Under `benches/`.
    Bench,
    /// Under `examples/`.
    Example,
}

/// Per-file context the rules need beyond the scanned text.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/serve/src/engine.rs`).
    pub path: String,
    /// The crate directory name (e.g. `serve`).
    pub crate_dir: String,
    pub kind: FileKind,
}

/// One rule hit at a specific line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
}

/// Runs every rule over one prepared file.
pub fn check_file(ctx: &FileContext, file: &ScannedFile, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    panic_freedom(ctx, file, cfg, &mut out);
    hot_path_alloc(ctx, file, cfg, &mut out);
    atomics_ordering(ctx, file, &mut out);
    lock_hygiene(ctx, file, &mut out);
    unsafe_audit(ctx, file, &mut out);
    typed_errors(ctx, file, cfg, &mut out);
    test_flakiness(ctx, file, cfg, &mut out);
    sync_facade(ctx, file, cfg, &mut out);
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds word-boundary occurrences of `token` in `code`, returning
/// byte offsets of each match start.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0
            || !is_ident(code[..at].chars().next_back().unwrap_or(' '))
            || !is_ident(token.chars().next().unwrap_or(' '));
        let after = code[at + token.len()..].chars().next();
        let after_ok =
            !after.is_some_and(is_ident) || !is_ident(token.chars().next_back().unwrap_or(' '));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len();
    }
    out
}

/// Rule 1 — **panic_freedom**: deny-listed hot-path files must not
/// contain `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`,
/// `todo!`, `unimplemented!` or direct index/slice expressions
/// (`x[…]`) outside test code.  The deny-list is `analyzer.toml`'s
/// `[rules.panic_freedom] deny_files`.
fn panic_freedom(ctx: &FileContext, file: &ScannedFile, cfg: &Config, out: &mut Vec<Violation>) {
    if !cfg.panic_deny_files.iter().any(|f| f == &ctx.path) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let line = idx + 1;
        for (needle, what) in [
            (".unwrap(", "`.unwrap()`"),
            (".expect(", "`.expect(…)`"),
            ("panic!", "`panic!`"),
            ("unreachable!", "`unreachable!`"),
            ("todo!", "`todo!`"),
            ("unimplemented!", "`unimplemented!`"),
        ] {
            for _ in token_positions(&l.code, needle) {
                out.push(Violation {
                    rule: "panic_freedom",
                    file: ctx.path.clone(),
                    line,
                    message: format!("{what} on a deny-listed hot-path file can panic"),
                });
            }
        }
        for at in index_positions(&l.code) {
            let snippet = index_snippet(&l.code, at);
            out.push(Violation {
                rule: "panic_freedom",
                file: ctx.path.clone(),
                line,
                message: format!(
                    "direct index `{snippet}` on a deny-listed hot-path file can panic — \
                     use `.get(…)` or waive with an in-bounds proof"
                ),
            });
        }
    }
}

/// Rule — **hot_path_alloc**: deny-listed steady-state files (config
/// `[rules.hot_path_alloc] deny_files`) must not touch the allocator
/// per call: no `Vec::new()`, `vec![…]`, `.to_vec()`,
/// `Tensor::zeros(…)` or `.clone()` outside test code.  These files
/// are the serving paths the `forward` eval gates at zero steady-state
/// allocations — reuse caller-owned storage (`*_into` variants,
/// `resize_in_place`) instead, and waive genuine warm-up or cold-path
/// allocations with the reason.  Only method-call syntax matches
/// `.clone(`: `Arc::clone(&x)` — the cheap refcount bump, written UFCS
/// by convention — and `.cloned()` iterator adapters do not flag.
fn hot_path_alloc(ctx: &FileContext, file: &ScannedFile, cfg: &Config, out: &mut Vec<Violation>) {
    if !cfg.hot_path_files.iter().any(|f| f == &ctx.path) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let line = idx + 1;
        for (needle, what, instead) in [
            ("Vec::new(", "`Vec::new()`", "reuse a cleared buffer"),
            ("vec!", "`vec![…]`", "reuse a cleared buffer"),
            (".to_vec(", "`.to_vec()`", "copy into reused storage"),
            (
                "Tensor::zeros",
                "`Tensor::zeros(…)`",
                "use `resize_zeroed` on a reused tensor",
            ),
            (
                ".clone(",
                "`.clone()`",
                "refill the existing value in place",
            ),
        ] {
            for _ in token_positions(&l.code, needle) {
                out.push(Violation {
                    rule: "hot_path_alloc",
                    file: ctx.path.clone(),
                    line,
                    message: format!(
                        "{what} on a deny-listed steady-state file allocates per call — \
                         {instead}, or waive a warm-up/cold-path allocation with the reason"
                    ),
                });
            }
        }
    }
}

/// Byte offsets of `[` chars that open an index/slice *expression*:
/// the char **immediately** before the `[` is an identifier char, `)`,
/// `]` or `?`.  Adjacency matters — rustfmt never leaves a space
/// before a real index bracket, while array literals (`[0u8; 4]`,
/// `in [(a, b)]`), types (`&[f32]`, `&mut [u8]`), attributes (`#[…]`)
/// and macro bracket args (`vec![…]`) are all preceded by whitespace
/// or other punctuation.
fn index_positions(code: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut byte = 0;
    for (i, &c) in chars.iter().enumerate() {
        if c == '[' && i > 0 {
            let p = chars[i - 1];
            if is_ident(p) || p == ')' || p == ']' || p == '?' {
                out.push(byte);
            }
        }
        byte += c.len_utf8();
    }
    out
}

/// A short `recv[idx]`-style snippet around the `[` at `at`, for the
/// violation message.
fn index_snippet(code: &str, at: usize) -> String {
    let start = code[..at]
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c) || *c == '.')
        .map(|(i, _)| i)
        .last()
        .unwrap_or(at);
    let end = code[at..]
        .char_indices()
        .find(|(_, c)| *c == ']')
        .map(|(i, _)| at + i + 1)
        .unwrap_or(code.len());
    code[start..end].trim().chars().take(40).collect()
}

/// True when `line` carries `marker` in its own comment, or in the
/// contiguous comment block directly above it (comment-only lines, the
/// way a doc comment attaches to the item below).
fn justified_by(file: &ScannedFile, line: usize, marker: &str) -> bool {
    if file.comment(line).contains(marker) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if file.code(l).trim().is_empty() && !file.comment(l).trim().is_empty() {
            if file.comment(l).contains(marker) {
                return true;
            }
        } else {
            // A code or blank line breaks the block — except the first
            // line above, whose trailing comment also counts.
            return l + 1 == line && file.comment(l).contains(marker);
        }
    }
    false
}

/// Rule 2 — **atomics_ordering**: every non-`SeqCst` atomic memory
/// ordering (`Relaxed`, `Acquire`, `Release`, `AcqRel`) must carry an
/// `// ordering:` justification on the same line, on the preceding
/// line's trailing comment, or in the comment block directly above.
/// `SeqCst` is the conservative default and needs no note;
/// everything weaker is an claim about the protocol and must say so.
/// Applies to test code too — tests encode protocols as well.
fn atomics_ordering(ctx: &FileContext, file: &ScannedFile, out: &mut Vec<Violation>) {
    for (idx, l) in file.lines.iter().enumerate() {
        let line = idx + 1;
        for variant in ["Relaxed", "Acquire", "Release", "AcqRel"] {
            let needle = format!("Ordering::{variant}");
            for _ in token_positions(&l.code, &needle) {
                let justified = justified_by(file, line, "ordering:");
                if !justified {
                    out.push(Violation {
                        rule: "atomics_ordering",
                        file: ctx.path.clone(),
                        line,
                        message: format!(
                            "`Ordering::{variant}` without an `// ordering:` justification \
                             on this or the preceding line"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 3 — **lock_hygiene**: inside one function, taking `.lock()` on
/// a mutex while a `let`-bound guard from a *different* named mutex is
/// still live (textually: its enclosing block has not closed and it
/// was not explicitly `drop`ped) risks lock-order inversions and
/// violates the engine's one-state-mutex design.  Non-test code only;
/// `try_lock` is exempt (it cannot block).
fn lock_hygiene(ctx: &FileContext, file: &ScannedFile, out: &mut Vec<Violation>) {
    for f in &file.fns {
        if file.in_test(f.start_line) {
            continue;
        }
        // Flatten the body with a per-char line map.  Non-ASCII chars
        // (only reachable via exotic identifiers — literals are already
        // blanked) become `?` so char indices equal byte offsets and
        // the slicing below cannot split a code point.
        let mut flat = String::new();
        let mut line_of = Vec::new();
        for line in f.body_start..=f.body_end {
            for c in file.code(line).chars() {
                flat.push(if c.is_ascii() { c } else { '?' });
                line_of.push(line);
            }
            flat.push('\n');
            line_of.push(line);
        }
        let chars: Vec<char> = flat.chars().collect();
        struct Guard {
            var: String,
            mutex: String,
            depth: usize,
            line: usize,
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0usize;
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
            // `drop(var)` releases a guard early.
            if flat[i..].starts_with("drop(") && (i == 0 || !is_ident(chars[i - 1])) {
                let arg: String = flat[i + 5..].chars().take_while(|c| is_ident(*c)).collect();
                guards.retain(|g| g.var != arg);
            }
            if flat[i..].starts_with(".lock()") {
                let mutex = receiver_name(&chars, i);
                let line = line_of[i];
                if let Some(held) = guards.iter().find(|g| g.mutex != mutex) {
                    out.push(Violation {
                        rule: "lock_hygiene",
                        file: ctx.path.clone(),
                        line,
                        message: format!(
                            "`.lock()` on `{mutex}` while guard `{var}` on mutex `{held}` \
                             (taken on line {hline}) is still live — nested locks break the \
                             one-state-mutex design",
                            var = held.var,
                            held = held.mutex,
                            hline = held.line,
                        ),
                    });
                }
                // A `let`-bound guard stays live to end of scope.
                if let Some(var) = let_binding_before(&flat, i) {
                    guards.push(Guard {
                        var,
                        mutex,
                        depth,
                        line,
                    });
                }
                i += ".lock()".len();
                continue;
            }
            i += 1;
        }
    }
}

/// The identifier directly before a `.lock()` receiver dot, skipping
/// whitespace (rustfmt may break the chain across lines).
fn receiver_name(chars: &[char], dot_at: usize) -> String {
    let mut j = dot_at;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident(chars[j - 1]) {
        j -= 1;
    }
    if j == end {
        "<expr>".to_string()
    } else {
        chars[j..end].iter().collect()
    }
}

/// If the statement containing position `at` binds the lock guard
/// itself — `let g = receiver.lock()…` with nothing but a plain
/// receiver chain between `=` and `.lock()` — returns the bound
/// variable name.  `let m = Arc::clone(&x.lock()…)` binds the *result*
/// of a call, not the guard (the guard is a temporary dropped at the
/// statement's end), so any wrapping call or path separator before
/// `.lock()` means no live guard.  The statement start is the last
/// `;`, `{` or `}` before `at`.
fn let_binding_before(flat: &str, at: usize) -> Option<String> {
    let start = flat[..at]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt = flat[start..at].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let var: String = rest.chars().take_while(|c| is_ident(*c)).collect();
    if var.is_empty() {
        return None;
    }
    // Everything between `=` and `.lock()` must be a bare receiver
    // chain (idents, dots, `&`, `*`, whitespace) for `var` to bind the
    // guard.
    let init = rest[var.len()..].trim_start().strip_prefix('=')?;
    if init
        .chars()
        .all(|c| is_ident(c) || matches!(c, '.' | '&' | '*' | ' ' | '\n' | '\t'))
    {
        Some(var)
    } else {
        None
    }
}

/// Rule 4 — **unsafe_audit**: every `unsafe` token (block, fn, impl)
/// requires a `// SAFETY:` comment on the same line or in the comment
/// block directly above.  The workspace currently has zero `unsafe`;
/// this rule keeps any future one justified.  Applies everywhere,
/// tests included.
fn unsafe_audit(ctx: &FileContext, file: &ScannedFile, out: &mut Vec<Violation>) {
    for (idx, l) in file.lines.iter().enumerate() {
        let line = idx + 1;
        for _ in token_positions(&l.code, "unsafe") {
            let justified = justified_by(file, line, "SAFETY:");
            if !justified {
                out.push(Violation {
                    rule: "unsafe_audit",
                    file: ctx.path.clone(),
                    line,
                    message: "`unsafe` without a `// SAFETY:` justification on this or the \
                              preceding line"
                        .to_string(),
                });
            }
        }
    }
}

/// Rule 5 — **typed_errors**: library crates (config
/// `[rules.typed_errors] library_crates`) plumb errors through the
/// typed taxonomies (`MonitorError`, `SubmitError`, `WireError`,
/// `PersistError`, …), never through `Box<dyn Error>`, stringly
/// `.expect("…")`, or `unwrap_or_default()` silently swallowing a
/// `Result`.  Non-test `src/` code only (`unwrap_or_default` on an
/// `Option` is a textual false positive — waive it with the reason).
fn typed_errors(ctx: &FileContext, file: &ScannedFile, cfg: &Config, out: &mut Vec<Violation>) {
    if ctx.kind != FileKind::Lib || !cfg.library_crates.iter().any(|c| c == &ctx.crate_dir) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let line = idx + 1;
        if l.code.contains("Box<dyn") && l.code.contains("Error") {
            out.push(Violation {
                rule: "typed_errors",
                file: ctx.path.clone(),
                line,
                message: "`Box<dyn Error>` in a library crate — use the crate's typed \
                          error enum"
                    .to_string(),
            });
        }
        for _ in token_positions(&l.code, ".unwrap_or_default(") {
            out.push(Violation {
                rule: "typed_errors",
                file: ctx.path.clone(),
                line,
                message: "`unwrap_or_default()` can silently swallow an `Err` — match on \
                          it (or waive when the receiver is an `Option`)"
                    .to_string(),
            });
        }
        for at in token_positions(&l.code, ".expect(") {
            // Only stringly expects: the first argument is a string
            // literal (possibly on the next line after rustfmt).
            let after = l.code[at + ".expect(".len()..].trim_start();
            let next = file.code(line + 1);
            let stringly =
                after.starts_with('"') || (after.is_empty() && next.trim_start().starts_with('"'));
            if stringly {
                out.push(Violation {
                    rule: "typed_errors",
                    file: ctx.path.clone(),
                    line,
                    message: "stringly `.expect(\"…\")` in a library crate — return the \
                              crate's typed error instead of panicking"
                        .to_string(),
                });
            }
        }
    }
}

/// Rule 6 — **test_flakiness**: `thread::sleep` used as a
/// synchronization point in test code makes suites timing-dependent —
/// poll a condition with a deadline instead, or waive with the reason
/// the sleep is not synchronizing anything.  Bench crates (config
/// `[rules.test_flakiness] exempt_crates`) sleep on purpose and are
/// exempt, as is non-test code (servers legitimately back off).
fn test_flakiness(ctx: &FileContext, file: &ScannedFile, cfg: &Config, out: &mut Vec<Violation>) {
    if ctx.kind == FileKind::Bench
        || cfg
            .flakiness_exempt_crates
            .iter()
            .any(|c| c == &ctx.crate_dir)
    {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if !l.in_test {
            continue;
        }
        let line = idx + 1;
        for _ in token_positions(&l.code, "thread::sleep") {
            out.push(Violation {
                rule: "test_flakiness",
                file: ctx.path.clone(),
                line,
                message: "`thread::sleep` in test code is a timing assumption — poll with \
                          a deadline, or waive with why this sleep cannot flake"
                    .to_string(),
            });
        }
    }
}

/// Rule 7 — **sync_facade**: `src/` code in facade crates (config
/// `[rules.sync_facade] facade_crates`) reaches sync primitives and
/// threads through the `naps_sync` facade, never `std::sync` or
/// `std::thread` directly — a direct `std` path compiles to the same
/// thing in production but is invisible to the `naps_sim` scheduler,
/// silently shrinking the interleaving space the checker explores.
/// Catches both `use` statements and inline paths
/// (`std::thread::sleep(…)`); comments and strings can't trigger it
/// (the rule reads the masked code channel).  Test code in those
/// crates runs under the real OS scheduler anyway and is exempt.
fn sync_facade(ctx: &FileContext, file: &ScannedFile, cfg: &Config, out: &mut Vec<Violation>) {
    if ctx.kind != FileKind::Lib || !cfg.facade_crates.iter().any(|c| c == &ctx.crate_dir) {
        return;
    }
    for (idx, l) in file.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let line = idx + 1;
        for needle in ["std::sync", "std::thread"] {
            for _ in token_positions(&l.code, needle) {
                out.push(Violation {
                    rule: "sync_facade",
                    file: ctx.path.clone(),
                    line,
                    message: format!(
                        "direct `{needle}` in a facade crate — import through \
                         `naps_sync` so the simulator can schedule it"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn ctx(path: &str, kind: FileKind) -> FileContext {
        let crate_dir = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("x")
            .to_string();
        FileContext {
            path: path.to_string(),
            crate_dir,
            kind,
        }
    }

    fn cfg_with(deny: &[&str], libs: &[&str]) -> Config {
        Config {
            panic_deny_files: deny.iter().map(|s| s.to_string()).collect(),
            library_crates: libs.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        }
    }

    #[test]
    fn panic_freedom_catches_each_construct_and_skips_tests() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    let x = v[i];\n    v.first().unwrap();\n    opt.expect(\"msg\");\n    panic!(\"no\");\n    x\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = scan(src, false);
        let cfg = cfg_with(&["crates/serve/src/hot.rs"], &[]);
        let v = check_file(&ctx("crates/serve/src/hot.rs", FileKind::Lib), &f, &cfg);
        let pf: Vec<_> = v.iter().filter(|v| v.rule == "panic_freedom").collect();
        assert_eq!(pf.len(), 4, "{pf:?}");
        assert!(pf.iter().all(|v| v.line <= 5));
    }

    #[test]
    fn hot_path_alloc_catches_allocations_and_skips_lookalikes() {
        let src = "fn f(v: &[u32]) {\n    let a = Vec::new();\n    let b = vec![1, 2];\n    let c = v.to_vec();\n    let t = Tensor::zeros(&[2]);\n    let d = x.clone();\n    let ok = Arc::clone(&x);\n    let ok2 = it.cloned().collect::<Vec<_>>();\n    let ok3 = Vec::with_capacity(4);\n    my_vec!(9);\n    // a comment saying vec![…] is fine\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let z = Vec::new(); }\n}\n";
        let f = scan(src, false);
        let cfg = Config {
            hot_path_files: vec!["crates/core/src/prepared.rs".to_string()],
            ..Config::default()
        };
        let v = check_file(&ctx("crates/core/src/prepared.rs", FileKind::Lib), &f, &cfg);
        let h: Vec<_> = v.iter().filter(|v| v.rule == "hot_path_alloc").collect();
        assert_eq!(h.len(), 5, "{h:?}");
        assert_eq!(
            h.iter().map(|v| v.line).collect::<Vec<_>>(),
            [2, 3, 4, 5, 6],
            "UFCS Arc::clone, .cloned(), with_capacity, other macros, \
             comments and test code must not flag"
        );
        // The same file off the deny-list is silent.
        let v = check_file(&ctx("crates/core/src/other.rs", FileKind::Lib), &f, &cfg);
        assert!(v.iter().all(|v| v.rule != "hot_path_alloc"), "{v:?}");
    }

    #[test]
    fn index_detection_ignores_types_literals_and_attrs() {
        let clean = "#[derive(Debug)]\nfn f(a: &[f32], b: [u8; 4]) -> Vec<u8> {\n    let v = vec![1, 2];\n    let w = [0u8; 4];\n    v\n}\n";
        let f = scan(clean, false);
        let cfg = cfg_with(&["crates/x/src/f.rs"], &[]);
        let v = check_file(&ctx("crates/x/src/f.rs", FileKind::Lib), &f, &cfg);
        assert!(v.iter().all(|v| v.rule != "panic_freedom"), "{v:?}");
    }

    #[test]
    fn atomics_need_ordering_notes() {
        let src = "a.store(true, Ordering::SeqCst);\nd.load(Ordering::Relaxed);\n// ordering: counter only, no ordering needed\nb.fetch_add(1, Ordering::Relaxed);\nc.load(Ordering::Acquire); // ordering: pairs with store in publish\n";
        let f = scan(src, false);
        let v = check_file(
            &ctx("crates/x/src/f.rs", FileKind::Lib),
            &f,
            &Config::default(),
        );
        let a: Vec<_> = v.iter().filter(|v| v.rule == "atomics_ordering").collect();
        assert_eq!(a.len(), 1, "{a:?}");
        assert_eq!(a[0].line, 2);
    }

    #[test]
    fn nested_locks_on_different_mutexes_flag() {
        let src = "fn f(&self) {\n    let state = self.state.lock().unwrap_or_else(|e| e.into_inner());\n    let drift = self.drift.lock().unwrap_or_else(|e| e.into_inner());\n}\nfn ok(&self) {\n    let state = self.state.lock().unwrap();\n    drop(state);\n    let drift = self.drift.lock().unwrap();\n}\nfn scoped(&self) {\n    {\n        let state = self.state.lock().unwrap();\n    }\n    let drift = self.drift.lock().unwrap();\n}\n";
        let f = scan(src, false);
        let v = check_file(
            &ctx("crates/x/src/f.rs", FileKind::Lib),
            &f,
            &Config::default(),
        );
        let l: Vec<_> = v.iter().filter(|v| v.rule == "lock_hygiene").collect();
        assert_eq!(l.len(), 1, "{l:?}");
        assert_eq!(l[0].line, 3);
    }

    #[test]
    fn unsafe_requires_safety_note() {
        let src = "// SAFETY: len checked above\nlet x = unsafe { p.read() };\nlet y = unsafe { q.read() };\n";
        let f = scan(src, false);
        let v = check_file(
            &ctx("crates/x/src/f.rs", FileKind::Lib),
            &f,
            &Config::default(),
        );
        let u: Vec<_> = v.iter().filter(|v| v.rule == "unsafe_audit").collect();
        assert_eq!(u.len(), 1, "{u:?}");
        assert_eq!(u[0].line, 3);
    }

    #[test]
    fn typed_errors_flags_box_expect_and_unwrap_or_default() {
        let src = "fn f() -> Result<(), Box<dyn std::error::Error>> {\n    let v = parse().unwrap_or_default();\n    let w = load().expect(\"load failed\");\n    let x = opt.expect(non_literal_msg);\n    Ok(())\n}\n";
        let f = scan(src, false);
        let cfg = cfg_with(&[], &["x"]);
        let v = check_file(&ctx("crates/x/src/f.rs", FileKind::Lib), &f, &cfg);
        let t: Vec<_> = v.iter().filter(|v| v.rule == "typed_errors").collect();
        assert_eq!(t.len(), 3, "{t:?}");
    }

    #[test]
    fn sync_facade_flags_std_paths_in_facade_crates_only() {
        let src = "use std::sync::{Arc, Mutex};\nuse std::thread;\n// a comment saying std::sync is fine\nlet s = \"std::thread in a string\";\nstd::thread::sleep(d);\nuse naps_sync::{Arc, Mutex};\n#[cfg(test)]\nmod tests {\n    use std::sync::mpsc;\n}\n";
        let f = scan(src, false);
        let cfg = Config {
            facade_crates: vec!["serve".to_string()],
            ..Config::default()
        };
        let v = check_file(&ctx("crates/serve/src/engine.rs", FileKind::Lib), &f, &cfg);
        let s: Vec<_> = v.iter().filter(|v| v.rule == "sync_facade").collect();
        assert_eq!(s.len(), 3, "{s:?}");
        assert_eq!(
            s.iter().map(|v| v.line).collect::<Vec<_>>(),
            [1, 2, 5],
            "comments, strings and test code must not flag"
        );
        // The same file in a non-facade crate is silent.
        let v = check_file(&ctx("crates/nn/src/engine.rs", FileKind::Lib), &f, &cfg);
        assert!(v.iter().all(|v| v.rule != "sync_facade"), "{v:?}");
        // So is a test file in the facade crate.
        let v = check_file(&ctx("crates/serve/tests/e2e.rs", FileKind::Test), &f, &cfg);
        assert!(v.iter().all(|v| v.rule != "sync_facade"), "{v:?}");
    }

    #[test]
    fn sleeps_flag_only_in_test_code() {
        let src = "fn backoff() {\n    thread::sleep(RETRY);\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        std::thread::sleep(Duration::from_millis(5));\n    }\n}\n";
        let f = scan(src, false);
        let v = check_file(
            &ctx("crates/x/src/f.rs", FileKind::Lib),
            &f,
            &Config::default(),
        );
        let s: Vec<_> = v.iter().filter(|v| v.rule == "test_flakiness").collect();
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].line, 8);
    }
}
