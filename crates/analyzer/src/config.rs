//! `analyzer.toml` — the checked-in analysis configuration.
//!
//! The analyzer is std-only (it must not depend on anything it
//! analyses), so this module carries a deliberately tiny TOML-subset
//! parser: `[section.sub]` headers, string / bool / integer values,
//! and (possibly multi-line) string arrays.  Unknown keys are errors —
//! a typo in the config must not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// How violations of a rule count towards the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Unwaived violations fail the run.
    Deny,
    /// Reported and counted, but never fail the run.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        })
    }
}

/// Parsed analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the workspace root) to walk for `.rs`
    /// files.
    pub roots: Vec<String>,
    /// Path prefixes (relative, `/`-separated) excluded from the walk —
    /// the seeded-violation fixtures above all.
    pub exclude: Vec<String>,
    /// Where the JSON report goes, relative to the workspace root.
    pub results: String,
    /// Per-rule severity, keyed by rule name.
    pub severity: BTreeMap<String, Severity>,
    /// Files (relative paths) under the panic-freedom deny-list.
    pub panic_deny_files: Vec<String>,
    /// Files (relative paths) under the hot-path-allocation deny-list:
    /// steady-state serving code that must not touch the allocator.
    pub hot_path_files: Vec<String>,
    /// Crate directory names (under `crates/`) treated as library
    /// crates by the typed-errors rule.
    pub library_crates: Vec<String>,
    /// Crate directory names whose test code is exempt from the
    /// test-flakiness rule (benchmark harnesses sleep on purpose).
    pub flakiness_exempt_crates: Vec<String>,
    /// Crate directory names whose `src/` code must import sync
    /// primitives through the `naps_sync` facade rather than
    /// `std::sync` / `std::thread` (so the simulator can schedule
    /// them).
    pub facade_crates: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["crates".to_string()],
            exclude: Vec::new(),
            results: "results/analysis.json".to_string(),
            severity: BTreeMap::new(),
            panic_deny_files: Vec::new(),
            hot_path_files: Vec::new(),
            library_crates: Vec::new(),
            flakiness_exempt_crates: Vec::new(),
            facade_crates: Vec::new(),
        }
    }
}

impl Config {
    /// The effective severity of a rule (rules default to deny; the
    /// config can relax individual rules to `warn`).
    pub fn severity(&self, rule: &str) -> Severity {
        self.severity.get(rule).copied().unwrap_or(Severity::Deny)
    }

    /// Parses the TOML subset described in the module docs.
    pub fn from_toml_str(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| ConfigError::at(idx, "expected `key = value`"))?;
            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !balanced(&value) {
                let (_, cont) = lines
                    .next()
                    .ok_or_else(|| ConfigError::at(idx, "unterminated array"))?;
                let cont = strip_comment(cont).trim().to_string();
                if cont.is_empty() {
                    continue;
                }
                value.push(' ');
                value.push_str(&cont);
            }
            cfg.apply(&section, &key, &value, idx)?;
        }
        Ok(cfg)
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: &str,
        idx: usize,
    ) -> Result<(), ConfigError> {
        match (section, key) {
            ("analyzer", "roots") => self.roots = parse_string_array(value, idx)?,
            ("analyzer", "exclude") => self.exclude = parse_string_array(value, idx)?,
            ("analyzer", "results") => self.results = parse_string(value, idx)?,
            (s, "severity") if s.starts_with("rules.") => {
                let rule = s.trim_start_matches("rules.").to_string();
                let sev = match parse_string(value, idx)?.as_str() {
                    "deny" => Severity::Deny,
                    "warn" => Severity::Warn,
                    other => {
                        return Err(ConfigError::at(
                            idx,
                            &format!("unknown severity `{other}` (deny|warn)"),
                        ))
                    }
                };
                self.severity.insert(rule, sev);
            }
            ("rules.panic_freedom", "deny_files") => {
                self.panic_deny_files = parse_string_array(value, idx)?;
            }
            ("rules.hot_path_alloc", "deny_files") => {
                self.hot_path_files = parse_string_array(value, idx)?;
            }
            ("rules.typed_errors", "library_crates") => {
                self.library_crates = parse_string_array(value, idx)?;
            }
            ("rules.test_flakiness", "exempt_crates") => {
                self.flakiness_exempt_crates = parse_string_array(value, idx)?;
            }
            ("rules.sync_facade", "facade_crates") => {
                self.facade_crates = parse_string_array(value, idx)?;
            }
            (s, k) => {
                return Err(ConfigError::at(
                    idx,
                    &format!("unknown config key `{k}` in section `[{s}]`"),
                ))
            }
        }
        Ok(())
    }
}

/// A config parse failure with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl ConfigError {
    fn at(zero_based: usize, message: &str) -> ConfigError {
        ConfigError {
            line: zero_based + 1,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyzer.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Drops a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    let opens = value.matches('[').count();
    let closes = value.matches(']').count();
    opens == closes
}

fn parse_string(value: &str, idx: usize) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or_else(|| ConfigError::at(idx, "expected a quoted string"))
}

fn parse_string_array(value: &str, idx: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError::at(idx, "expected a [ … ] array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, idx)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::from_toml_str(
            r#"
# comment
[analyzer]
roots = ["crates"]
exclude = [
    "crates/analyzer/tests/fixtures", # seeded violations
    "target",
]
results = "results/analysis.json"

[rules.panic_freedom]
severity = "deny"
deny_files = ["crates/gateway/src/proto.rs"]

[rules.hot_path_alloc]
severity = "deny"
deny_files = ["crates/core/src/prepared.rs"]

[rules.test_flakiness]
severity = "warn"
exempt_crates = ["bench"]

[rules.typed_errors]
library_crates = ["core", "serve"]

[rules.sync_facade]
severity = "deny"
facade_crates = ["serve", "gateway"]
"#,
        )
        .expect("config parses");
        assert_eq!(cfg.roots, ["crates"]);
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(cfg.severity("panic_freedom"), Severity::Deny);
        assert_eq!(cfg.hot_path_files, ["crates/core/src/prepared.rs"]);
        assert_eq!(cfg.severity("test_flakiness"), Severity::Warn);
        assert_eq!(cfg.severity("unlisted_rule"), Severity::Deny);
        assert_eq!(cfg.library_crates, ["core", "serve"]);
        assert_eq!(cfg.flakiness_exempt_crates, ["bench"]);
        assert_eq!(cfg.facade_crates, ["serve", "gateway"]);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = Config::from_toml_str("[analyzer]\nrotos = [\"crates\"]\n")
            .expect_err("typo must not parse");
        assert!(err.message.contains("rotos"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::from_toml_str("[analyzer]\nresults = \"res#ults.json\"\n")
            .expect("hash inside string");
        assert_eq!(cfg.results, "res#ults.json");
    }
}
