//! Report rendering: the machine-readable `results/analysis.json` and
//! the human summary printed to stdout.
//!
//! JSON is hand-rolled (the analyzer is std-only by design); the
//! writer escapes strings per RFC 8259 and emits keys in deterministic
//! order so the artifact diffs cleanly between runs.

use crate::config::{Config, Severity};
use crate::driver::{Analysis, Finding};
use crate::rules::RULE_NAMES;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as a JSON string body (no surrounding quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-rule aggregates used by both output forms.
struct RuleStats {
    total: usize,
    waived: usize,
    unwaived: usize,
    per_crate: BTreeMap<String, usize>,
}

fn rule_stats(analysis: &Analysis) -> BTreeMap<&'static str, RuleStats> {
    let mut map: BTreeMap<&'static str, RuleStats> = BTreeMap::new();
    for rule in RULE_NAMES {
        map.insert(
            rule,
            RuleStats {
                total: 0,
                waived: 0,
                unwaived: 0,
                per_crate: BTreeMap::new(),
            },
        );
    }
    for f in &analysis.findings {
        let stats = map.entry(f.violation.rule).or_insert_with(|| RuleStats {
            total: 0,
            waived: 0,
            unwaived: 0,
            per_crate: BTreeMap::new(),
        });
        stats.total += 1;
        if f.waived_by.is_some() {
            stats.waived += 1;
        } else {
            stats.unwaived += 1;
        }
        let crate_dir = f
            .violation
            .file
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("<root>")
            .to_string();
        *stats.per_crate.entry(crate_dir).or_insert(0) += 1;
    }
    map
}

/// Renders the full JSON artifact.
pub fn to_json(analysis: &Analysis, cfg: &Config) -> String {
    let stats = rule_stats(analysis);
    let waived: usize = analysis
        .findings
        .iter()
        .filter(|f| f.waived_by.is_some())
        .count();
    let unwaived = analysis.findings.len() - waived;
    let deny_unwaived = analysis
        .findings
        .iter()
        .filter(|f| f.waived_by.is_none() && f.severity == Severity::Deny)
        .count();

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema_version\": 2,");
    let _ = writeln!(j, "  \"tool\": \"naps-analyzer\",");
    let _ = writeln!(j, "  \"files_scanned\": {},", analysis.files_scanned);
    let _ = writeln!(j, "  \"lines_scanned\": {},", analysis.lines_scanned);
    let _ = writeln!(
        j,
        "  \"summary\": {{ \"violations\": {}, \"waived\": {}, \"unwaived\": {}, \"deny_unwaived\": {} }},",
        analysis.findings.len(),
        waived,
        unwaived,
        deny_unwaived
    );

    j.push_str("  \"per_rule\": {\n");
    let mut first = true;
    for (rule, s) in &stats {
        if !first {
            j.push_str(",\n");
        }
        first = false;
        let _ = write!(
            j,
            "    \"{}\": {{ \"severity\": \"{}\", \"total\": {}, \"waived\": {}, \"unwaived\": {}, \"per_crate\": {{",
            rule,
            cfg.severity(rule),
            s.total,
            s.waived,
            s.unwaived
        );
        let mut cfirst = true;
        for (crate_dir, n) in &s.per_crate {
            if !cfirst {
                j.push_str(", ");
            }
            cfirst = false;
            let _ = write!(j, "\"{}\": {}", esc(crate_dir), n);
        }
        j.push_str("} }");
    }
    j.push_str("\n  },\n");

    let unused = analysis
        .waivers
        .iter()
        .filter(|w| w.suppressed == 0)
        .count();
    let _ = writeln!(
        j,
        "  \"waivers\": {{ \"total\": {}, \"unused\": {}, \"entries\": [",
        analysis.waivers.len(),
        unused
    );
    for (i, w) in analysis.waivers.iter().enumerate() {
        let rules: Vec<String> = w.rules.iter().map(|r| format!("\"{}\"", esc(r))).collect();
        let _ = write!(
            j,
            "    {{ \"file\": \"{}\", \"line\": {}, \"rules\": [{}], \"suppressed\": {}, \"reason\": \"{}\" }}",
            esc(&w.file),
            w.line,
            rules.join(", "),
            w.suppressed,
            esc(&w.reason)
        );
        j.push_str(if i + 1 < analysis.waivers.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ] },\n");

    let unwaived_list: Vec<&Finding> = analysis
        .findings
        .iter()
        .filter(|f| f.waived_by.is_none())
        .collect();
    j.push_str("  \"unwaived\": [\n");
    for (i, f) in unwaived_list.iter().enumerate() {
        let _ = write!(
            j,
            "    {{ \"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\" }}",
            f.violation.rule,
            f.severity,
            esc(&f.violation.file),
            f.violation.line,
            esc(&f.violation.message)
        );
        j.push_str(if i + 1 < unwaived_list.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Renders the human summary (and the unwaived-violation list, which
/// is the part a failing CI run shows first).
pub fn human(analysis: &Analysis, cfg: &Config) -> String {
    let stats = rule_stats(analysis);
    let mut out = String::new();
    for f in analysis.findings.iter().filter(|f| f.waived_by.is_none()) {
        let _ = writeln!(
            out,
            "{}:{}: [{}/{}] {}",
            f.violation.file, f.violation.line, f.violation.rule, f.severity, f.violation.message
        );
    }
    let _ = writeln!(
        out,
        "naps-analyzer: {} files, {} lines scanned",
        analysis.files_scanned, analysis.lines_scanned
    );
    for (rule, s) in &stats {
        if s.total == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>3} violation(s): {} waived, {} unwaived [{}]",
            rule,
            s.total,
            s.waived,
            s.unwaived,
            cfg.severity(rule)
        );
    }
    let unused = analysis
        .waivers
        .iter()
        .filter(|w| w.suppressed == 0)
        .count();
    let _ = writeln!(
        out,
        "  {} waiver(s) on file, {} unused",
        analysis.waivers.len(),
        unused
    );
    out
}
