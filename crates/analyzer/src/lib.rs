//! # naps-analyzer — self-hosted static analysis for the workspace
//!
//! The workspace's headline guarantees — a wire boundary that cannot
//! panic, bit-identical concurrent serving, a one-state-mutex engine —
//! were until now enforced only by tests.  This crate turns them into
//! machine-checked properties of the *source*: a std-only, token-aware
//! scanner feeds a rule engine that sweeps every `.rs` file in the
//! workspace, and CI fails on any unwaived violation.  The analyzer is
//! **self-hosting**: it scans its own sources under the same rules.
//!
//! ## Rules
//!
//! | rule | checks |
//! |------|--------|
//! | `panic_freedom` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/direct indexing in deny-listed hot-path files (`analyzer.toml`) |
//! | `atomics_ordering` | every `Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel` carries an `// ordering:` justification on the same or preceding line (`SeqCst` is exempt) |
//! | `lock_hygiene` | no `.lock()` on one mutex while a `let`-bound guard of a different mutex is textually live in the same function |
//! | `unsafe_audit` | every `unsafe` carries a `// SAFETY:` justification |
//! | `typed_errors` | library crates use their typed error enums — no `Box<dyn Error>`, stringly `.expect("…")`, or `unwrap_or_default()` |
//! | `test_flakiness` | no `thread::sleep` as a synchronization point in test code |
//! | `sync_facade` | facade crates (`analyzer.toml`) import sync primitives through `naps_sync`, never `std::sync`/`std::thread` directly — direct paths are invisible to the `naps_sim` scheduler |
//! | `waiver_syntax` | waivers themselves are well-formed, name known rules, and carry a non-empty reason (never waivable) |
//!
//! ## Waivers
//!
//! A finding that is provably fine is silenced in place — with a
//! mandatory reason — and the waiver itself is counted in the report:
//!
//! ```text
//! let b = hello[4];            // naps-lint: allow(panic_freedom, "fixed-size array, constant index")
//!
//! // naps-lint: allow-fn(panic_freedom, "child indices < len by construction; validated on load")
//! fn walk(&self, input: &Pattern) -> bool { … }
//! ```
//!
//! `allow(…)` covers its own line (or the next code line when the
//! comment stands alone); `allow-fn(…)` covers the whole body of the
//! function that follows.  Several rules may be listed before the
//! reason.  A malformed waiver — missing or empty reason, unknown rule
//! name — is itself a deny violation.
//!
//! ## Running
//!
//! ```text
//! cargo run --release -p naps-analyzer            # analyze, write results/analysis.json
//! cargo run --release -p naps-analyzer -- --quiet # only the summary + exit status
//! ```
//!
//! The process exits non-zero when any unwaived violation of a
//! `deny`-severity rule remains.  The JSON artifact records the
//! per-rule per-crate breakdown, the full waiver census (every reason,
//! every suppression count, unused waivers) and the unwaived list.

pub mod config;
pub mod driver;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod waiver;

pub use config::{Config, Severity};
pub use driver::{analyze_files, analyze_root, Analysis};
pub use rules::{FileContext, FileKind, Violation, RULE_NAMES};
