//! Inline waivers: `// naps-lint: allow(rule, "reason")`.
//!
//! A waiver suppresses named rules at a precise scope and **must**
//! carry a non-empty reason — a waiver is a reviewed claim ("provably
//! in-bounds", "fixed-size array"), not an opt-out.  Two forms exist:
//!
//! * `// naps-lint: allow(rule[, rule…], "reason")` — suppresses the
//!   listed rules on the line it shares code with, or (when the
//!   comment stands alone) on the next line that has code.
//! * `// naps-lint: allow-fn(rule[, rule…], "reason")` — placed above
//!   a `fn` item (attributes in between are fine), suppresses the
//!   listed rules across that function's whole body.  For hot loops
//!   where per-line waivers would drown the code.
//!
//! Malformed waivers — missing reason, unknown rule name, `allow-fn`
//! with no following function — are themselves violations (rule
//! `waiver_syntax`, always deny, never waivable).  Every waiver is
//! counted in the report together with how many violations it
//! suppressed, so the waiver census is part of the reviewed artifact.

use crate::rules::RULE_NAMES;
use crate::scanner::ScannedFile;

/// The scope a waiver applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaiverScope {
    /// A single 1-based line.
    Line(usize),
    /// An inclusive 1-based line range (a function body).
    Fn { start: usize, end: usize },
}

/// One parsed, well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    pub scope: WaiverScope,
}

impl Waiver {
    /// Whether this waiver suppresses `rule` at `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rules.iter().any(|r| r == rule)
            && match self.scope {
                WaiverScope::Line(l) => l == line,
                WaiverScope::Fn { start, end } => start <= line && line <= end,
            }
    }
}

/// A malformed waiver, reported as a `waiver_syntax` violation.
#[derive(Debug, Clone)]
pub struct WaiverError {
    pub line: usize,
    pub message: String,
}

/// Extracts all waivers from a scanned file's comment channel.
pub fn extract(file: &ScannedFile) -> (Vec<Waiver>, Vec<WaiverError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for (idx, l) in file.lines.iter().enumerate() {
        let line = idx + 1;
        // Only comments that *begin* with the marker are waivers — doc
        // comments mentioning the syntax in prose (like this module's)
        // stay prose.
        let Some(rest) = l.comment.trim_start().strip_prefix("naps-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (fn_scoped, rest) = if let Some(r) = rest.strip_prefix("allow-fn(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            errors.push(WaiverError {
                line,
                message: "naps-lint comment is not `allow(…)` or `allow-fn(…)`".to_string(),
            });
            continue;
        };
        let Some(inner) = rest.rfind(')').map(|end| &rest[..end]) else {
            errors.push(WaiverError {
                line,
                message: "unterminated waiver: missing `)`".to_string(),
            });
            continue;
        };
        match parse_inner(inner) {
            Err(message) => errors.push(WaiverError { line, message }),
            Ok((rules, reason)) => {
                let scope = if fn_scoped {
                    match fn_scope_after(file, line) {
                        Some((start, end)) => WaiverScope::Fn { start, end },
                        None => {
                            errors.push(WaiverError {
                                line,
                                message: "allow-fn is not followed by a function".to_string(),
                            });
                            continue;
                        }
                    }
                } else {
                    WaiverScope::Line(line_scope(file, idx))
                };
                waivers.push(Waiver {
                    line,
                    rules,
                    reason,
                    scope,
                });
            }
        }
    }
    (waivers, errors)
}

/// Parses `rule[, rule…], "reason"` and validates both halves.
fn parse_inner(inner: &str) -> Result<(Vec<String>, String), String> {
    let Some(quote) = inner.find('"') else {
        return Err("waiver has no quoted reason — every waiver must say why".to_string());
    };
    let reason = inner[quote..]
        .trim_start_matches('"')
        .trim_end_matches('"')
        .trim()
        .to_string();
    if reason.is_empty() {
        return Err("waiver reason is empty — every waiver must say why".to_string());
    }
    let mut rules = Vec::new();
    for rule in inner[..quote].split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        if !RULE_NAMES.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` in waiver (known: {})",
                RULE_NAMES.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    if rules.is_empty() {
        return Err("waiver names no rules".to_string());
    }
    Ok((rules, reason))
}

/// The line a line-scoped waiver applies to: its own line when that
/// line has code, else the next line that has code.
fn line_scope(file: &ScannedFile, idx: usize) -> usize {
    let has_code = |l: &str| !l.trim().is_empty();
    if has_code(&file.lines[idx].code) {
        return idx + 1;
    }
    for (j, l) in file.lines.iter().enumerate().skip(idx + 1) {
        if has_code(&l.code) {
            return j + 1;
        }
    }
    idx + 1
}

/// Resolves `allow-fn` at `line` to the body range of the function that
/// follows.  Intervening lines may only be attributes or blank.
fn fn_scope_after(file: &ScannedFile, line: usize) -> Option<(usize, usize)> {
    let mut next_code = None;
    for (j, l) in file.lines.iter().enumerate().skip(line.saturating_sub(1)) {
        let code = l.code.trim();
        if j + 1 == line {
            // The waiver's own line may hold trailing code — reject
            // that for fn scope (it must stand alone above the item).
            if !code.is_empty() {
                return None;
            }
            continue;
        }
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        next_code = Some(j + 1);
        break;
    }
    let start = next_code?;
    let f = file.fns.iter().find(|f| f.start_line == start)?;
    Some((f.start_line, f.body_end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn line_waiver_on_shared_line_and_standalone() {
        let src = "x.unwrap(); // naps-lint: allow(panic_freedom, \"provably some\")\n// naps-lint: allow(atomics_ordering, \"metrics only\")\ncounter.fetch_add(1, Ordering::Relaxed);\n";
        let f = scan(src, false);
        let (ws, errs) = extract(&f);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws.len(), 2);
        assert!(ws[0].covers("panic_freedom", 1));
        assert!(ws[1].covers("atomics_ordering", 3));
        assert!(!ws[1].covers("panic_freedom", 3));
    }

    #[test]
    fn fn_waiver_covers_the_body() {
        let src = "// naps-lint: allow-fn(panic_freedom, \"indices < len by construction\")\n#[inline]\nfn walk(&self) {\n    self.nodes[0];\n}\nfn other() {}\n";
        let f = scan(src, false);
        let (ws, errs) = extract(&f);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws.len(), 1);
        assert!(ws[0].covers("panic_freedom", 4));
        assert!(!ws[0].covers("panic_freedom", 6));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_errors() {
        let f = scan(
            "// naps-lint: allow(panic_freedom)\n// naps-lint: allow(not_a_rule, \"x\")\n// naps-lint: allow(panic_freedom, \"\")\n",
            false,
        );
        let (ws, errs) = extract(&f);
        assert!(ws.is_empty());
        assert_eq!(errs.len(), 3);
        assert!(errs[0].message.contains("reason"));
        assert!(errs[1].message.contains("not_a_rule"));
        assert!(errs[2].message.contains("empty"));
    }
}
