//! Procedural MNIST-like digit images.
//!
//! Each digit class is a fixed skeleton of line segments on a
//! seven-segment-style layout; samples vary by affine pose, per-endpoint
//! jitter, stroke width and additive pixel noise.  The result is a
//! 10-class, 28×28 grayscale distribution with clear inter-class structure
//! and tunable intra-class spread — the statistical role MNIST plays in the
//! paper's Table I/II experiments.

use crate::dataset::Dataset;
use crate::raster::{affine_params, coverage, segment_distance};
use naps_tensor::{Randn, Tensor};
use rand::Rng;

/// Image side length (matching MNIST).
pub const SIDE: usize = 28;

/// Segment endpoints in unit glyph coordinates.
type Seg = (f32, f32, f32, f32);

// Seven-segment layout + two diagonals used by some glyph variants.
const A: Seg = (0.28, 0.18, 0.72, 0.18); // top
const B: Seg = (0.72, 0.18, 0.72, 0.50); // top right
const C: Seg = (0.72, 0.50, 0.72, 0.82); // bottom right
const D: Seg = (0.28, 0.82, 0.72, 0.82); // bottom
const E: Seg = (0.28, 0.50, 0.28, 0.82); // bottom left
const F: Seg = (0.28, 0.18, 0.28, 0.50); // top left
const G: Seg = (0.28, 0.50, 0.72, 0.50); // middle
const DIAG1: Seg = (0.40, 0.18, 0.50, 0.82); // used by "1" serif style
const DIAG7: Seg = (0.72, 0.18, 0.40, 0.82); // slanted stroke of "7"

/// Skeleton segments of each digit class.
pub fn glyph(digit: usize) -> Vec<Seg> {
    match digit {
        0 => vec![A, B, C, D, E, F],
        1 => vec![B, C, DIAG1],
        2 => vec![A, B, G, E, D],
        3 => vec![A, B, G, C, D],
        4 => vec![F, G, B, C],
        5 => vec![A, F, G, C, D],
        6 => vec![A, F, G, E, C, D],
        7 => vec![A, DIAG7],
        8 => vec![A, B, C, D, E, F, G],
        9 => vec![A, B, C, D, F, G],
        _ => panic!("digit {digit} out of range"),
    }
}

/// Rendering style controlling how hard the distribution is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitStyle {
    /// Pose jitter amplitude (see [`affine_params`]).
    pub jitter: f32,
    /// Per-endpoint positional jitter.
    pub endpoint_jitter: f32,
    /// Stroke radius range.
    pub stroke_min: f32,
    /// Stroke radius range.
    pub stroke_max: f32,
    /// Additive Gaussian pixel noise standard deviation.
    pub noise: f32,
}

impl DigitStyle {
    /// The easy, training-like distribution.
    pub fn clean() -> Self {
        DigitStyle {
            jitter: 0.5,
            endpoint_jitter: 0.015,
            stroke_min: 0.045,
            stroke_max: 0.075,
            noise: 0.04,
        }
    }

    /// A harder distribution for validation: more pose variation and
    /// noise, producing the small-but-nonzero misclassification rate the
    /// paper reports (1.19 % for network 1).
    pub fn hard() -> Self {
        DigitStyle {
            jitter: 0.85,
            endpoint_jitter: 0.025,
            stroke_min: 0.038,
            stroke_max: 0.082,
            noise: 0.07,
        }
    }
}

/// Renders one digit image.
pub fn render(digit: usize, style: DigitStyle, rng: &mut impl Rng) -> Tensor {
    let pose = affine_params(style.jitter, rng);
    let stroke = rng.gen_range(style.stroke_min..style.stroke_max);
    let segs: Vec<Seg> = glyph(digit)
        .into_iter()
        .map(|(x1, y1, x2, y2)| {
            let j = style.endpoint_jitter;
            (
                x1 + rng.gen_range(-j..=j),
                y1 + rng.gen_range(-j..=j),
                x2 + rng.gen_range(-j..=j),
                y2 + rng.gen_range(-j..=j),
            )
        })
        .collect();
    let mut data = vec![0.0f32; SIDE * SIDE];
    for py in 0..SIDE {
        for px in 0..SIDE {
            let ux = (px as f32 + 0.5) / SIDE as f32;
            let uy = (py as f32 + 0.5) / SIDE as f32;
            let (gx, gy) = pose.inverse_apply(ux, uy);
            let mut best = f32::INFINITY;
            for &(x1, y1, x2, y2) in &segs {
                let d = segment_distance(gx, gy, x1, y1, x2, y2);
                if d < best {
                    best = d;
                }
            }
            let mut v = coverage(best, stroke, 0.03);
            if style.noise > 0.0 {
                v += style.noise * rng.randn();
            }
            data[py * SIDE + px] = v.clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(vec![SIDE * SIDE], data)
}

/// Generates `n_per_class` images of every digit 0–9.
pub fn generate(n_per_class: usize, style: DigitStyle, rng: &mut impl Rng) -> Dataset {
    let mut ds = Dataset::new(10);
    for digit in 0..10 {
        for _ in 0..n_per_class {
            ds.push(render(digit, style, rng), digit);
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn render_produces_valid_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = render(3, DigitStyle::clean(), &mut rng);
        assert_eq!(img.len(), 784);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Strokes present: a reasonable number of bright pixels.
        let bright = img.data().iter().filter(|&&v| v > 0.5).count();
        assert!(bright > 30, "only {bright} bright pixels");
    }

    #[test]
    fn different_digits_render_differently() {
        let mut rng = StdRng::seed_from_u64(42);
        let style = DigitStyle {
            jitter: 0.0,
            endpoint_jitter: 0.0,
            stroke_min: 0.05,
            stroke_max: 0.0500001,
            noise: 0.0,
        };
        let a = render(0, style, &mut rng);
        let b = render(1, style, &mut rng);
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 10.0, "digits 0 and 1 are nearly identical: {diff}");
    }

    #[test]
    fn same_class_varies_between_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = render(5, DigitStyle::clean(), &mut rng);
        let b = render(5, DigitStyle::clean(), &mut rng);
        assert_ne!(a, b, "no intra-class variation");
    }

    #[test]
    fn generate_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate(5, DigitStyle::clean(), &mut rng);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.class_histogram(), vec![5; 10]);
    }

    #[test]
    fn every_digit_has_a_glyph() {
        for d in 0..10 {
            assert!(!glyph(d).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn glyph_rejects_non_digits() {
        let _ = glyph(10);
    }
}
