//! Procedural GTSRB-like traffic-sign images: 43 classes over 32×32 RGB.
//!
//! Classes are built from (shape, palette, ideogram) combinations.  Class
//! 14 is fixed to an octagonal red sign with a horizontal bar — the
//! "stop sign" the paper monitors in its GTSRB experiment.

use crate::dataset::Dataset;
use crate::raster::{
    affine_params, sdf_circle, sdf_diamond, sdf_regular_polygon, sdf_triangle_down,
    sdf_triangle_up, segment_distance,
};
use naps_tensor::{Randn, Tensor};
use rand::Rng;

/// Image side length.
pub const SIDE: usize = 32;
/// Number of sign classes (as in GTSRB).
pub const NUM_CLASSES: usize = 43;
/// The stop-sign class monitored by the paper's GTSRB experiment.
pub const STOP_SIGN_CLASS: usize = 14;

/// Outline shape of a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Circular sign (prohibitions, speed limits).
    Circle,
    /// Upward triangle (warnings).
    TriangleUp,
    /// Downward triangle (yield).
    TriangleDown,
    /// Octagon (stop).
    Octagon,
    /// Diamond (priority road).
    Diamond,
}

/// Inner ideogram drawn on the sign face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ideogram {
    /// Horizontal bar.
    Bar,
    /// Vertical bar.
    VBar,
    /// Filled dot.
    Dot,
    /// Diagonal cross.
    Cross,
    /// Chevron (two slanted strokes).
    Chevron,
    /// Empty face.
    Blank,
}

/// Border/face palette, RGB in `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Palette {
    /// Border colour.
    pub border: [f32; 3],
    /// Face colour.
    pub face: [f32; 3],
    /// Ideogram colour.
    pub glyph: [f32; 3],
}

const RED: [f32; 3] = [0.85, 0.10, 0.12];
const BLUE: [f32; 3] = [0.10, 0.25, 0.80];
const YELLOW: [f32; 3] = [0.95, 0.85, 0.15];
const WHITE: [f32; 3] = [0.95, 0.95, 0.95];
const DARK: [f32; 3] = [0.08, 0.08, 0.10];

/// Specification of one sign class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// Outline shape.
    pub shape: Shape,
    /// Colour scheme.
    pub palette: Palette,
    /// Inner ideogram.
    pub ideogram: Ideogram,
}

/// The 43 class specifications.  Deterministic; index 14 is the red
/// octagon "stop" sign.
pub fn class_spec(class: usize) -> ClassSpec {
    assert!(class < NUM_CLASSES, "class {class} out of range");
    if class == STOP_SIGN_CLASS {
        return ClassSpec {
            shape: Shape::Octagon,
            palette: Palette {
                border: WHITE,
                face: RED,
                glyph: WHITE,
            },
            ideogram: Ideogram::Bar,
        };
    }
    const SHAPES: [Shape; 5] = [
        Shape::Circle,
        Shape::TriangleUp,
        Shape::Diamond,
        Shape::TriangleDown,
        Shape::Octagon,
    ];
    const IDEOGRAMS: [Ideogram; 6] = [
        Ideogram::Bar,
        Ideogram::VBar,
        Ideogram::Dot,
        Ideogram::Cross,
        Ideogram::Chevron,
        Ideogram::Blank,
    ];
    const FACES: [[f32; 3]; 3] = [WHITE, YELLOW, BLUE];
    const BORDERS: [[f32; 3]; 3] = [RED, DARK, BLUE];
    // Mixed-radix enumeration over shape × ideogram × face (5·6·3 = 90
    // combinations) so all 43 classes receive distinct specifications.
    let shape = SHAPES[class % SHAPES.len()];
    let ideogram = IDEOGRAMS[(class / SHAPES.len()) % IDEOGRAMS.len()];
    let face = FACES[(class / (SHAPES.len() * IDEOGRAMS.len())) % FACES.len()];
    let border = BORDERS[(class + 1) % BORDERS.len()];
    ClassSpec {
        shape,
        palette: Palette {
            border,
            face,
            glyph: DARK,
        },
        ideogram,
    }
}

/// Rendering style controlling distribution hardness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignStyle {
    /// Pose jitter amplitude.
    pub jitter: f32,
    /// Additive Gaussian pixel noise.
    pub noise: f32,
    /// Random brightness multiplier range (± around 1).
    pub brightness_jitter: f32,
}

impl SignStyle {
    /// Easy (training-like) rendering.
    pub fn clean() -> Self {
        SignStyle {
            jitter: 0.4,
            noise: 0.03,
            brightness_jitter: 0.15,
        }
    }

    /// Harder validation rendering (more pose, noise and illumination
    /// variation) — produces the ~3 % misclassification the paper reports
    /// for network 2.
    pub fn hard() -> Self {
        SignStyle {
            jitter: 0.8,
            noise: 0.06,
            brightness_jitter: 0.3,
        }
    }
}

fn shape_sdf(shape: Shape, x: f32, y: f32, r: f32) -> f32 {
    match shape {
        Shape::Circle => sdf_circle(x, y, 0.5, 0.5, r),
        Shape::TriangleUp => sdf_triangle_up(x, y, 0.5, 0.55, r * 1.15),
        Shape::TriangleDown => sdf_triangle_down(x, y, 0.5, 0.45, r * 1.15),
        Shape::Octagon => sdf_regular_polygon(x, y, 0.5, 0.5, r * 1.05, 8),
        Shape::Diamond => sdf_diamond(x, y, 0.5, 0.5, r * 1.2),
    }
}

fn ideogram_hit(ideogram: Ideogram, x: f32, y: f32) -> bool {
    let w = 0.05; // stroke half-width
    match ideogram {
        Ideogram::Bar => segment_distance(x, y, 0.33, 0.5, 0.67, 0.5) < w,
        Ideogram::VBar => segment_distance(x, y, 0.5, 0.33, 0.5, 0.67) < w,
        Ideogram::Dot => sdf_circle(x, y, 0.5, 0.5, 0.10) < 0.0,
        Ideogram::Cross => {
            segment_distance(x, y, 0.36, 0.36, 0.64, 0.64) < w
                || segment_distance(x, y, 0.36, 0.64, 0.64, 0.36) < w
        }
        Ideogram::Chevron => {
            segment_distance(x, y, 0.35, 0.60, 0.5, 0.40) < w
                || segment_distance(x, y, 0.5, 0.40, 0.65, 0.60) < w
        }
        Ideogram::Blank => false,
    }
}

/// Renders one sign image as a flat `[3*32*32]` channel-major tensor.
pub fn render(class: usize, style: SignStyle, rng: &mut impl Rng) -> Tensor {
    let spec = class_spec(class);
    let pose = affine_params(style.jitter, rng);
    let brightness = 1.0 + rng.gen_range(-style.brightness_jitter..=style.brightness_jitter);
    // Random muted background.
    let bg = [
        rng.gen_range(0.25..0.55),
        rng.gen_range(0.3..0.6),
        rng.gen_range(0.25..0.5),
    ];
    let r_outer = 0.38;
    let border_w = 0.07;
    let mut data = vec![0.0f32; 3 * SIDE * SIDE];
    for py in 0..SIDE {
        for px in 0..SIDE {
            let ux = (px as f32 + 0.5) / SIDE as f32;
            let uy = (py as f32 + 0.5) / SIDE as f32;
            let (gx, gy) = pose.inverse_apply(ux, uy);
            let d = shape_sdf(spec.shape, gx, gy, r_outer);
            let colour = if d > 0.0 {
                bg
            } else if d > -border_w {
                spec.palette.border
            } else if ideogram_hit(spec.ideogram, gx, gy) {
                spec.palette.glyph
            } else {
                spec.palette.face
            };
            for (ch, &base) in colour.iter().enumerate() {
                let mut v = base * brightness;
                if style.noise > 0.0 {
                    v += style.noise * rng.randn();
                }
                data[ch * SIDE * SIDE + py * SIDE + px] = v.clamp(0.0, 1.0);
            }
        }
    }
    Tensor::from_vec(vec![3 * SIDE * SIDE], data)
}

/// Generates `n_per_class` images of every class.
pub fn generate(n_per_class: usize, style: SignStyle, rng: &mut impl Rng) -> Dataset {
    let mut ds = Dataset::new(NUM_CLASSES);
    for class in 0..NUM_CLASSES {
        for _ in 0..n_per_class {
            ds.push(render(class, style, rng), class);
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stop_sign_is_red_octagon() {
        let spec = class_spec(STOP_SIGN_CLASS);
        assert_eq!(spec.shape, Shape::Octagon);
        assert_eq!(spec.palette.face, RED);
    }

    #[test]
    fn all_specs_are_defined_and_not_all_equal() {
        let specs: Vec<ClassSpec> = (0..NUM_CLASSES).map(class_spec).collect();
        assert_eq!(specs.len(), 43);
        let first = specs[0];
        assert!(specs.iter().any(|s| *s != first), "all classes identical");
    }

    #[test]
    fn all_classes_are_pairwise_distinct() {
        // The mixed-radix enumeration has period 90 > 43, so every pair of
        // classes must differ in shape, ideogram or face colour.
        for a in 0..NUM_CLASSES {
            for b in (a + 1)..NUM_CLASSES {
                let (sa, sb) = (class_spec(a), class_spec(b));
                assert!(
                    sa.shape != sb.shape
                        || sa.ideogram != sb.ideogram
                        || sa.palette.face != sb.palette.face,
                    "classes {a} and {b} are visually identical"
                );
            }
        }
    }

    #[test]
    fn render_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = render(14, SignStyle::clean(), &mut rng);
        assert_eq!(img.len(), 3 * 32 * 32);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn stop_sign_face_is_reddish() {
        let mut rng = StdRng::seed_from_u64(3);
        let style = SignStyle {
            jitter: 0.0,
            noise: 0.0,
            brightness_jitter: 0.0,
        };
        let img = render(STOP_SIGN_CLASS, style, &mut rng);
        // Centre pixel is slightly off the bar; sample at (0.5, 0.40).
        let px = (0.40 * SIDE as f32) as usize * SIDE + SIDE / 2;
        let r = img.data()[px];
        let g = img.data()[SIDE * SIDE + px];
        let b = img.data()[2 * SIDE * SIDE + px];
        assert!(r > 0.5 && g < 0.4 && b < 0.4, "rgb=({r},{g},{b})");
    }

    #[test]
    fn generate_covers_all_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(2, SignStyle::clean(), &mut rng);
        assert_eq!(ds.len(), 86);
        assert!(ds.class_histogram().iter().all(|&c| c == 2));
    }

    #[test]
    fn intra_class_variation_exists() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = render(7, SignStyle::clean(), &mut rng);
        let b = render(7, SignStyle::clean(), &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_spec_bounds() {
        let _ = class_spec(43);
    }
}
