//! Novelty inputs: images from classes the network was **never** trained
//! on — the paper's Figure 1 scenario where a scooter is (wrongly)
//! classified as a car and the monitor flags the decision as unsupported
//! by training data.

use crate::raster::{affine_params, coverage, sdf_circle, segment_distance};
use naps_tensor::{Randn, Tensor};
use rand::Rng;

/// Kinds of out-of-label-space objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Novelty {
    /// A scooter-like silhouette: two wheels, deck and steering column
    /// (the paper's running example).
    Scooter,
    /// A five-pointed-star-like asterisk of strokes — unlike any digit or
    /// sign glyph.
    Asterisk,
    /// A spiral of segments.
    Spiral,
    /// Uniform random pixels (pure noise input).
    Static,
}

/// Renders a grayscale novelty image of `side`×`side` pixels as a flat
/// tensor (compatible with the digit networks when `side == 28`).
pub fn render_gray(kind: Novelty, side: usize, rng: &mut impl Rng) -> Tensor {
    let pose = affine_params(0.5, rng);
    let segs = strokes(kind, rng);
    let mut data = vec![0.0f32; side * side];
    for py in 0..side {
        for px in 0..side {
            let ux = (px as f32 + 0.5) / side as f32;
            let uy = (py as f32 + 0.5) / side as f32;
            let (gx, gy) = pose.inverse_apply(ux, uy);
            let v = match kind {
                Novelty::Static => rng.gen_range(0.0..1.0),
                _ => {
                    let mut best = f32::INFINITY;
                    for &(x1, y1, x2, y2) in &segs {
                        best = best.min(segment_distance(gx, gy, x1, y1, x2, y2));
                    }
                    // Wheels for the scooter.
                    let mut v = coverage(best, 0.05, 0.03);
                    if kind == Novelty::Scooter {
                        let w1 = sdf_circle(gx, gy, 0.3, 0.78, 0.07).abs();
                        let w2 = sdf_circle(gx, gy, 0.72, 0.78, 0.07).abs();
                        v = v.max(coverage(w1.min(w2), 0.03, 0.02));
                    }
                    (v + 0.04 * rng.randn()).clamp(0.0, 1.0)
                }
            };
            data[py * side + px] = v;
        }
    }
    Tensor::from_vec(vec![side * side], data)
}

/// Renders an RGB novelty image as a flat `[3*side*side]` tensor
/// (compatible with the sign networks when `side == 32`): the grayscale
/// silhouette tinted with a random colour over a random background.
pub fn render_rgb(kind: Novelty, side: usize, rng: &mut impl Rng) -> Tensor {
    let gray = render_gray(kind, side, rng);
    let tint = [
        rng.gen_range(0.4..1.0),
        rng.gen_range(0.4..1.0),
        rng.gen_range(0.4..1.0),
    ];
    let bg = [
        rng.gen_range(0.2..0.5),
        rng.gen_range(0.2..0.5),
        rng.gen_range(0.2..0.5),
    ];
    let mut data = vec![0.0f32; 3 * side * side];
    for (i, &g) in gray.data().iter().enumerate() {
        for ch in 0..3 {
            data[ch * side * side + i] = (g * tint[ch] + (1.0 - g) * bg[ch]).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(vec![3 * side * side], data)
}

type Seg = (f32, f32, f32, f32);

fn strokes(kind: Novelty, rng: &mut impl Rng) -> Vec<Seg> {
    match kind {
        Novelty::Scooter => vec![
            (0.30, 0.78, 0.72, 0.78), // deck
            (0.72, 0.78, 0.72, 0.30), // steering column
            (0.64, 0.30, 0.80, 0.30), // handlebar
        ],
        Novelty::Asterisk => {
            let c = 0.5f32;
            (0..5)
                .map(|i| {
                    let a = i as f32 * std::f32::consts::TAU / 5.0;
                    (c, c, c + 0.3 * a.cos(), c + 0.3 * a.sin())
                })
                .collect()
        }
        Novelty::Spiral => {
            let mut segs = Vec::new();
            let mut prev = (0.5f32, 0.5f32);
            for i in 1..14 {
                let a = i as f32 * 0.9;
                let r = 0.03 * i as f32;
                let next = (0.5 + r * a.cos(), 0.5 + r * a.sin());
                segs.push((prev.0, prev.1, next.0, next.1));
                prev = next;
            }
            segs
        }
        Novelty::Static => {
            let _ = rng;
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gray_novelties_have_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [Novelty::Scooter, Novelty::Asterisk, Novelty::Spiral] {
            let img = render_gray(kind, 28, &mut rng);
            assert_eq!(img.len(), 784);
            let bright = img.data().iter().filter(|&&v| v > 0.5).count();
            assert!(bright > 10, "{kind:?}: only {bright} bright pixels");
            assert!(bright < 600, "{kind:?}: almost everything bright");
        }
    }

    #[test]
    fn static_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = render_gray(Novelty::Static, 16, &mut rng);
        let mean = img.mean();
        assert!((mean - 0.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn rgb_rendering_has_three_channels() {
        let mut rng = StdRng::seed_from_u64(2);
        let img = render_rgb(Novelty::Scooter, 32, &mut rng);
        assert_eq!(img.len(), 3 * 32 * 32);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn novelties_differ_from_each_other() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = render_gray(Novelty::Scooter, 28, &mut rng);
        let b = render_gray(Novelty::Spiral, 28, &mut rng);
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 5.0);
    }
}
