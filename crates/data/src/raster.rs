//! Shared rasterisation helpers: affine pose sampling, line-segment and
//! signed-distance-function drawing on unit-square canvases.

use rand::Rng;

/// A 2-D affine pose: rotation, isotropic scale and translation applied
/// around the canvas centre `(0.5, 0.5)`.
///
/// Rendering uses the inverse map (pixel → glyph coordinates), so the
/// struct stores the parameters and exposes [`Affine::inverse_apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Rotation angle in radians.
    pub theta: f32,
    /// Isotropic scale factor.
    pub scale: f32,
    /// Horizontal translation in unit coordinates.
    pub dx: f32,
    /// Vertical translation in unit coordinates.
    pub dy: f32,
}

impl Affine {
    /// The identity pose.
    pub fn identity() -> Self {
        Affine {
            theta: 0.0,
            scale: 1.0,
            dx: 0.0,
            dy: 0.0,
        }
    }

    /// Maps a canvas point back into glyph coordinates (inverse transform).
    pub fn inverse_apply(&self, x: f32, y: f32) -> (f32, f32) {
        // Undo translation, then rotation/scale about the centre.
        let cx = x - 0.5 - self.dx;
        let cy = y - 0.5 - self.dy;
        let (s, c) = (-self.theta).sin_cos();
        let rx = (c * cx - s * cy) / self.scale;
        let ry = (s * cx + c * cy) / self.scale;
        (rx + 0.5, ry + 0.5)
    }
}

/// Samples a random pose with the given jitter amplitude:
/// rotation ±`0.2·jitter` rad, scale `1 ± 0.15·jitter`, translation
/// ±`0.08·jitter` in both axes.
///
/// `jitter = 0` returns the identity pose; larger values model harder
/// validation/deployment distributions.
pub fn affine_params(jitter: f32, rng: &mut impl Rng) -> Affine {
    if jitter <= 0.0 {
        return Affine::identity();
    }
    Affine {
        theta: rng.gen_range(-0.2..0.2) * jitter,
        scale: 1.0 + rng.gen_range(-0.15..0.15) * jitter,
        dx: rng.gen_range(-0.08..0.08) * jitter,
        dy: rng.gen_range(-0.08..0.08) * jitter,
    }
}

/// Distance from point `(px, py)` to the segment `(x1, y1)-(x2, y2)`.
pub fn segment_distance(px: f32, py: f32, x1: f32, y1: f32, x2: f32, y2: f32) -> f32 {
    let (vx, vy) = (x2 - x1, y2 - y1);
    let (wx, wy) = (px - x1, py - y1);
    let len2 = vx * vx + vy * vy;
    let t = if len2 <= f32::EPSILON {
        0.0
    } else {
        ((wx * vx + wy * vy) / len2).clamp(0.0, 1.0)
    };
    let (dx, dy) = (wx - t * vx, wy - t * vy);
    (dx * dx + dy * dy).sqrt()
}

/// Smooth step from 1 (inside) to 0 (outside) across a soft edge of width
/// `soft` around `radius`.
pub fn coverage(dist: f32, radius: f32, soft: f32) -> f32 {
    if dist <= radius {
        1.0
    } else if dist >= radius + soft {
        0.0
    } else {
        1.0 - (dist - radius) / soft
    }
}

/// Signed distance to a circle of radius `r` centred at `(cx, cy)`
/// (negative inside).
pub fn sdf_circle(px: f32, py: f32, cx: f32, cy: f32, r: f32) -> f32 {
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt() - r
}

/// Signed distance to a regular `n`-gon of circumradius `r` centred at
/// `(cx, cy)`, with one vertex pointing up (negative inside).
pub fn sdf_regular_polygon(px: f32, py: f32, cx: f32, cy: f32, r: f32, n: u32) -> f32 {
    let (dx, dy) = (px - cx, py - cy);
    let angle = dy.atan2(dx) + std::f32::consts::FRAC_PI_2;
    let seg = std::f32::consts::TAU / n as f32;
    let a = angle.rem_euclid(seg) - seg / 2.0;
    let dist = (dx * dx + dy * dy).sqrt();
    dist * a.cos() - r * (seg / 2.0).cos()
}

/// Signed distance to a diamond (square rotated 45°) with "radius" `r`
/// (centre-to-vertex) at `(cx, cy)`.
pub fn sdf_diamond(px: f32, py: f32, cx: f32, cy: f32, r: f32) -> f32 {
    ((px - cx).abs() + (py - cy).abs() - r) * std::f32::consts::FRAC_1_SQRT_2
}

/// Signed distance to an upward-pointing equilateral triangle of
/// circumradius `r` at `(cx, cy)`.
pub fn sdf_triangle_up(px: f32, py: f32, cx: f32, cy: f32, r: f32) -> f32 {
    sdf_regular_polygon(px, py, cx, cy, r, 3)
}

/// Signed distance to a downward-pointing equilateral triangle.
pub fn sdf_triangle_down(px: f32, py: f32, cx: f32, cy: f32, r: f32) -> f32 {
    // Mirror vertically around the centre.
    sdf_regular_polygon(px, 2.0 * cy - py, cx, cy, r, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_affine_is_noop() {
        let a = Affine::identity();
        let (x, y) = a.inverse_apply(0.3, 0.7);
        assert!((x - 0.3).abs() < 1e-6 && (y - 0.7).abs() < 1e-6);
    }

    #[test]
    fn translation_shifts_back() {
        let a = Affine {
            theta: 0.0,
            scale: 1.0,
            dx: 0.1,
            dy: -0.2,
        };
        let (x, y) = a.inverse_apply(0.6, 0.3);
        assert!((x - 0.5).abs() < 1e-6 && (y - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rotation_preserves_center() {
        let a = Affine {
            theta: 1.0,
            scale: 1.0,
            dx: 0.0,
            dy: 0.0,
        };
        let (x, y) = a.inverse_apply(0.5, 0.5);
        assert!((x - 0.5).abs() < 1e-6 && (y - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(affine_params(0.0, &mut rng), Affine::identity());
    }

    #[test]
    fn segment_distance_basics() {
        // Point on the segment.
        assert!(segment_distance(0.5, 0.0, 0.0, 0.0, 1.0, 0.0) < 1e-6);
        // Perpendicular offset.
        assert!((segment_distance(0.5, 0.3, 0.0, 0.0, 1.0, 0.0) - 0.3).abs() < 1e-6);
        // Beyond an endpoint.
        assert!((segment_distance(2.0, 0.0, 0.0, 0.0, 1.0, 0.0) - 1.0).abs() < 1e-6);
        // Degenerate segment = point distance.
        assert!((segment_distance(3.0, 4.0, 0.0, 0.0, 0.0, 0.0) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn coverage_is_monotone() {
        assert_eq!(coverage(0.0, 0.1, 0.05), 1.0);
        assert_eq!(coverage(0.2, 0.1, 0.05), 0.0);
        let mid = coverage(0.125, 0.1, 0.05);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn circle_sdf_signs() {
        assert!(sdf_circle(0.5, 0.5, 0.5, 0.5, 0.2) < 0.0);
        assert!(sdf_circle(0.9, 0.5, 0.5, 0.5, 0.2) > 0.0);
    }

    #[test]
    fn polygon_sdf_contains_center() {
        for n in [3u32, 6, 8] {
            assert!(
                sdf_regular_polygon(0.5, 0.5, 0.5, 0.5, 0.3, n) < 0.0,
                "n={n}"
            );
            assert!(
                sdf_regular_polygon(0.95, 0.95, 0.5, 0.5, 0.3, n) > 0.0,
                "n={n}"
            );
        }
    }

    #[test]
    fn diamond_sdf_signs() {
        assert!(sdf_diamond(0.5, 0.5, 0.5, 0.5, 0.3) < 0.0);
        assert!(sdf_diamond(0.8, 0.8, 0.5, 0.5, 0.3) > 0.0);
    }

    #[test]
    fn triangles_are_mirrored() {
        // A point above centre is deeper inside the down triangle than the
        // up triangle's equivalent below centre.
        let up = sdf_triangle_up(0.5, 0.6, 0.5, 0.5, 0.3);
        let down = sdf_triangle_down(0.5, 0.4, 0.5, 0.5, 0.3);
        assert!((up - down).abs() < 1e-6);
    }
}
