//! Distribution-shift transforms.
//!
//! The paper motivates the monitor as a *data distribution shift* detector:
//! frequent out-of-pattern warnings tell the development team the deployed
//! network faces inputs unlike its training data.  These corruptions create
//! such shifted deployment distributions from clean datasets.

use crate::dataset::Dataset;
use naps_tensor::{Randn, Tensor};
use rand::Rng;

/// A deployment-time corruption applied to individual images.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Additive Gaussian noise with the given standard deviation.
    GaussianNoise(f32),
    /// A zeroed square patch of the given side length (pixels), placed
    /// uniformly at random.  Models occlusion (dirt, stickers).
    Occlusion(usize),
    /// Multiplies all intensities by the factor.  Models exposure change.
    Brightness(f32),
    /// Blends all intensities toward 1.0 by the given amount in `[0,1]`.
    /// Models fog / glare.
    Fog(f32),
    /// 3×3 box blur applied per channel (requires the image geometry).
    Blur,
}

/// Applies a corruption to a flat image of `channels` × `side` × `side`.
///
/// # Panics
///
/// Panics if `image.len() != channels * side * side`.
pub fn apply(
    image: &Tensor,
    channels: usize,
    side: usize,
    corruption: Corruption,
    rng: &mut impl Rng,
) -> Tensor {
    assert_eq!(
        image.len(),
        channels * side * side,
        "image does not match geometry {channels}x{side}x{side}"
    );
    match corruption {
        Corruption::GaussianNoise(sigma) => {
            image.map_with_rng(|v, r| (v + sigma * r.randn()).clamp(0.0, 1.0), rng)
        }
        Corruption::Occlusion(patch) => {
            let patch = patch.min(side);
            let max0 = side - patch;
            let oy = if max0 == 0 {
                0
            } else {
                rng.gen_range(0..=max0)
            };
            let ox = if max0 == 0 {
                0
            } else {
                rng.gen_range(0..=max0)
            };
            let mut out = image.clone();
            for ch in 0..channels {
                for y in oy..oy + patch {
                    for x in ox..ox + patch {
                        out.data_mut()[ch * side * side + y * side + x] = 0.0;
                    }
                }
            }
            out
        }
        Corruption::Brightness(factor) => image.map(|v| (v * factor).clamp(0.0, 1.0)),
        Corruption::Fog(amount) => {
            let a = amount.clamp(0.0, 1.0);
            image.map(|v| v * (1.0 - a) + a)
        }
        Corruption::Blur => {
            let mut out = image.clone();
            for ch in 0..channels {
                let base = ch * side * side;
                for y in 0..side {
                    for x in 0..side {
                        let mut acc = 0.0f32;
                        let mut n = 0.0f32;
                        for dy in -1i32..=1 {
                            for dx in -1i32..=1 {
                                let yy = y as i32 + dy;
                                let xx = x as i32 + dx;
                                if (0..side as i32).contains(&yy) && (0..side as i32).contains(&xx)
                                {
                                    acc += image.data()[base + yy as usize * side + xx as usize];
                                    n += 1.0;
                                }
                            }
                        }
                        out.data_mut()[base + y * side + x] = acc / n;
                    }
                }
            }
            out
        }
    }
}

/// Applies one corruption to every sample of a dataset, returning the
/// shifted dataset (labels preserved).
pub fn shift_dataset(
    dataset: &Dataset,
    channels: usize,
    side: usize,
    corruption: Corruption,
    rng: &mut impl Rng,
) -> Dataset {
    let mut out = Dataset::new(dataset.num_classes);
    for (s, &l) in dataset.samples.iter().zip(&dataset.labels) {
        out.push(apply(s, channels, side, corruption, rng), l);
    }
    out
}

/// Helper on [`Tensor`] threading an RNG through a map.
trait MapWithRng {
    fn map_with_rng<R: Rng>(&self, f: impl Fn(f32, &mut R) -> f32, rng: &mut R) -> Tensor;
}

impl MapWithRng for Tensor {
    fn map_with_rng<R: Rng>(&self, f: impl Fn(f32, &mut R) -> f32, rng: &mut R) -> Tensor {
        let data = self.data().iter().map(|&v| f(v, rng)).collect();
        Tensor::from_vec(self.shape().to_vec(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gray_image() -> Tensor {
        Tensor::full(vec![16], 0.5)
    }

    #[test]
    fn noise_stays_in_range_and_changes_pixels() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = gray_image();
        let out = apply(&img, 1, 4, Corruption::GaussianNoise(0.2), &mut rng);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_ne!(out, img);
    }

    #[test]
    fn occlusion_zeroes_a_patch() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = Tensor::full(vec![16], 1.0);
        let out = apply(&img, 1, 4, Corruption::Occlusion(2), &mut rng);
        let zeros = out.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 4);
    }

    #[test]
    fn occlusion_patch_larger_than_image_blanks_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = Tensor::full(vec![16], 1.0);
        let out = apply(&img, 1, 4, Corruption::Occlusion(99), &mut rng);
        assert_eq!(out.sum(), 0.0);
    }

    #[test]
    fn brightness_scales_and_clamps() {
        let mut rng = StdRng::seed_from_u64(2);
        let img = gray_image();
        let dim = apply(&img, 1, 4, Corruption::Brightness(0.5), &mut rng);
        assert!((dim.data()[0] - 0.25).abs() < 1e-6);
        let sat = apply(&img, 1, 4, Corruption::Brightness(4.0), &mut rng);
        assert_eq!(sat.data()[0], 1.0);
    }

    #[test]
    fn fog_blends_toward_white() {
        let mut rng = StdRng::seed_from_u64(3);
        let img = Tensor::full(vec![4], 0.0);
        let out = apply(&img, 1, 2, Corruption::Fog(0.7), &mut rng);
        assert!((out.data()[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn blur_averages_neighbours() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut img = Tensor::zeros(vec![9]);
        img.data_mut()[4] = 9.0; // centre of a 3x3 image (will clamp upstream only)
        let out = apply(&img, 1, 3, Corruption::Blur, &mut rng);
        // Every pixel sees the centre: centre value spread over window.
        assert!((out.data()[4] - 1.0).abs() < 1e-6);
        assert!(out.data()[0] > 0.0);
    }

    #[test]
    fn shift_dataset_preserves_labels() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ds = Dataset::new(2);
        ds.push(gray_image(), 0);
        ds.push(gray_image(), 1);
        let shifted = shift_dataset(&ds, 1, 4, Corruption::Fog(0.5), &mut rng);
        assert_eq!(shifted.labels, ds.labels);
        assert_eq!(shifted.len(), 2);
        assert_ne!(shifted.samples[0], ds.samples[0]);
    }
}
