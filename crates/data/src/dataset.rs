//! The labelled dataset container.

use naps_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled set of flat image tensors.
///
/// Samples are 1-D feature vectors (`[h*w]` grayscale or `[3*h*w]`
/// channel-major RGB); the consuming network knows its own geometry.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Flat image tensors.
    pub samples: Vec<Tensor>,
    /// Ground-truth class per sample.
    pub labels: Vec<usize>,
    /// Number of classes in the label space.
    pub num_classes: usize,
}

impl Dataset {
    /// An empty dataset over `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        Dataset {
            samples: Vec::new(),
            labels: Vec::new(),
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends one labelled sample.
    ///
    /// # Panics
    ///
    /// Panics if `label >= num_classes`.
    pub fn push(&mut self, sample: Tensor, label: usize) {
        assert!(
            label < self.num_classes,
            "label {label} out of range for {} classes",
            self.num_classes
        );
        self.samples.push(sample);
        self.labels.push(label);
    }

    /// Shuffles samples and labels in lockstep.
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.samples = order.iter().map(|&i| self.samples[i].clone()).collect();
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
    }

    /// Splits off the last `fraction` of samples into a second dataset
    /// (call [`Dataset::shuffle`] first for a random split).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn split(mut self, fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let keep = ((self.len() as f64) * (1.0 - fraction)).round() as usize;
        let tail_samples = self.samples.split_off(keep);
        let tail_labels = self.labels.split_off(keep);
        let tail = Dataset {
            samples: tail_samples,
            labels: tail_labels,
            num_classes: self.num_classes,
        };
        (self, tail)
    }

    /// Indices of all samples labelled `class`.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == class).then_some(i))
            .collect()
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

impl Extend<(Tensor, usize)> for Dataset {
    fn extend<I: IntoIterator<Item = (Tensor, usize)>>(&mut self, iter: I) {
        for (s, l) in iter {
            self.push(s, l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(v: f32) -> Tensor {
        Tensor::from_vec(vec![2], vec![v, v])
    }

    #[test]
    fn push_and_histogram() {
        let mut d = Dataset::new(3);
        d.push(sample(0.0), 0);
        d.push(sample(1.0), 2);
        d.push(sample(2.0), 2);
        assert_eq!(d.class_histogram(), vec![1, 0, 2]);
        assert_eq!(d.indices_of_class(2), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_bad_label_panics() {
        let mut d = Dataset::new(2);
        d.push(sample(0.0), 5);
    }

    #[test]
    fn split_keeps_sizes() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(sample(i as f32), 0);
        }
        let (a, b) = d.split(0.3);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(a.num_classes, 1);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut d = Dataset::new(10);
        for i in 0..10 {
            d.push(sample(i as f32), i);
        }
        let mut rng = StdRng::seed_from_u64(0);
        d.shuffle(&mut rng);
        for (s, &l) in d.samples.iter().zip(&d.labels) {
            assert_eq!(s.data()[0] as usize, l, "pairing broken");
        }
    }

    #[test]
    fn extend_appends_pairs() {
        let mut d = Dataset::new(2);
        d.extend(vec![(sample(1.0), 0), (sample(2.0), 1)]);
        assert_eq!(d.len(), 2);
    }
}
