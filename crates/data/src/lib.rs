//! Procedural image datasets standing in for MNIST and GTSRB.
//!
//! The paper evaluates on MNIST (10 handwritten digits) and the German
//! Traffic Sign Recognition Benchmark (43 sign classes).  Neither dataset
//! ships with this repository, so this crate generates **synthetic
//! equivalents with the same interface and statistical role**:
//!
//! * [`digits`] renders 28×28 grayscale digit glyphs from seven-segment
//!   skeletons with random affine pose, stroke width and pixel noise;
//! * [`signs`] renders 32×32 RGB traffic-sign-like images for 43 classes
//!   built from shape × colour × ideogram combinations (class 14 is an
//!   octagonal red "stop"-style sign, matching the paper's monitored
//!   class);
//! * [`corrupt`] applies distribution-shift transforms (noise, occlusion,
//!   brightness, fog, blur) to model deployment-time drift;
//! * [`novelty`] renders images from classes that exist in **no** training
//!   label — the "scooter classified as car" of the paper's Figure 1.
//!
//! What the monitor consumes is only the binary ReLU activation pattern of
//! a network trained on these images; any distribution with intra-class
//! structure and inter-class separation exercises the identical code path
//! (see DESIGN.md §4 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use naps_data::{digits, Dataset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let train: Dataset = digits::generate(20, digits::DigitStyle::clean(), &mut rng);
//! assert_eq!(train.num_classes, 10);
//! assert_eq!(train.len(), 200);
//! assert_eq!(train.samples[0].len(), 28 * 28);
//! ```

pub mod corrupt;
mod dataset;
pub mod digits;
pub mod novelty;
mod raster;
pub mod signs;

pub use dataset::Dataset;
pub use raster::{affine_params, Affine};
