//! Property-based tests for the procedural datasets: value ranges,
//! determinism under seeding, label integrity and corruption contracts.

use naps_data::corrupt::{apply, Corruption};
use naps_data::{digits, novelty, signs};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Digit rendering stays in [0,1] and is deterministic per seed.
    #[test]
    fn digit_rendering_contract(digit in 0usize..10, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = digits::render(digit, digits::DigitStyle::clean(), &mut rng);
        prop_assert_eq!(img.len(), 28 * 28);
        prop_assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mut rng2 = StdRng::seed_from_u64(seed);
        let img2 = digits::render(digit, digits::DigitStyle::clean(), &mut rng2);
        prop_assert_eq!(img, img2);
    }

    /// Sign rendering stays in [0,1] for every class, both styles.
    #[test]
    fn sign_rendering_contract(class in 0usize..43, seed in 0u64..10_000, hard in any::<bool>()) {
        let style = if hard { signs::SignStyle::hard() } else { signs::SignStyle::clean() };
        let mut rng = StdRng::seed_from_u64(seed);
        let img = signs::render(class, style, &mut rng);
        prop_assert_eq!(img.len(), 3 * 32 * 32);
        prop_assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Corruptions preserve geometry, range and labels-by-construction.
    #[test]
    fn corruption_contract(seed in 0u64..10_000, which in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = digits::render(3, digits::DigitStyle::clean(), &mut rng);
        let corruption = match which {
            0 => Corruption::GaussianNoise(0.2),
            1 => Corruption::Occlusion(6),
            2 => Corruption::Brightness(1.4),
            3 => Corruption::Fog(0.3),
            _ => Corruption::Blur,
        };
        let out = apply(&img, 1, 28, corruption, &mut rng);
        prop_assert_eq!(out.len(), img.len());
        prop_assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Fog strictly brightens dark pixels; brightness(1.0) is identity.
    #[test]
    fn photometric_corruption_semantics(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = digits::render(8, digits::DigitStyle::clean(), &mut rng);
        let fogged = apply(&img, 1, 28, Corruption::Fog(0.4), &mut rng);
        for (f, o) in fogged.data().iter().zip(img.data()) {
            prop_assert!(f >= o, "fog darkened a pixel: {} < {}", f, o);
        }
        let same = apply(&img, 1, 28, Corruption::Brightness(1.0), &mut rng);
        prop_assert_eq!(same, img);
    }

    /// Novelty images fit the digit-network geometry and stay in range.
    #[test]
    fn novelty_rendering_contract(seed in 0u64..10_000, which in 0usize..4) {
        let kind = match which {
            0 => novelty::Novelty::Scooter,
            1 => novelty::Novelty::Asterisk,
            2 => novelty::Novelty::Spiral,
            _ => novelty::Novelty::Static,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let gray = novelty::render_gray(kind, 28, &mut rng);
        prop_assert_eq!(gray.len(), 784);
        prop_assert!(gray.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let rgb = novelty::render_rgb(kind, 32, &mut rng);
        prop_assert_eq!(rgb.len(), 3 * 32 * 32);
    }

    /// Generated datasets are balanced and labelled within range.
    #[test]
    fn dataset_generation_contract(n in 1usize..4, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = digits::generate(n, digits::DigitStyle::clean(), &mut rng);
        prop_assert_eq!(ds.len(), 10 * n);
        prop_assert!(ds.labels.iter().all(|&l| l < 10));
        prop_assert!(ds.class_histogram().iter().all(|&c| c == n));
    }
}
