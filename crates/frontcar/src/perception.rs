//! Simulated classical perception: vehicle detection and lane detection.
//!
//! These play the role of the "implemented using classical approaches"
//! blocks of Figure 3 — they are deliberately imperfect (noise, missed and
//! phantom detections) so the downstream neural selector faces realistic
//! inputs.

use crate::scenario::{Scenario, NUM_LANES};
use naps_tensor::Randn;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A detected bounding box in normalised image coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Horizontal centre in `[0, 1]` (0.5 = straight ahead).
    pub cx: f32,
    /// Vertical centre in `[0, 1]` (larger = closer on the image plane).
    pub cy: f32,
    /// Box width in normalised units.
    pub w: f32,
    /// Box height in normalised units.
    pub h: f32,
    /// Index of the originating vehicle in the scenario, or `None` for a
    /// phantom detection.
    pub source: Option<usize>,
}

/// Output of the lane-detection component: the ego lane's normalised
/// horizontal span on the image plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneEstimate {
    /// Left boundary of the ego lane in `[0, 1]`.
    pub left: f32,
    /// Right boundary of the ego lane in `[0, 1]`.
    pub right: f32,
}

/// Lane width on the image plane (normalised units).
const LANE_SPAN: f32 = 1.0 / NUM_LANES as f32;

/// Projects a vehicle into image coordinates with a simple pinhole-like
/// model: horizontal position from lane + lateral offset (relative to the
/// ego lane), apparent size shrinking with distance.
pub fn project(
    ego_lane: usize,
    lane: usize,
    lateral: f32,
    distance: f32,
    width: f32,
) -> BoundingBox {
    let lane_offset = lane as f32 - ego_lane as f32;
    let cx = 0.5 + lane_offset * LANE_SPAN * (30.0 / (distance + 10.0)) + lateral * 0.02;
    let apparent = (width * 6.0 / (distance + 5.0)).clamp(0.02, 0.6);
    let cy = 0.5 + (20.0 / (distance + 10.0)) * 0.4;
    BoundingBox {
        cx: cx.clamp(0.0, 1.0),
        cy: cy.clamp(0.0, 1.0),
        w: apparent,
        h: apparent * 0.8,
        source: None,
    }
}

/// Simulated vehicle detector: projects every vehicle, adds measurement
/// noise, drops detections with the scenario's `dropout` probability and
/// inserts phantom boxes with `phantom_rate`.
pub fn detect_vehicles(scenario: &Scenario, rng: &mut impl Rng) -> Vec<BoundingBox> {
    let c = scenario.conditions;
    let mut boxes = Vec::new();
    for (i, v) in scenario.vehicles.iter().enumerate() {
        if rng.gen::<f32>() < c.dropout {
            continue; // missed detection
        }
        let mut b = project(scenario.ego_lane, v.lane, v.lateral, v.distance, v.width);
        b.cx = (b.cx + c.detection_noise * rng.randn()).clamp(0.0, 1.0);
        b.cy = (b.cy + c.detection_noise * rng.randn()).clamp(0.0, 1.0);
        b.w = (b.w * (1.0 + c.detection_noise * rng.randn())).clamp(0.01, 0.8);
        b.h = (b.h * (1.0 + c.detection_noise * rng.randn())).clamp(0.01, 0.8);
        b.source = Some(i);
        boxes.push(b);
    }
    if rng.gen::<f32>() < c.phantom_rate {
        boxes.push(BoundingBox {
            cx: rng.gen_range(0.0..1.0),
            cy: rng.gen_range(0.4..0.9),
            w: rng.gen_range(0.02..0.3),
            h: rng.gen_range(0.02..0.25),
            source: None,
        });
    }
    boxes
}

/// Simulated lane detector: the ego lane's span, with mild noise.
pub fn detect_lane(scenario: &Scenario, rng: &mut impl Rng) -> LaneEstimate {
    let noise = scenario.conditions.detection_noise;
    let left = 0.5 - LANE_SPAN / 2.0 + noise * rng.randn();
    let right = 0.5 + LANE_SPAN / 2.0 + noise * rng.randn();
    LaneEstimate {
        left: left.clamp(0.0, 1.0),
        right: right.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Conditions, Vehicle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario_with(vehicles: Vec<Vehicle>, conditions: Conditions) -> Scenario {
        Scenario {
            ego_lane: 1,
            vehicles,
            conditions,
        }
    }

    #[test]
    fn projection_shrinks_with_distance() {
        let near = project(1, 1, 0.0, 20.0, 2.0);
        let far = project(1, 1, 0.0, 100.0, 2.0);
        assert!(near.w > far.w);
        assert!(near.cy > far.cy);
    }

    #[test]
    fn same_lane_centres_ahead() {
        let b = project(1, 1, 0.0, 50.0, 2.0);
        assert!((b.cx - 0.5).abs() < 0.05, "cx = {}", b.cx);
        let left = project(1, 0, 0.0, 50.0, 2.0);
        assert!(left.cx < b.cx);
    }

    #[test]
    fn noiseless_detection_covers_all_vehicles() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conditions::nominal();
        c.dropout = 0.0;
        c.phantom_rate = 0.0;
        let s = scenario_with(
            vec![
                Vehicle {
                    lane: 0,
                    distance: 40.0,
                    lateral: 0.0,
                    width: 2.0,
                },
                Vehicle {
                    lane: 1,
                    distance: 60.0,
                    lateral: 0.2,
                    width: 2.0,
                },
            ],
            c,
        );
        let boxes = detect_vehicles(&s, &mut rng);
        assert_eq!(boxes.len(), 2);
        assert_eq!(boxes[0].source, Some(0));
        assert_eq!(boxes[1].source, Some(1));
    }

    #[test]
    fn full_dropout_detects_nothing_real() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conditions::nominal();
        c.dropout = 1.0;
        c.phantom_rate = 0.0;
        let s = scenario_with(
            vec![Vehicle {
                lane: 1,
                distance: 30.0,
                lateral: 0.0,
                width: 2.0,
            }],
            c,
        );
        assert!(detect_vehicles(&s, &mut rng).is_empty());
    }

    #[test]
    fn phantoms_have_no_source() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conditions::nominal();
        c.phantom_rate = 1.0;
        let s = scenario_with(vec![], c);
        let boxes = detect_vehicles(&s, &mut rng);
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].source, None);
    }

    #[test]
    fn lane_estimate_brackets_center() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = scenario_with(vec![], Conditions::nominal());
        let lane = detect_lane(&s, &mut rng);
        assert!(lane.left < 0.5 && lane.right > 0.5);
    }
}
