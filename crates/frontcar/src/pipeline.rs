//! The monitored front-car selection pipeline (Figure 3).

use crate::features::{FeatureVector, NUM_CLASSES};
use crate::perception::{detect_lane, detect_vehicles};
use crate::scenario::{Conditions, Scenario};
use naps_core::ActivationMonitor;
use naps_core::{BddZone, Monitor, MonitorBuilder, Verdict};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_tensor::Tensor;
use rand::Rng;

/// Scenario budget guaranteeing every class — including the rare class 3
/// (front car in the last vehicle slot: all four slots filled AND the
/// last one nearest in the ego lane, ~1% of nominal traffic) — appears
/// often enough for Algorithm 1 to build a non-empty comfort zone.
///
/// The exact count is coupled to the **vendored** `rand` stream (see
/// `vendor/rand`): when PR 1 swapped crates.io `rand` for the offline
/// stand-in, the sample sequence changed and 800 scenarios no longer
/// surfaced class 3, so statistical tests went from "every class has a
/// zone" to silently-degenerate fixtures.  Tests that need full class
/// coverage must derive their budget from this one const; if a future
/// RNG retuning starves a class again, they fail with a message pointing
/// here instead of passing vacuously.
pub const RARE_CLASS_SCENARIO_BUDGET: usize = 2500;

/// Configuration of the pipeline's selection network and monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Hidden widths of the selection MLP (two ReLU layers).
    pub hidden: [usize; 2],
    /// Number of training scenarios.
    pub train_scenarios: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Hamming budget of the monitor.
    pub gamma: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            hidden: [48, 24],
            train_scenarios: 2000,
            epochs: 20,
            gamma: 1,
        }
    }
}

/// One pipeline step's outcome: the selection plus the monitor's judgement.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The class the network chose (slot index or ⊥).
    pub selected: usize,
    /// Ground-truth class for the same feature vector.
    pub ground_truth: usize,
    /// The monitor verdict for this decision.
    pub verdict: Verdict,
    /// Hamming distance from the observed pattern to the visited patterns
    /// of the selected class.
    pub distance_to_seeds: Option<u32>,
}

/// A trained, monitored front-car selection unit.
///
/// Build with [`FrontCarPipeline::train`]; drive with
/// [`FrontCarPipeline::step`].
#[derive(Debug)]
pub struct FrontCarPipeline {
    model: Sequential,
    monitor: Monitor<BddZone>,
    /// Monitored layer index within the MLP (the second ReLU).
    monitored_layer: usize,
}

impl FrontCarPipeline {
    /// Generates nominal-condition scenarios, trains the selection network
    /// and builds its activation-pattern monitor (Algorithm 1).
    pub fn train(config: PipelineConfig, rng: &mut impl Rng) -> Self {
        let (samples, labels) = Self::dataset(config.train_scenarios, Conditions::nominal(), rng);
        let dims = [
            crate::features::INPUT_WIDTH,
            config.hidden[0],
            config.hidden[1],
            NUM_CLASSES,
        ];
        let mut model = mlp(&dims, rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: 32,
            verbose: false,
        });
        trainer.fit(&mut model, &samples, &labels, &mut Adam::new(0.005), rng);
        // Layers: fc, relu, fc, relu(idx 3, monitored), fc.
        let monitored_layer = 3;
        let monitor = MonitorBuilder::new(monitored_layer, config.gamma).build::<BddZone>(
            &mut model,
            &samples,
            &labels,
            NUM_CLASSES,
        );
        FrontCarPipeline {
            model,
            monitor,
            monitored_layer,
        }
    }

    /// Generates a labelled dataset of perception feature vectors under
    /// `conditions`.
    pub fn dataset(
        n: usize,
        conditions: Conditions,
        rng: &mut impl Rng,
    ) -> (Vec<Tensor>, Vec<usize>) {
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let scenario = Scenario::sample(conditions, rng);
            let boxes = detect_vehicles(&scenario, rng);
            let lane = detect_lane(&scenario, rng);
            let fv = FeatureVector::assemble(&boxes, lane);
            labels.push(fv.label_for(scenario.ground_truth_front_car()));
            samples.push(fv.input);
        }
        (samples, labels)
    }

    /// Runs perception + selection + monitoring on one scenario.
    pub fn step(&mut self, scenario: &Scenario, rng: &mut impl Rng) -> StepOutcome {
        let boxes = detect_vehicles(scenario, rng);
        let lane = detect_lane(scenario, rng);
        let fv = FeatureVector::assemble(&boxes, lane);
        let ground_truth = fv.label_for(scenario.ground_truth_front_car());
        let report = self.monitor.check(&mut self.model, &fv.input);
        StepOutcome {
            selected: report.predicted,
            ground_truth,
            verdict: report.verdict,
            distance_to_seeds: report.distance_to_seeds,
        }
    }

    /// Selection accuracy over freshly sampled scenarios under
    /// `conditions`.
    pub fn accuracy(&mut self, n: usize, conditions: Conditions, rng: &mut impl Rng) -> f64 {
        let mut correct = 0usize;
        for _ in 0..n {
            let s = Scenario::sample(conditions, rng);
            let out = self.step(&s, rng);
            if out.selected == out.ground_truth {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// Fraction of steps that raise an out-of-pattern warning under
    /// `conditions` — the distribution-shift indicator of the paper's
    /// introduction.
    pub fn warning_rate(&mut self, n: usize, conditions: Conditions, rng: &mut impl Rng) -> f64 {
        let mut warned = 0usize;
        for _ in 0..n {
            let s = Scenario::sample(conditions, rng);
            if self.step(&s, rng).verdict == Verdict::OutOfPattern {
                warned += 1;
            }
        }
        warned as f64 / n as f64
    }

    /// Simulates a rolling drive: starting from `scenario`, advance the
    /// kinematics for `steps` ticks of `dt` seconds (random relative
    /// speeds), monitoring every tick.  Returns the per-tick outcomes —
    /// the sequence-level view a highway pilot's supervisor would consume.
    pub fn run_sequence(
        &mut self,
        mut scenario: Scenario,
        steps: usize,
        dt: f32,
        rng: &mut impl Rng,
    ) -> Vec<StepOutcome> {
        let mut outcomes = Vec::with_capacity(steps);
        for _ in 0..steps {
            outcomes.push(self.step(&scenario, rng));
            let speeds: Vec<f32> = scenario
                .vehicles
                .iter()
                .map(|_| rng.gen_range(-6.0..6.0))
                .collect();
            scenario.advance(dt, &speeds, rng);
            // Occasionally a new vehicle enters sensor range.
            if scenario.vehicles.len() < crate::scenario::MAX_VEHICLES && rng.gen::<f32>() < 0.1 {
                let mut fresh = Scenario::sample(scenario.conditions, rng);
                if let Some(v) = fresh.vehicles.pop() {
                    scenario.vehicles.push(v);
                }
            }
        }
        outcomes
    }

    /// The underlying selection network.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// The monitor.
    pub fn monitor(&self) -> &Monitor<BddZone> {
        &self.monitor
    }

    /// Index of the monitored layer.
    pub fn monitored_layer(&self) -> usize {
        self.monitored_layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            hidden: [24, 12],
            train_scenarios: 800,
            epochs: 20,
            gamma: 1,
        }
    }

    #[test]
    fn pipeline_learns_the_selection_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut pipe = FrontCarPipeline::train(small_config(), &mut rng);
        let acc = pipe.accuracy(300, Conditions::nominal(), &mut rng);
        assert!(acc > 0.7, "nominal accuracy {acc}");
    }

    #[test]
    fn shifted_conditions_raise_more_warnings() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pipe = FrontCarPipeline::train(small_config(), &mut rng);
        let nominal = pipe.warning_rate(300, Conditions::nominal(), &mut rng);
        let rain = pipe.warning_rate(300, Conditions::heavy_rain(), &mut rng);
        assert!(
            rain >= nominal,
            "rain warnings {rain} below nominal {nominal}"
        );
    }

    #[test]
    fn step_reports_are_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pipe = FrontCarPipeline::train(small_config(), &mut rng);
        let s = Scenario::sample(Conditions::nominal(), &mut rng);
        let out = pipe.step(&s, &mut rng);
        assert!(out.selected < NUM_CLASSES);
        assert!(out.ground_truth < NUM_CLASSES);
        if out.verdict == Verdict::InPattern {
            // In-pattern implies the pattern is inside the zone; distance
            // may still be positive (gamma ball) but must exist.
            assert!(out.distance_to_seeds.is_some());
        }
    }

    #[test]
    fn sequences_monitor_every_tick() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pipe = FrontCarPipeline::train(small_config(), &mut rng);
        let start = Scenario::sample(Conditions::nominal(), &mut rng);
        let outcomes = pipe.run_sequence(start, 30, 0.5, &mut rng);
        assert_eq!(outcomes.len(), 30);
        for o in &outcomes {
            assert!(o.selected < NUM_CLASSES);
        }
    }

    #[test]
    fn dataset_labels_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let (xs, ys) = FrontCarPipeline::dataset(200, Conditions::nominal(), &mut rng);
        assert_eq!(xs.len(), 200);
        assert!(ys.iter().all(|&y| y < NUM_CLASSES));
        // Both "front car" and "no front car" cases occur.
        assert!(ys.contains(&crate::features::NO_FRONT_CAR));
        assert!(ys.iter().any(|&y| y != crate::features::NO_FRONT_CAR));
    }
}
