//! Input assembly for the front-car selection network.
//!
//! The paper: "the front-car selection unit … takes the lane information
//! and the bounding box of vehicles, and produces either an index of the
//! bounding vehicle or a special class ⊥ for which no forward vehicle is
//! considered to be a front car."

use crate::perception::{BoundingBox, LaneEstimate};
use crate::scenario::MAX_VEHICLES;
use naps_tensor::Tensor;

/// The "no front car" class ⊥: class index [`MAX_VEHICLES`].
pub const NO_FRONT_CAR: usize = MAX_VEHICLES;

/// Number of classes of the selection network: one per candidate slot plus
/// ⊥.
pub const NUM_CLASSES: usize = MAX_VEHICLES + 1;

/// Features per candidate slot: presence flag, cx, cy, w, h, and a
/// distance-compensated lane-offset estimate (the classical ego-lane
/// association cue a production stack would feed the selector).
pub const SLOT_FEATURES: usize = 6;

/// Total input width: `MAX_VEHICLES` slots plus the two lane boundaries.
pub const INPUT_WIDTH: usize = MAX_VEHICLES * SLOT_FEATURES + 2;

/// The assembled network input plus bookkeeping that maps the selected
/// slot back to a detection.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// Flat input for the selection network.
    pub input: Tensor,
    /// Which detection occupies each slot (`None` = empty slot), after
    /// sorting by apparent size (closest-looking first).
    pub slot_sources: Vec<Option<BoundingBox>>,
}

impl FeatureVector {
    /// Builds the feature vector from perception outputs.
    ///
    /// Detections are sorted by descending box height (a proxy for
    /// proximity) and the first [`MAX_VEHICLES`] fill the slots.
    pub fn assemble(boxes: &[BoundingBox], lane: LaneEstimate) -> Self {
        let mut sorted: Vec<BoundingBox> = boxes.to_vec();
        sorted.sort_by(|a, b| b.h.partial_cmp(&a.h).unwrap_or(std::cmp::Ordering::Equal));
        sorted.truncate(MAX_VEHICLES);

        let mut data = Vec::with_capacity(INPUT_WIDTH);
        let mut slot_sources = Vec::with_capacity(MAX_VEHICLES);
        for slot in 0..MAX_VEHICLES {
            match sorted.get(slot) {
                Some(b) => {
                    // Undo the perspective convergence: apparent height is
                    // ∝ 1/distance, so (cx - 0.5)/h approximates the
                    // physical lateral offset regardless of range.
                    let lane_offset = (b.cx - 0.5) / (b.h + 0.05);
                    data.extend_from_slice(&[1.0, b.cx, b.cy, b.w, b.h, lane_offset]);
                    slot_sources.push(Some(*b));
                }
                None => {
                    data.extend_from_slice(&[0.0; SLOT_FEATURES]);
                    slot_sources.push(None);
                }
            }
        }
        data.push(lane.left);
        data.push(lane.right);
        FeatureVector {
            input: Tensor::from_vec(vec![INPUT_WIDTH], data),
            slot_sources,
        }
    }

    /// Ground-truth class for this feature vector: the slot holding the
    /// detection of vehicle `front_car_vehicle`, or [`NO_FRONT_CAR`] when
    /// the true front car is absent (no front car exists, or the detector
    /// missed it).
    pub fn label_for(&self, front_car_vehicle: Option<usize>) -> usize {
        match front_car_vehicle {
            None => NO_FRONT_CAR,
            Some(v) => self
                .slot_sources
                .iter()
                .position(|s| s.is_some_and(|b| b.source == Some(v)))
                .unwrap_or(NO_FRONT_CAR),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(cx: f32, h: f32, source: Option<usize>) -> BoundingBox {
        BoundingBox {
            cx,
            cy: 0.6,
            w: h,
            h,
            source,
        }
    }

    fn lane() -> LaneEstimate {
        LaneEstimate {
            left: 0.33,
            right: 0.67,
        }
    }

    #[test]
    fn input_width_is_constant() {
        let fv = FeatureVector::assemble(&[], lane());
        assert_eq!(fv.input.len(), INPUT_WIDTH);
        // All slots empty.
        assert!(fv.slot_sources.iter().all(Option::is_none));
        assert_eq!(fv.input.data()[0], 0.0);
    }

    #[test]
    fn slots_sorted_by_apparent_size() {
        let boxes = vec![
            boxed(0.5, 0.1, Some(0)),
            boxed(0.4, 0.3, Some(1)), // biggest -> slot 0
            boxed(0.6, 0.2, Some(2)),
        ];
        let fv = FeatureVector::assemble(&boxes, lane());
        assert_eq!(fv.slot_sources[0].unwrap().source, Some(1));
        assert_eq!(fv.slot_sources[1].unwrap().source, Some(2));
        assert_eq!(fv.slot_sources[2].unwrap().source, Some(0));
    }

    #[test]
    fn overflow_detections_are_dropped() {
        let boxes: Vec<BoundingBox> = (0..6)
            .map(|i| boxed(0.5, 0.1 + i as f32 * 0.05, Some(i)))
            .collect();
        let fv = FeatureVector::assemble(&boxes, lane());
        assert_eq!(fv.slot_sources.len(), MAX_VEHICLES);
        assert!(fv.slot_sources.iter().all(Option::is_some));
    }

    #[test]
    fn label_maps_vehicle_to_slot() {
        let boxes = vec![boxed(0.5, 0.1, Some(7)), boxed(0.4, 0.3, Some(3))];
        let fv = FeatureVector::assemble(&boxes, lane());
        // Vehicle 7 has the smaller box -> slot 1.
        assert_eq!(fv.label_for(Some(7)), 1);
        assert_eq!(fv.label_for(Some(3)), 0);
    }

    #[test]
    fn missing_front_car_labels_bottom() {
        let boxes = vec![boxed(0.5, 0.2, Some(0))];
        let fv = FeatureVector::assemble(&boxes, lane());
        assert_eq!(fv.label_for(None), NO_FRONT_CAR);
        // Vehicle 9 was never detected.
        assert_eq!(fv.label_for(Some(9)), NO_FRONT_CAR);
    }

    #[test]
    fn lane_occupies_last_two_features() {
        let fv = FeatureVector::assemble(&[], lane());
        let d = fv.input.data();
        assert_eq!(d[INPUT_WIDTH - 2], 0.33);
        assert_eq!(d[INPUT_WIDTH - 1], 0.67);
    }
}
