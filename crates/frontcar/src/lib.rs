//! Simulated vision-based front-car detection for highway piloting — the
//! case study of the paper's Section III and Figure 3.
//!
//! The original system is proprietary (a production highway-pilot stack);
//! this crate reproduces its *architecture* with a scenario simulator:
//!
//! ```text
//! camera ──► vehicle detection ─┐
//!                               ├─► front-car selection (neural network,
//! camera ──► lane detection  ───┘    monitored at runtime)
//! ```
//!
//! * [`scenario`] generates highway situations (ego lane, surrounding
//!   vehicles with distances and lateral offsets) with ground-truth front
//!   cars;
//! * [`perception`] simulates the classical detection components, including
//!   measurement noise, missed detections and phantom boxes;
//! * [`features`] assembles the selection network's input vector (lane
//!   information + candidate bounding boxes, as described in the paper);
//! * [`pipeline`] trains the neural front-car selector, wraps it with a
//!   [`naps_core::Monitor`], and steps through scenarios the way the
//!   highway pilot would, reporting both the selection and the monitor
//!   verdict.
//!
//! Distribution shift (the situation the monitor is meant to expose) is
//! modelled by [`scenario::Conditions`] presets such as heavy rain or dense
//! cut-in traffic that the training distribution never contained.

pub mod features;
pub mod perception;
pub mod pipeline;
pub mod scenario;

pub use features::{FeatureVector, NO_FRONT_CAR};
pub use pipeline::{FrontCarPipeline, PipelineConfig, StepOutcome, RARE_CLASS_SCENARIO_BUDGET};
pub use scenario::{Conditions, Scenario, Vehicle};
