//! Highway scenario generation with ground truth.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of lanes on the simulated highway.
pub const NUM_LANES: usize = 3;
/// Maximum number of vehicles the selection network considers.
pub const MAX_VEHICLES: usize = 4;

/// One surrounding vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Lane index `0 ..< NUM_LANES`.
    pub lane: usize,
    /// Longitudinal distance ahead of the ego vehicle, in metres.
    pub distance: f32,
    /// Lateral offset from the lane centre, in metres (±).
    pub lateral: f32,
    /// Physical width, metres.
    pub width: f32,
}

/// Environmental conditions controlling perception difficulty and traffic
/// mix.  Training uses [`Conditions::nominal`]; the shifted presets model
/// deployment situations absent from training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conditions {
    /// Expected number of vehicles (Poisson-ish via repeated Bernoulli).
    pub traffic_density: f32,
    /// Std-dev of bounding-box measurement noise (normalised units).
    pub detection_noise: f32,
    /// Probability that a real vehicle is missed by the detector.
    pub dropout: f32,
    /// Probability of a phantom (false-positive) detection.
    pub phantom_rate: f32,
    /// Minimum vehicle distance (small = aggressive cut-ins).
    pub min_distance: f32,
}

impl Conditions {
    /// Clear weather, moderate traffic — the training distribution.
    pub fn nominal() -> Self {
        Conditions {
            traffic_density: 2.0,
            detection_noise: 0.01,
            dropout: 0.02,
            phantom_rate: 0.01,
            min_distance: 20.0,
        }
    }

    /// Heavy rain: noisy boxes, frequent missed detections.
    pub fn heavy_rain() -> Self {
        Conditions {
            detection_noise: 0.05,
            dropout: 0.15,
            phantom_rate: 0.05,
            ..Conditions::nominal()
        }
    }

    /// Dense traffic with close cut-ins.
    pub fn dense_cutins() -> Self {
        Conditions {
            traffic_density: 3.5,
            min_distance: 6.0,
            ..Conditions::nominal()
        }
    }

    /// A partially degraded sensor: heavy noise without extra dropout.
    pub fn degraded_sensor() -> Self {
        Conditions {
            detection_noise: 0.08,
            ..Conditions::nominal()
        }
    }
}

/// One highway situation: the ego lane and surrounding vehicles, plus the
/// conditions it was generated under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Ego vehicle's lane.
    pub ego_lane: usize,
    /// Surrounding vehicles, unordered.
    pub vehicles: Vec<Vehicle>,
    /// Generation conditions (perception reads the noise fields).
    pub conditions: Conditions,
}

impl Scenario {
    /// Samples a random scenario under `conditions`.
    pub fn sample(conditions: Conditions, rng: &mut impl Rng) -> Self {
        let ego_lane = rng.gen_range(0..NUM_LANES);
        let mut vehicles = Vec::new();
        for _ in 0..MAX_VEHICLES {
            if (rng.gen::<f32>()) < conditions.traffic_density / MAX_VEHICLES as f32 {
                vehicles.push(Vehicle {
                    lane: rng.gen_range(0..NUM_LANES),
                    distance: rng.gen_range(conditions.min_distance..120.0),
                    lateral: rng.gen_range(-0.5..0.5),
                    width: rng.gen_range(1.7..2.3),
                });
            }
        }
        Scenario {
            ego_lane,
            vehicles,
            conditions,
        }
    }

    /// Advances the scenario by `dt` seconds of highway kinematics:
    /// vehicles drift longitudinally with their relative speed, drop off
    /// the scenario once passed, and occasionally change lanes.
    ///
    /// `rel_speeds[i]` is vehicle `i`'s speed relative to the ego vehicle
    /// in m/s (negative = ego is closing in).  This turns single-shot
    /// sampling into a rolling simulation for sequence-level experiments.
    ///
    /// # Panics
    ///
    /// Panics if `rel_speeds.len() != vehicles.len()`.
    pub fn advance(&mut self, dt: f32, rel_speeds: &[f32], rng: &mut impl Rng) {
        assert_eq!(
            rel_speeds.len(),
            self.vehicles.len(),
            "one relative speed per vehicle"
        );
        let mut survivors = Vec::with_capacity(self.vehicles.len());
        for (v, &dv) in self.vehicles.iter().zip(rel_speeds) {
            let mut v = *v;
            v.distance += dv * dt;
            // Passed the ego vehicle or out of sensor range: drop.
            if v.distance <= 2.0 || v.distance > 150.0 {
                continue;
            }
            // Rare lane change.
            if rng.gen::<f32>() < 0.02 * dt {
                let delta: i32 = if rng.gen() { 1 } else { -1 };
                let lane = v.lane as i32 + delta;
                if (0..NUM_LANES as i32).contains(&lane) {
                    v.lane = lane as usize;
                }
            }
            survivors.push(v);
        }
        self.vehicles = survivors;
    }

    /// Ground truth: index (into `vehicles`) of the nearest vehicle in the
    /// ego lane, or `None` when no vehicle is ahead in the ego lane — the
    /// paper's special class "⊥".
    pub fn ground_truth_front_car(&self) -> Option<usize> {
        self.vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| v.lane == self.ego_lane)
            .min_by(|a, b| {
                a.1.distance
                    .partial_cmp(&b.1.distance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = Scenario::sample(Conditions::nominal(), &mut rng);
            assert!(s.ego_lane < NUM_LANES);
            assert!(s.vehicles.len() <= MAX_VEHICLES);
            for v in &s.vehicles {
                assert!(v.lane < NUM_LANES);
                assert!(v.distance >= 20.0 && v.distance <= 120.0);
            }
        }
    }

    #[test]
    fn ground_truth_is_nearest_in_ego_lane() {
        let s = Scenario {
            ego_lane: 1,
            vehicles: vec![
                Vehicle {
                    lane: 1,
                    distance: 80.0,
                    lateral: 0.0,
                    width: 2.0,
                },
                Vehicle {
                    lane: 0,
                    distance: 10.0,
                    lateral: 0.0,
                    width: 2.0,
                },
                Vehicle {
                    lane: 1,
                    distance: 35.0,
                    lateral: 0.1,
                    width: 2.0,
                },
            ],
            conditions: Conditions::nominal(),
        };
        assert_eq!(s.ground_truth_front_car(), Some(2));
    }

    #[test]
    fn empty_ego_lane_has_no_front_car() {
        let s = Scenario {
            ego_lane: 2,
            vehicles: vec![Vehicle {
                lane: 0,
                distance: 30.0,
                lateral: 0.0,
                width: 2.0,
            }],
            conditions: Conditions::nominal(),
        };
        assert_eq!(s.ground_truth_front_car(), None);
    }

    #[test]
    fn shifted_conditions_are_harder() {
        let nominal = Conditions::nominal();
        assert!(Conditions::heavy_rain().dropout > nominal.dropout);
        assert!(Conditions::dense_cutins().min_distance < nominal.min_distance);
        assert!(Conditions::degraded_sensor().detection_noise > nominal.detection_noise);
    }

    #[test]
    fn advance_moves_vehicles_and_culls_passed_ones() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Scenario {
            ego_lane: 1,
            vehicles: vec![
                Vehicle {
                    lane: 1,
                    distance: 50.0,
                    lateral: 0.0,
                    width: 2.0,
                },
                Vehicle {
                    lane: 0,
                    distance: 5.0,
                    lateral: 0.0,
                    width: 2.0,
                },
            ],
            conditions: Conditions::nominal(),
        };
        // Vehicle 0 pulls away (+5 m/s), vehicle 1 is overtaken (-10 m/s).
        s.advance(1.0, &[5.0, -10.0], &mut rng);
        assert_eq!(s.vehicles.len(), 1);
        assert!((s.vehicles[0].distance - 55.0).abs() < 1e-5);
    }

    #[test]
    fn advance_over_time_keeps_state_valid() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = Scenario::sample(Conditions::dense_cutins(), &mut rng);
        for _ in 0..50 {
            let speeds: Vec<f32> = s
                .vehicles
                .iter()
                .map(|_| rng.gen_range(-8.0..8.0))
                .collect();
            s.advance(0.5, &speeds, &mut rng);
            for v in &s.vehicles {
                assert!(v.lane < NUM_LANES);
                assert!(v.distance > 2.0 && v.distance <= 150.0);
            }
        }
    }

    #[test]
    fn dense_traffic_generates_more_vehicles_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let count = |c: Conditions, rng: &mut StdRng| -> usize {
            (0..300)
                .map(|_| Scenario::sample(c, rng).vehicles.len())
                .sum()
        };
        let nominal = count(Conditions::nominal(), &mut rng);
        let dense = count(Conditions::dense_cutins(), &mut rng);
        assert!(dense > nominal, "dense {dense} <= nominal {nominal}");
    }
}
