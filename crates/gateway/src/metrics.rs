//! Lock-free gateway counters and latency histograms.
//!
//! Everything here is updated from reader and worker threads with
//! relaxed atomics — the metrics path must never contend with (or be
//! able to stall) the verdict path.  Latencies go into power-of-two
//! microsecond buckets; quantiles are answered as the upper bound of
//! the bucket containing the requested rank, which is exact enough for
//! p50/p99 dashboards and costs one fetch-add per request.

use crate::proto::RequestKind;
use naps_sync::atomic::{AtomicU64, Ordering};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^{i+1})` µs, with the last bucket open-ended (≈ 9 minutes+).
const BUCKETS: usize = 30;

/// A log-scale latency histogram with atomic buckets.
#[derive(Debug, Default)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    pub(crate) fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let idx = if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        // ordering: relaxed — independent per-bucket tallies; snapshot
        // reads tolerate torn cross-bucket views.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile sample,
    /// or `None` when the histogram is empty.
    pub(crate) fn quantile_upper_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // ordering: relaxed — dashboard read of monotone tallies;
            // slight staleness is fine.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        // Rank of the q-quantile sample, 1-based, clamped to the ends.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                });
            }
        }
        Some(u64::MAX)
    }
}

/// Per-request-kind counters.
#[derive(Debug, Default)]
pub(crate) struct KindStats {
    pub(crate) count: AtomicU64,
    pub(crate) latency: Histogram,
}

/// All gateway counters; one instance per [`crate::Gateway`].
#[derive(Debug)]
pub(crate) struct Metrics {
    pub(crate) started: Instant,
    pub(crate) connections_current: AtomicU64,
    /// High-water mark of concurrently open connections, maintained
    /// with `fetch_max` so racing accepts can never regress it.
    pub(crate) connections_peak: AtomicU64,
    pub(crate) connections_total: AtomicU64,
    /// Requests decoded from a frame (whether served or rejected).
    pub(crate) accepted: AtomicU64,
    /// Responses written back (verdicts *and* typed rejections).
    pub(crate) answered: AtomicU64,
    /// Typed `Saturated` rejections (load shedding).
    pub(crate) shed: AtomicU64,
    /// Frames/handshakes that failed to decode (connection dropped).
    pub(crate) malformed: AtomicU64,
    /// Responses lost to a dead client socket.
    pub(crate) write_errors: AtomicU64,
    pub(crate) per_kind: [KindStats; 4],
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            connections_current: AtomicU64::new(0),
            connections_peak: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            per_kind: Default::default(),
        }
    }

    pub(crate) fn kind(&self, kind: RequestKind) -> &KindStats {
        &self.per_kind[kind.index()]
    }

    pub(crate) fn snapshot(&self, queue_depth: usize) -> GatewayStats {
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        // ordering: relaxed — all snapshot loads below read independent
        // monotone counters; the snapshot is advisory, not a sync point.
        let answered = self.answered.load(Ordering::Relaxed);
        GatewayStats {
            uptime_secs: uptime,
            // ordering: relaxed — advisory snapshot (see above)
            connections_current: self.connections_current.load(Ordering::Relaxed),
            connections_peak: self.connections_peak.load(Ordering::Relaxed), // ordering: relaxed snapshot
            connections_total: self.connections_total.load(Ordering::Relaxed), // ordering: relaxed snapshot
            accepted: self.accepted.load(Ordering::Relaxed), // ordering: relaxed snapshot
            answered,
            shed: self.shed.load(Ordering::Relaxed), // ordering: relaxed snapshot
            malformed: self.malformed.load(Ordering::Relaxed), // ordering: relaxed snapshot
            write_errors: self.write_errors.load(Ordering::Relaxed), // ordering: relaxed snapshot
            queue_depth,
            qps: answered as f64 / uptime,
            kinds: RequestKind::ALL
                .iter()
                .map(|&k| {
                    let s = self.kind(k);
                    KindSnapshot {
                        kind: k.name(),
                        count: s.count.load(Ordering::Relaxed), // ordering: relaxed snapshot
                        p50_us: s.latency.quantile_upper_us(0.50),
                        p99_us: s.latency.quantile_upper_us(0.99),
                    }
                })
                .collect(),
        }
    }

    /// Renders the plaintext metrics page (Prometheus-flavoured:
    /// `name{label="…"} value` lines).
    pub(crate) fn render(&self, queue_depth: usize) -> String {
        let snap = self.snapshot(queue_depth);
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "naps_gateway_uptime_seconds {:.3}\n",
            snap.uptime_secs
        ));
        out.push_str(&format!(
            "naps_gateway_connections_current {}\n",
            snap.connections_current
        ));
        out.push_str(&format!(
            "naps_gateway_connections_peak {}\n",
            snap.connections_peak
        ));
        out.push_str(&format!(
            "naps_gateway_connections_total {}\n",
            snap.connections_total
        ));
        out.push_str(&format!(
            "naps_gateway_requests_accepted_total {}\n",
            snap.accepted
        ));
        out.push_str(&format!("naps_gateway_responses_total {}\n", snap.answered));
        out.push_str(&format!("naps_gateway_requests_shed_total {}\n", snap.shed));
        out.push_str(&format!(
            "naps_gateway_malformed_total {}\n",
            snap.malformed
        ));
        out.push_str(&format!(
            "naps_gateway_write_errors_total {}\n",
            snap.write_errors
        ));
        out.push_str(&format!(
            "naps_gateway_engine_queue_depth {}\n",
            snap.queue_depth
        ));
        out.push_str(&format!("naps_gateway_qps {:.3}\n", snap.qps));
        for k in &snap.kinds {
            out.push_str(&format!(
                "naps_gateway_requests_total{{kind=\"{}\"}} {}\n",
                k.kind, k.count
            ));
            for (q, v) in [("0.5", k.p50_us), ("0.99", k.p99_us)] {
                if let Some(us) = v {
                    out.push_str(&format!(
                        "naps_gateway_latency_us{{kind=\"{}\",quantile=\"{}\"}} {}\n",
                        k.kind, q, us
                    ));
                }
            }
        }
        out
    }
}

/// A point-in-time snapshot of the gateway's counters — what the
/// metrics endpoint renders, as a typed value for tests and evals.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayStats {
    /// Seconds since the gateway was bound.
    pub uptime_secs: f64,
    /// Connections open right now.
    pub connections_current: u64,
    /// Most connections ever open at once.
    pub connections_peak: u64,
    /// Connections accepted over the gateway's lifetime.
    pub connections_total: u64,
    /// Requests successfully decoded from client frames.
    pub accepted: u64,
    /// Responses written back — verdicts *and* typed rejections.  The
    /// drain guarantee is `answered == accepted` (minus responses lost
    /// to a client that vanished, counted in `write_errors`).
    pub answered: u64,
    /// Requests shed with a typed `Saturated` response.
    pub shed: u64,
    /// Frames or handshakes that failed to decode (each drops its
    /// connection).
    pub malformed: u64,
    /// Responses that could not be written because the client's socket
    /// was gone.
    pub write_errors: u64,
    /// The engine's pending-request count at snapshot time.
    pub queue_depth: usize,
    /// Lifetime responses per second.
    pub qps: f64,
    /// Per-request-kind counts and latency quantiles.
    pub kinds: Vec<KindSnapshot>,
}

/// Per-kind counters inside a [`GatewayStats`].
#[derive(Debug, Clone, Serialize)]
pub struct KindSnapshot {
    /// The request kind's stable name.
    pub kind: &'static str,
    /// Requests of this kind accepted.
    pub count: u64,
    /// Upper bound (µs) of the median-latency bucket; `None` if no
    /// request of this kind has completed.
    pub p50_us: Option<u64>,
    /// Upper bound (µs) of the p99-latency bucket.
    pub p99_us: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_recorded_latencies() {
        let h = Histogram::default();
        assert_eq!(h.quantile_upper_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536)
        let p50 = h.quantile_upper_us(0.5).expect("non-empty");
        assert_eq!(p50, 128);
        let p99 = h.quantile_upper_us(0.99).expect("non-empty");
        assert_eq!(p99, 128);
        let p100 = h.quantile_upper_us(1.0).expect("non-empty");
        assert_eq!(p100, 65536);
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_upper_us(0.5), Some(2));
    }
}
