//! Wire codec for protocol **v1** — total, allocation-bounded, and
//! panic-free.
//!
//! Every decoder in this module is *total*: any byte sequence either
//! decodes to a value or returns a typed [`WireError`].  Nothing here
//! indexes, unwraps, or converts unchecked — a malformed frame from a
//! client must never be able to unwind a gateway thread.  Encoders are
//! the exact inverses; floats travel as IEEE-754 little-endian bytes
//! ([`f32::to_le_bytes`] / [`f32::from_le_bytes`]) so a verdict that
//! crosses the wire is **bit-identical** to the in-process one.
//!
//! The layout is specified in the [crate docs](crate); the constants and
//! tag values below are the normative encoding.

use naps_core::{GradedQuery, GradedReport, MonitorReport, NearestZone, Triage, Verdict};
use naps_serve::{EpochReport, LayeredEpochReport};
use std::fmt;
use std::io::{self, Read, Write};

/// Handshake magic — the first four bytes of every connection.
pub const MAGIC: [u8; 4] = *b"NAPS";
/// The protocol version this crate speaks.
pub const WIRE_VERSION: u16 = 1;
/// Default upper bound on one frame's payload (1 MiB) — a length prefix
/// above the bound is rejected before any allocation.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// What kind of question a request frame asks.  The discriminants are
/// the on-wire kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RequestKind {
    /// Binary single-layer verdict ([`naps_serve::MonitorEngine::check`]).
    Check = 1,
    /// Graded single-layer verdict (`check_graded`).
    CheckGraded = 2,
    /// Binary per-layer verdict (`check_layered`).
    CheckLayered = 3,
    /// Graded per-layer verdict (`check_layered_graded`).
    CheckLayeredGraded = 4,
}

impl RequestKind {
    /// All kinds, in tag order — for metrics tables.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Check,
        RequestKind::CheckGraded,
        RequestKind::CheckLayered,
        RequestKind::CheckLayeredGraded,
    ];

    /// Stable lowercase name (metrics labels, logs).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Check => "check",
            RequestKind::CheckGraded => "check_graded",
            RequestKind::CheckLayered => "check_layered",
            RequestKind::CheckLayeredGraded => "check_layered_graded",
        }
    }

    /// Index into [`RequestKind::ALL`].
    pub fn index(self) -> usize {
        self as usize - 1
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            1 => Ok(RequestKind::Check),
            2 => Ok(RequestKind::CheckGraded),
            3 => Ok(RequestKind::CheckLayered),
            4 => Ok(RequestKind::CheckLayeredGraded),
            other => Err(WireError::UnknownKind(other)),
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One decoded request frame: a correlation id chosen by the client
/// (echoed verbatim in the response), the question kind, the optional
/// graded query, and the raw input features.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id; the gateway echoes it back so
    /// pipelined clients can match responses to requests.
    pub id: u64,
    /// Which verdict API this maps to.
    pub kind: RequestKind,
    /// Distance budget / top-k for the graded kinds; must be `Some` iff
    /// the kind is graded (enforced by the codec).
    pub query: Option<GradedQuery>,
    /// The input features, row-major.  The gateway turns this into a
    /// rank-1 [`naps_tensor::Tensor`] of the same length.
    pub input: Vec<f32>,
}

/// Why the gateway could not answer a request — the wire projection of
/// [`naps_serve::SubmitError`] plus a catch-all.  The discriminants are
/// the on-wire status tags (`Ok` responses use tags 0 and 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The engine's bounded queue was full — the request was shed, not
    /// queued.  Retry with backoff.
    Saturated,
    /// The gateway (or engine) is draining; no new work is accepted.
    ShuttingDown,
    /// The input length does not match the model's input width.
    WidthMismatch {
        /// Width the served model expects.
        expected: u32,
        /// Width the request carried.
        actual: u32,
    },
    /// An engine worker died before answering.  The request was
    /// accepted but cannot be judged; the error is typed so the
    /// connection (and the server) outlive it.
    WorkerLost,
    /// Any other engine-side failure (future [`naps_serve::SubmitError`]
    /// variants decode to this rather than tearing the connection).
    Internal,
}

impl Rejection {
    fn tag(self) -> u8 {
        match self {
            Rejection::Saturated => 2,
            Rejection::ShuttingDown => 3,
            Rejection::WidthMismatch { .. } => 4,
            Rejection::WorkerLost => 5,
            Rejection::Internal => 6,
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Saturated => write!(f, "queue full, request shed"),
            Rejection::ShuttingDown => write!(f, "gateway is shutting down"),
            Rejection::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "input width {actual} does not match model width {expected}"
                )
            }
            Rejection::WorkerLost => write!(f, "engine worker died before answering"),
            Rejection::Internal => write!(f, "internal engine error"),
        }
    }
}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Single-layer verdict (for [`RequestKind::Check`] /
    /// [`RequestKind::CheckGraded`]).
    Single(EpochReport),
    /// Per-layer verdict (for the layered kinds).
    Layered(LayeredEpochReport),
    /// Typed refusal; the request was not (fully) served.
    Rejected(Rejection),
}

/// Everything that can go wrong encoding, decoding, or transporting a
/// frame.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// A length prefix exceeded the frame bound — rejected before
    /// allocating.
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
        /// The configured bound.
        max: u32,
    },
    /// The payload ended mid-field.
    Truncated {
        /// Which field was being read.
        what: &'static str,
    },
    /// The payload decoded fully but bytes remained.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The handshake did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version the peer offered.
        got: u16,
        /// Version this side speaks.
        want: u16,
    },
    /// Unknown request-kind tag.
    UnknownKind(u8),
    /// Unknown response-status tag.
    UnknownStatus(u8),
    /// Unknown enum tag inside a payload.
    UnknownTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A count did not fit the wire width (or `usize` on this target).
    Overflow {
        /// Which field overflowed.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            WireError::Truncated { what } => write!(f, "frame truncated while reading {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete payload")
            }
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:?}"),
            WireError::UnsupportedVersion { got, want } => {
                write!(f, "peer speaks protocol v{got}, this side speaks v{want}")
            }
            WireError::UnknownKind(tag) => write!(f, "unknown request kind tag {tag}"),
            WireError::UnknownStatus(tag) => write!(f, "unknown response status tag {tag}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Overflow { what } => write!(f, "{what} does not fit the wire encoding"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether the error means the *peer's bytes* were malformed (as
    /// opposed to a transport failure or a clean close) — the cases the
    /// gateway counts as `malformed` before dropping the connection.
    pub fn is_malformed(&self) -> bool {
        !matches!(self, WireError::Io(_) | WireError::Closed)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Reads one `u32`-length-prefixed frame.  Returns [`WireError::Closed`]
/// on a clean EOF *between* frames, [`WireError::Truncated`] on EOF
/// mid-frame, and [`WireError::FrameTooLarge`] (before allocating)
/// when the prefix exceeds `max`.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Vec<u8>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    // `get_mut` + emptiness filter is the loop condition: the slice is
    // `prefix[got..]` and the loop ends exactly when it is empty.
    while let Some(rest) = prefix.get_mut(got..).filter(|rest| !rest.is_empty()) {
        match r.read(rest) {
            Ok(0) => {
                return if got == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Truncated {
                        what: "frame length",
                    })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > max {
        return Err(WireError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                what: "frame payload",
            }
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(payload)
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Overflow {
        what: "frame length",
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Encodes the 6-byte hello (`MAGIC` + version); both sides send one.
pub fn encode_hello(version: u16) -> [u8; 6] {
    let [m0, m1, m2, m3] = MAGIC;
    let [v0, v1] = version.to_le_bytes();
    [m0, m1, m2, m3, v0, v1]
}

/// Reads and validates a hello, returning the peer's version (which may
/// still differ from [`WIRE_VERSION`] — the caller decides whether to
/// tolerate it).
pub fn read_hello(r: &mut impl Read) -> Result<u16, WireError> {
    let mut hello = [0u8; 6];
    r.read_exact(&mut hello).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated { what: "handshake" }
        } else {
            WireError::Io(e)
        }
    })?;
    // Destructuring splits the fixed-size hello without any indexing.
    let [m0, m1, m2, m3, v0, v1] = hello;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    Ok(u16::from_le_bytes([v0, v1]))
}

// ---------------------------------------------------------------------
// Payload reader (total: every read is bounds-checked)
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Overflow { what })?;
        // `get` is the bounds check: None (out of range) is a truncated
        // payload, reported with the field being read.
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { what })?;
        self.pos = end;
        Ok(slice)
    }

    /// [`Reader::take`], but as a fixed-size array — the total form the
    /// fixed-width readers below build on (no indexing anywhere).
    fn take_array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], WireError> {
        let b = self.take(N, what)?;
        // `take` returned exactly N bytes; the conversion re-checks the
        // length rather than assuming it.
        <[u8; N]>::try_from(b).map_err(|_| WireError::Truncated { what })
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(u8::from_le_bytes(self.take_array(what)?))
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array(what)?))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take_array(what)?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos < self.buf.len() {
            Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        } else {
            Ok(())
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn wire_u32(v: usize, what: &'static str) -> Result<u32, WireError> {
    u32::try_from(v).map_err(|_| WireError::Overflow { what })
}

fn wire_u16(v: usize, what: &'static str) -> Result<u16, WireError> {
    u16::try_from(v).map_err(|_| WireError::Overflow { what })
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            put_u32(out, d);
        }
    }
}

fn read_opt_u32(r: &mut Reader<'_>, what: &'static str) -> Result<Option<u32>, WireError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u32(what)?)),
        tag => Err(WireError::UnknownTag { what, tag }),
    }
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

/// Encodes a request payload (frame the result with [`write_frame`]).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let graded = matches!(
        req.kind,
        RequestKind::CheckGraded | RequestKind::CheckLayeredGraded
    );
    debug_assert_eq!(graded, req.query.is_some(), "query must match the kind");
    let mut out = Vec::with_capacity(17 + 8 * graded as usize + 4 * req.input.len());
    out.push(req.kind as u8);
    put_u64(&mut out, req.id);
    if graded {
        let q = req.query.ok_or(WireError::UnknownTag {
            what: "graded query",
            tag: 0,
        })?;
        put_u32(&mut out, q.budget);
        put_u32(&mut out, wire_u32(q.top_k, "graded top_k")?);
    }
    put_u32(&mut out, wire_u32(req.input.len(), "input length")?);
    for v in &req.input {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a request payload (total; consumes the whole buffer).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let kind = RequestKind::from_tag(r.u8("request kind")?)?;
    let id = r.u64("request id")?;
    let query = match kind {
        RequestKind::CheckGraded | RequestKind::CheckLayeredGraded => {
            let budget = r.u32("graded budget")?;
            let top_k = r.u32("graded top_k")? as usize;
            Some(GradedQuery { budget, top_k })
        }
        _ => None,
    };
    let n = r.u32("input length")? as usize;
    // The count is bounded by the frame length (4 bytes per feature), so
    // a hostile prefix cannot force a huge allocation past the frame cap.
    if n.checked_mul(4).is_none_or(|bytes| bytes > payload.len()) {
        return Err(WireError::Truncated {
            what: "input features",
        });
    }
    let mut input = Vec::with_capacity(n);
    for _ in 0..n {
        input.push(r.f32("input features")?);
    }
    r.finish()?;
    Ok(Request {
        id,
        kind,
        query,
        input,
    })
}

// ---------------------------------------------------------------------
// Report codecs
// ---------------------------------------------------------------------

fn verdict_tag(v: Verdict) -> u8 {
    match v {
        Verdict::InPattern => 0,
        Verdict::OutOfPattern => 1,
        Verdict::Unmonitored => 2,
    }
}

fn verdict_from(tag: u8) -> Result<Verdict, WireError> {
    match tag {
        0 => Ok(Verdict::InPattern),
        1 => Ok(Verdict::OutOfPattern),
        2 => Ok(Verdict::Unmonitored),
        tag => Err(WireError::UnknownTag {
            what: "verdict",
            tag,
        }),
    }
}

fn triage_tag(t: Triage) -> u8 {
    match t {
        Triage::InPattern => 0,
        Triage::OutOfPattern => 1,
        Triage::MisclassificationCandidate => 2,
        Triage::Novelty => 3,
        Triage::Unmonitored => 4,
    }
}

fn triage_from(tag: u8) -> Result<Triage, WireError> {
    match tag {
        0 => Ok(Triage::InPattern),
        1 => Ok(Triage::OutOfPattern),
        2 => Ok(Triage::MisclassificationCandidate),
        3 => Ok(Triage::Novelty),
        4 => Ok(Triage::Unmonitored),
        tag => Err(WireError::UnknownTag {
            what: "triage",
            tag,
        }),
    }
}

fn put_report(out: &mut Vec<u8>, report: &MonitorReport) -> Result<(), WireError> {
    put_u32(out, wire_u32(report.predicted, "predicted class")?);
    out.push(verdict_tag(report.verdict));
    put_opt_u32(out, report.distance_to_seeds);
    Ok(())
}

fn read_report(r: &mut Reader<'_>) -> Result<MonitorReport, WireError> {
    let predicted = r.u32("predicted class")? as usize;
    let verdict = verdict_from(r.u8("verdict")?)?;
    let distance_to_seeds = read_opt_u32(r, "seed distance")?;
    Ok(MonitorReport {
        predicted,
        verdict,
        distance_to_seeds,
    })
}

fn put_graded(out: &mut Vec<u8>, g: &GradedReport) -> Result<(), WireError> {
    put_report(out, &g.report)?;
    put_opt_u32(out, g.distance_to_zone);
    put_u16(out, wire_u16(g.nearest.len(), "nearest-zone count")?);
    for z in &g.nearest {
        put_u32(out, wire_u32(z.class, "nearest-zone class")?);
        put_u32(out, z.distance);
    }
    put_u32(out, g.query.budget);
    put_u32(out, wire_u32(g.query.top_k, "graded top_k")?);
    out.push(triage_tag(g.triage));
    Ok(())
}

fn read_graded(r: &mut Reader<'_>) -> Result<GradedReport, WireError> {
    let report = read_report(r)?;
    let distance_to_zone = read_opt_u32(r, "zone distance")?;
    let n = r.u16("nearest-zone count")? as usize;
    let mut nearest = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let class = r.u32("nearest-zone class")? as usize;
        let distance = r.u32("nearest-zone distance")?;
        nearest.push(NearestZone { class, distance });
    }
    let budget = r.u32("graded budget")?;
    let top_k = r.u32("graded top_k")? as usize;
    let triage = triage_from(r.u8("triage")?)?;
    Ok(GradedReport {
        report,
        distance_to_zone,
        nearest,
        query: GradedQuery { budget, top_k },
        triage,
    })
}

fn put_single(out: &mut Vec<u8>, e: &EpochReport) -> Result<(), WireError> {
    put_u64(out, e.epoch);
    put_report(out, &e.report)?;
    match &e.graded {
        None => out.push(0),
        Some(g) => {
            out.push(1);
            put_graded(out, g)?;
        }
    }
    Ok(())
}

fn read_single(r: &mut Reader<'_>) -> Result<EpochReport, WireError> {
    let epoch = r.u64("epoch")?;
    let report = read_report(r)?;
    let graded = match r.u8("graded flag")? {
        0 => None,
        1 => Some(read_graded(r)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "graded flag",
                tag,
            })
        }
    };
    Ok(EpochReport {
        epoch,
        report,
        graded,
    })
}

fn put_layered(out: &mut Vec<u8>, e: &LayeredEpochReport) -> Result<(), WireError> {
    put_u64(out, e.epoch);
    put_u32(out, wire_u32(e.predicted, "predicted class")?);
    put_u16(out, wire_u16(e.per_layer.len(), "layer count")?);
    for report in &e.per_layer {
        put_report(out, report)?;
    }
    out.push(verdict_tag(e.combined));
    match &e.graded {
        None => out.push(0),
        Some(gs) => {
            out.push(1);
            put_u16(out, wire_u16(gs.len(), "graded layer count")?);
            for g in gs {
                put_graded(out, g)?;
            }
        }
    }
    Ok(())
}

fn read_layered(r: &mut Reader<'_>) -> Result<LayeredEpochReport, WireError> {
    let epoch = r.u64("epoch")?;
    let predicted = r.u32("predicted class")? as usize;
    let layers = r.u16("layer count")? as usize;
    let mut per_layer = Vec::with_capacity(layers.min(1024));
    for _ in 0..layers {
        per_layer.push(read_report(r)?);
    }
    let combined = verdict_from(r.u8("combined verdict")?)?;
    let graded = match r.u8("graded flag")? {
        0 => None,
        1 => {
            let n = r.u16("graded layer count")? as usize;
            let mut gs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                gs.push(read_graded(r)?);
            }
            Some(gs)
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "graded flag",
                tag,
            })
        }
    };
    Ok(LayeredEpochReport {
        epoch,
        predicted,
        per_layer,
        combined,
        graded,
    })
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

/// Encodes a response payload for correlation id `id`.
pub fn encode_response(id: u64, resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(32);
    match resp {
        Response::Single(e) => {
            out.push(0);
            put_u64(&mut out, id);
            put_single(&mut out, e)?;
        }
        Response::Layered(e) => {
            out.push(1);
            put_u64(&mut out, id);
            put_layered(&mut out, e)?;
        }
        Response::Rejected(rej) => {
            out.push(rej.tag());
            put_u64(&mut out, id);
            if let Rejection::WidthMismatch { expected, actual } = rej {
                put_u32(&mut out, *expected);
                put_u32(&mut out, *actual);
            }
        }
    }
    Ok(out)
}

/// Decodes a response payload into `(correlation id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let mut r = Reader::new(payload);
    let status = r.u8("response status")?;
    let id = r.u64("response id")?;
    let resp = match status {
        0 => Response::Single(read_single(&mut r)?),
        1 => Response::Layered(read_layered(&mut r)?),
        2 => Response::Rejected(Rejection::Saturated),
        3 => Response::Rejected(Rejection::ShuttingDown),
        4 => {
            let expected = r.u32("expected width")?;
            let actual = r.u32("actual width")?;
            Response::Rejected(Rejection::WidthMismatch { expected, actual })
        }
        5 => Response::Rejected(Rejection::WorkerLost),
        6 => Response::Rejected(Rejection::Internal),
        tag => return Err(WireError::UnknownStatus(tag)),
    };
    r.finish()?;
    Ok((id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graded() -> GradedReport {
        GradedReport {
            report: MonitorReport {
                predicted: 2,
                verdict: Verdict::OutOfPattern,
                distance_to_seeds: Some(3),
            },
            distance_to_zone: None,
            nearest: vec![
                NearestZone {
                    class: 0,
                    distance: 1,
                },
                NearestZone {
                    class: 3,
                    distance: 2,
                },
            ],
            query: GradedQuery {
                budget: 4,
                top_k: 2,
            },
            triage: Triage::Novelty,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 0xDEAD_BEEF_0042,
            kind: RequestKind::CheckGraded,
            query: Some(GradedQuery {
                budget: 3,
                top_k: 5,
            }),
            input: vec![0.5, -1.25, f32::MIN_POSITIVE, 0.0],
        };
        let bytes = encode_request(&req).expect("encode");
        assert_eq!(decode_request(&bytes).expect("decode"), req);
    }

    #[test]
    fn responses_round_trip() {
        let single = Response::Single(EpochReport {
            epoch: 7,
            report: MonitorReport {
                predicted: 1,
                verdict: Verdict::InPattern,
                distance_to_seeds: Some(0),
            },
            graded: Some(sample_graded()),
        });
        let layered = Response::Layered(LayeredEpochReport {
            epoch: 9,
            predicted: 2,
            per_layer: vec![
                MonitorReport {
                    predicted: 2,
                    verdict: Verdict::OutOfPattern,
                    distance_to_seeds: None,
                },
                MonitorReport {
                    predicted: 2,
                    verdict: Verdict::Unmonitored,
                    distance_to_seeds: Some(11),
                },
            ],
            combined: Verdict::OutOfPattern,
            graded: Some(vec![sample_graded(), sample_graded()]),
        });
        let rejections = [
            Response::Rejected(Rejection::Saturated),
            Response::Rejected(Rejection::ShuttingDown),
            Response::Rejected(Rejection::WidthMismatch {
                expected: 16,
                actual: 4,
            }),
            Response::Rejected(Rejection::WorkerLost),
            Response::Rejected(Rejection::Internal),
        ];
        for (i, resp) in [single, layered].into_iter().chain(rejections).enumerate() {
            let id = i as u64 * 31 + 5;
            let bytes = encode_response(id, &resp).expect("encode");
            let (got_id, got) = decode_response(&bytes).expect("decode");
            assert_eq!(got_id, id);
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn floats_cross_the_wire_bit_identically() {
        let tricky = vec![
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            1.0000001,
        ];
        let req = Request {
            id: 1,
            kind: RequestKind::Check,
            query: None,
            input: tricky.clone(),
        };
        let decoded = decode_request(&encode_request(&req).expect("encode")).expect("decode");
        for (a, b) in tricky.iter().zip(&decoded.input) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let req = Request {
            id: 3,
            kind: RequestKind::CheckLayeredGraded,
            query: Some(GradedQuery {
                budget: 2,
                top_k: 1,
            }),
            input: vec![1.0, 2.0, 3.0],
        };
        let bytes = encode_request(&req).expect("encode");
        for cut in 0..bytes.len() {
            let err = decode_request(&bytes[..cut]).expect_err("prefix must not decode");
            assert!(err.is_malformed(), "cut at {cut} gave {err}");
        }
        let resp = encode_response(
            9,
            &Response::Layered(LayeredEpochReport {
                epoch: 1,
                predicted: 0,
                per_layer: vec![MonitorReport {
                    predicted: 0,
                    verdict: Verdict::InPattern,
                    distance_to_seeds: None,
                }],
                combined: Verdict::InPattern,
                graded: None,
            }),
        )
        .expect("encode");
        for cut in 0..resp.len() {
            decode_response(&resp[..cut]).expect_err("prefix must not decode");
        }
    }

    #[test]
    fn junk_bytes_never_panic_the_decoder() {
        // Deterministic pseudo-random fuzz: xorshift over a few seeds.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let len = (next() % 64) as usize;
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            // Must return (Ok or Err), never unwind.
            let _ = decode_request(&buf);
            let _ = decode_response(&buf);
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut frame.as_slice(), DEFAULT_MAX_FRAME).expect_err("too large");
        assert!(matches!(err, WireError::FrameTooLarge { .. }));
        // A plausible prefix with a missing body is a typed truncation.
        let mut short = Vec::new();
        short.extend_from_slice(&8u32.to_le_bytes());
        short.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut short.as_slice(), DEFAULT_MAX_FRAME).expect_err("truncated");
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let req = Request {
            id: 1,
            kind: RequestKind::Check,
            query: None,
            input: vec![1.0],
        };
        let mut bytes = encode_request(&req).expect("encode");
        bytes.push(0xFF);
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }
}
