//! A blocking client for the gateway's wire protocol — the reference
//! peer for [`crate::Gateway`] and the workhorse of the soak tests.
//!
//! The synchronous helpers ([`GatewayClient::check`] & friends) send
//! one request and wait for its response.  The pipelining primitives
//! ([`GatewayClient::send`] / [`GatewayClient::recv`]) let a caller
//! keep many requests in flight on one connection; responses carry the
//! request's correlation id, and the gateway answers engine verdicts in
//! completion order (typed rejections are answered immediately).

use crate::proto::{
    self, Rejection, Request, RequestKind, Response, WireError, DEFAULT_MAX_FRAME, WIRE_VERSION,
};
use naps_core::GradedQuery;
use naps_serve::{EpochReport, LayeredEpochReport};
use naps_tensor::Tensor;
use std::fmt;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The gateway answered with a typed rejection.
    Rejected(Rejection),
    /// The gateway answered with a verdict of the wrong shape (e.g. a
    /// layered report for a `check` request) — a protocol bug.
    UnexpectedResponse {
        /// Shape the call expected.
        want: &'static str,
    },
    /// A synchronous call got a response for a different request id —
    /// only possible when sync calls are mixed into a pipelined stream.
    IdMismatch {
        /// The id the call sent.
        want: u64,
        /// The id the response carried.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Rejected(r) => write!(f, "request rejected: {r}"),
            ClientError::UnexpectedResponse { want } => {
                write!(f, "response shape mismatch (expected {want})")
            }
            ClientError::IdMismatch { want, got } => {
                write!(f, "response id {got} does not match request id {want}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// One connection to a gateway, post-handshake.
pub struct GatewayClient {
    stream: TcpStream,
    next_id: u64,
    max_frame_len: u32,
}

impl GatewayClient {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<GatewayClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&proto::encode_hello(WIRE_VERSION))?;
        stream.flush()?;
        let version = proto::read_hello(&mut stream)?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                got: version,
                want: WIRE_VERSION,
            }
            .into());
        }
        Ok(GatewayClient {
            stream,
            next_id: 0,
            max_frame_len: DEFAULT_MAX_FRAME,
        })
    }

    /// Single-layer binary verdict — the wire twin of
    /// [`naps_serve::MonitorEngine::check`].
    pub fn check(&mut self, input: &Tensor) -> Result<EpochReport, ClientError> {
        let id = self.send(RequestKind::Check, None, input)?;
        self.expect_single(id)
    }

    /// Single-layer graded verdict (`check_graded`).
    pub fn check_graded(
        &mut self,
        input: &Tensor,
        query: GradedQuery,
    ) -> Result<EpochReport, ClientError> {
        let id = self.send(RequestKind::CheckGraded, Some(query), input)?;
        self.expect_single(id)
    }

    /// Full per-layer binary verdict (`check_layered`).
    pub fn check_layered(&mut self, input: &Tensor) -> Result<LayeredEpochReport, ClientError> {
        let id = self.send(RequestKind::CheckLayered, None, input)?;
        self.expect_layered(id)
    }

    /// Full per-layer graded verdict (`check_layered_graded`).
    pub fn check_layered_graded(
        &mut self,
        input: &Tensor,
        query: GradedQuery,
    ) -> Result<LayeredEpochReport, ClientError> {
        let id = self.send(RequestKind::CheckLayeredGraded, Some(query), input)?;
        self.expect_layered(id)
    }

    /// Pipelining primitive: sends one request without waiting and
    /// returns its correlation id.  Pair with [`GatewayClient::recv`].
    pub fn send(
        &mut self,
        kind: RequestKind,
        query: Option<GradedQuery>,
        input: &Tensor,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            kind,
            query,
            input: input.data().to_vec(),
        };
        let payload = proto::encode_request(&req)?;
        proto::write_frame(&mut self.stream, &payload)?;
        Ok(id)
    }

    /// Pipelining primitive: receives the next response (in the order
    /// the gateway finished them) as `(correlation id, response)`.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let payload = proto::read_frame(&mut self.stream, self.max_frame_len)?;
        Ok(proto::decode_response(&payload)?)
    }

    /// Half-closes the write side, telling the gateway no more requests
    /// are coming; pending responses can still be [`recv`]'d.
    ///
    /// [`recv`]: GatewayClient::recv
    pub fn finish_sending(&mut self) -> Result<(), ClientError> {
        self.stream.shutdown(Shutdown::Write)?;
        Ok(())
    }

    fn expect_single(&mut self, id: u64) -> Result<EpochReport, ClientError> {
        match self.recv_for(id)? {
            Response::Single(report) => Ok(report),
            Response::Rejected(r) => Err(ClientError::Rejected(r)),
            Response::Layered(_) => Err(ClientError::UnexpectedResponse { want: "single" }),
        }
    }

    fn expect_layered(&mut self, id: u64) -> Result<LayeredEpochReport, ClientError> {
        match self.recv_for(id)? {
            Response::Layered(report) => Ok(report),
            Response::Rejected(r) => Err(ClientError::Rejected(r)),
            Response::Single(_) => Err(ClientError::UnexpectedResponse { want: "layered" }),
        }
    }

    fn recv_for(&mut self, id: u64) -> Result<Response, ClientError> {
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(ClientError::IdMismatch { want: id, got });
        }
        Ok(resp)
    }
}
