//! # naps-gateway — the monitor's wire boundary
//!
//! The paper deploys activation-pattern monitors *alongside* a live
//! network, which makes the monitor itself a service other processes
//! depend on.  This crate puts [`naps_serve::MonitorEngine`] behind a
//! TCP listener built only on `std::net` (no async runtime): one
//! reader thread per connection decodes length-prefixed request frames
//! and feeds the engine's **non-blocking** submission path, verdicts
//! are written back from the engine's worker threads, and every error
//! — malformed bytes, a full queue, a dying worker — is a typed wire
//! response or a dropped connection, **never a server panic**.
//!
//! | Type | Role |
//! |---|---|
//! | [`Gateway`] / [`GatewayConfig`] | the server: accept loop, readers, metrics listener, graceful drain |
//! | [`GatewayClient`] | blocking reference client (sync helpers + pipelining primitives) |
//! | [`Request`] / [`RequestKind`] | one decoded question |
//! | [`Response`] / [`Rejection`] | one answer: a verdict or a typed refusal |
//! | [`WireError`] | every way bytes can fail to be a frame |
//! | [`GatewayStats`] / [`KindSnapshot`] | typed snapshot of the metrics page |
//!
//! ## Guarantees
//!
//! * **Load shedding, not blocking.**  Readers submit with
//!   [`naps_serve::MonitorEngine::try_submit_layered_with`]; when the
//!   bounded queue is full the client gets an immediate
//!   [`Rejection::Saturated`] frame instead of an unread socket.
//! * **Every accepted request is answered.**  Once a frame decodes,
//!   a response guard guarantees a reply — a verdict, a typed
//!   rejection, or (if an engine worker dies holding the request)
//!   [`Rejection::WorkerLost`] — before the connection or gateway
//!   finishes shutting down.
//! * **Bit-identical verdicts.**  Inputs and reports cross the wire as
//!   IEEE-754 little-endian bytes and fixed-width integers; a verdict
//!   served through the gateway equals the in-process
//!   [`naps_serve::MonitorEngine::check`] result field for field
//!   (pinned by the loopback soak tests and the `gateway` eval).
//!
//! ## Wire format (version 1)
//!
//! All integers are **little-endian**; floats are IEEE-754 binary32 in
//! little-endian byte order.  `opt<u32>` is a `u8` flag (`0` absent,
//! `1` present) followed by the `u32` when present.
//!
//! ### Handshake
//!
//! The client opens the connection and sends 6 bytes: the magic
//! `b"NAPS"` then `u16` protocol version ([`WIRE_VERSION`] = 1).  The
//! server replies with the same 6-byte form.  If the versions differ
//! the server still replies (so the client can report the mismatch)
//! and closes.
//!
//! ### Framing
//!
//! Every subsequent message is one frame: `u32` payload length, then
//! the payload.  Payloads above the receiver's bound (default
//! [`DEFAULT_MAX_FRAME`] = 1 MiB) are rejected before allocation and
//! drop the connection.
//!
//! ### Request payload
//!
//! ```text
//! u8  kind        1 = check, 2 = check_graded,
//!                 3 = check_layered, 4 = check_layered_graded
//! u64 id          client-chosen correlation id, echoed in the response
//! u32 budget      ┐ graded kinds (2, 4) only
//! u32 top_k       ┘
//! u32 n           input feature count
//! f32 × n         the input, row-major
//! ```
//!
//! ### Response payload
//!
//! ```text
//! u8  status      0 = verdict (single-layer)   1 = verdict (layered)
//!                 2 = saturated                3 = shutting down
//!                 4 = width mismatch           5 = worker lost
//!                 6 = internal error
//! u64 id          the request's correlation id
//! ...body         status 0: EpochReport; status 1: LayeredEpochReport;
//!                 status 4: u32 expected, u32 actual; otherwise empty
//! ```
//!
//! Report bodies compose from these encodings:
//!
//! ```text
//! MonitorReport       = u32 predicted · u8 verdict · opt<u32> seed_distance
//! verdict             = 0 in-pattern · 1 out-of-pattern · 2 unmonitored
//! GradedReport        = MonitorReport · opt<u32> zone_distance
//!                     · u16 k · k × (u32 class · u32 distance)
//!                     · u32 budget · u32 top_k · u8 triage
//! triage              = 0 in-pattern · 1 out-of-pattern
//!                     · 2 misclassification-candidate · 3 novelty
//!                     · 4 unmonitored
//! EpochReport         = u64 epoch · MonitorReport · u8 has_graded
//!                     · [GradedReport]
//! LayeredEpochReport  = u64 epoch · u32 predicted
//!                     · u16 layers · layers × MonitorReport
//!                     · u8 combined_verdict · u8 has_graded
//!                     · [u16 g · g × GradedReport]
//! ```
//!
//! Responses to pipelined requests arrive in **completion order**, not
//! submission order — that is what the correlation id is for.  Typed
//! rejections are written by the reader thread immediately; verdicts
//! are written by whichever engine worker judged the micro-batch.
//!
//! ### Metrics endpoint
//!
//! A second listener (same IP, own port — [`Gateway::metrics_addr`])
//! speaks plaintext, not frames: connect, read to EOF.  The page is
//! Prometheus-flavoured `name{label="…"} value` lines — QPS, engine
//! queue depth, connection/accepted/answered/shed/malformed counters,
//! and per-request-kind p50/p99 latency (µs, power-of-two bucket upper
//! bounds).  [`Gateway::stats`] returns the same numbers as a typed
//! [`GatewayStats`].
//!
//! ## Example
//!
//! ```no_run
//! use naps_gateway::{Gateway, GatewayClient, GatewayConfig};
//! use naps_serve::MonitorEngine;
//! use naps_tensor::Tensor;
//! use std::sync::Arc;
//!
//! # fn demo(engine: Arc<MonitorEngine>) -> Result<(), Box<dyn std::error::Error>> {
//! let gateway = Gateway::bind(engine, "127.0.0.1:0", GatewayConfig::default())?;
//! let mut client = GatewayClient::connect(gateway.local_addr())?;
//! let report = client.check(&Tensor::from_vec(vec![2], vec![0.5, -0.5]))?;
//! println!("verdict: {:?} at epoch {}", report.report.verdict, report.epoch);
//! let stats = gateway.shutdown(); // answers everything accepted first
//! assert_eq!(stats.accepted, stats.answered);
//! # Ok(())
//! # }
//! ```

mod client;
mod metrics;
mod proto;
mod server;

pub use client::{ClientError, GatewayClient};
pub use metrics::{GatewayStats, KindSnapshot};
pub use proto::{
    decode_request, decode_response, encode_hello, encode_request, encode_response, read_frame,
    read_hello, write_frame, Rejection, Request, RequestKind, Response, WireError,
    DEFAULT_MAX_FRAME, MAGIC, WIRE_VERSION,
};
pub use server::{Gateway, GatewayConfig};
