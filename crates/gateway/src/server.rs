//! The gateway server: accept loop, per-connection reader threads, the
//! shedding/drain state machine, and the plaintext metrics listener.
//!
//! ## Invariants
//!
//! * **No client-reachable panic.**  Reader threads decode with the
//!   total codec in [`crate::proto`]; engine errors arrive as typed
//!   [`SubmitError`] values; responses are written through a guard whose
//!   `Drop` answers even when the engine discards a request.  A
//!   malformed frame is logged, counted, and drops *its own* connection
//!   — nothing else.
//! * **Every accepted request is answered.**  "Accepted" means a frame
//!   decoded into a [`proto::Request`]; from that instant a
//!   [`ResponseGuard`] exists whose destructor writes a typed
//!   `WorkerLost` rejection if no verdict (or other rejection) was
//!   written first.  Connection teardown and gateway shutdown both wait
//!   for in-flight guards to resolve before closing the socket.
//! * **Readers never block on the engine.**  Submission goes through
//!   [`MonitorEngine::try_submit_layered_with`]; a full queue yields an
//!   immediate typed `Saturated` response (load shedding) instead of a
//!   blocked socket.

use crate::metrics::{GatewayStats, Metrics};
use crate::proto::{
    self, Rejection, Request, RequestKind, Response, WireError, DEFAULT_MAX_FRAME, WIRE_VERSION,
};
use naps_serve::{LayeredEpochReport, MonitorEngine, SubmitError};
use naps_sync::atomic::{AtomicBool, Ordering};
use naps_sync::thread::{self, JoinHandle};
use naps_sync::{Arc, Condvar, Mutex};
use naps_tensor::Tensor;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tunables for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Largest accepted frame payload; a bigger length prefix is
    /// rejected before allocation and drops the connection.
    pub max_frame_len: u32,
    /// Write timeout on client sockets, so one dead client cannot wedge
    /// a worker callback forever.
    pub write_timeout: Option<Duration>,
    /// How long a fresh connection may take to complete the 6-byte
    /// handshake before being dropped.
    pub handshake_timeout: Option<Duration>,
    /// Whether to bind the plaintext metrics listener (same IP as the
    /// gateway, ephemeral port — see [`Gateway::metrics_addr`]).
    pub metrics: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_frame_len: DEFAULT_MAX_FRAME,
            write_timeout: Some(Duration::from_secs(5)),
            handshake_timeout: Some(Duration::from_secs(5)),
            metrics: true,
        }
    }
}

/// Connection registry: the live sockets (for the shutdown sweep) and
/// reader-thread handles (joined at shutdown so no thread leaks).
struct Registry {
    next_id: u64,
    /// A clone of each live connection's socket, so shutdown can
    /// `shutdown(Read)` it and unblock the reader.
    streams: HashMap<u64, TcpStream>,
    handles: Vec<JoinHandle<()>>,
    /// Set under this lock at shutdown; registration checks it so no
    /// connection can slip past the sweep and block forever.
    closed: bool,
}

struct Inner {
    engine: Arc<MonitorEngine>,
    cfg: GatewayConfig,
    metrics: Metrics,
    shutting_down: AtomicBool,
    registry: Mutex<Registry>,
}

/// Per-connection shared state: the serialized writer half and the
/// in-flight request count the teardown path drains.
struct Conn {
    inner: Arc<Inner>,
    writer: Mutex<TcpStream>,
    in_flight: Mutex<usize>,
    idle: Condvar,
}

/// The answer-exactly-once guard for one accepted request.
///
/// Construction increments the connection's in-flight count;
/// [`ResponseGuard::respond`] writes the response; `Drop` writes a
/// typed [`Rejection::WorkerLost`] if nothing was written (the engine
/// dropped the request — e.g. its last worker died with the request
/// queued), then decrements the count.  Whichever thread ends up
/// holding the guard — reader, engine worker, or the engine's unwind
/// path — the client hears back and the drain can finish.
struct ResponseGuard {
    conn: Arc<Conn>,
    id: u64,
    kind: RequestKind,
    started: Instant,
    done: bool,
}

impl ResponseGuard {
    fn new(conn: Arc<Conn>, id: u64, kind: RequestKind) -> Self {
        *conn.in_flight.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        ResponseGuard {
            conn,
            id,
            kind,
            started: Instant::now(),
            done: false,
        }
    }

    /// Writes `resp` and marks the request answered.
    fn respond(mut self, resp: &Response) {
        self.write(resp);
        self.done = true;
    }

    fn write(&self, resp: &Response) {
        let metrics = &self.conn.inner.metrics;
        // Encoding a verdict only fails on count overflow (≥ 2^32
        // classes); degrade to a typed internal error.  The fixed-shape
        // `Internal` rejection always encodes, but if that ever changed
        // the response would be *counted as lost* — never an empty frame
        // on the wire, never a panic.
        let encoded = proto::encode_response(self.id, resp)
            .or_else(|_| proto::encode_response(self.id, &Response::Rejected(Rejection::Internal)));
        match encoded {
            Ok(bytes) => {
                let mut writer = self.conn.writer.lock().unwrap_or_else(|e| e.into_inner());
                if proto::write_frame(&mut *writer, &bytes).is_err() {
                    // The client vanished mid-request; the response is
                    // lost but accounted for, and the reader will notice
                    // the dead socket.
                    // ordering: relaxed — independent stat counter
                    metrics.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                // ordering: relaxed — independent stat counter
                metrics.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // ordering: relaxed — monotone counter; the drain barrier is the
        // in_flight mutex + condvar, not this metric.
        metrics.answered.fetch_add(1, Ordering::Relaxed);
        metrics
            .kind(self.kind)
            .latency
            .record(self.started.elapsed());
    }
}

impl Drop for ResponseGuard {
    fn drop(&mut self) {
        if !self.done {
            // The engine dropped the request without answering — the
            // wire contract still holds: a typed error, not silence.
            self.write(&Response::Rejected(Rejection::WorkerLost));
        }
        let mut n = self
            .conn
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        self.conn.idle.notify_all();
    }
}

/// A running gateway: the accept thread, one reader thread per
/// connection, and (optionally) the metrics listener.
///
/// Dropping a `Gateway` performs the same graceful shutdown as
/// [`Gateway::shutdown`] — every accepted request is answered, every
/// thread joined — just without returning the final stats.
pub struct Gateway {
    inner: Arc<Inner>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the gateway on `addr` (use port 0 for an ephemeral port)
    /// and starts serving `engine`.  The engine stays owned by the
    /// caller: shutting the gateway down does **not** shut the engine
    /// down.
    pub fn bind(
        engine: Arc<MonitorEngine>,
        addr: impl ToSocketAddrs,
        cfg: GatewayConfig,
    ) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = if cfg.metrics {
            let bind_ip = SocketAddr::new(addr.ip(), 0);
            Some(TcpListener::bind(bind_ip)?)
        } else {
            None
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let inner = Arc::new(Inner {
            engine,
            cfg,
            metrics: Metrics::new(),
            shutting_down: AtomicBool::new(false),
            registry: Mutex::new(Registry {
                next_id: 0,
                streams: HashMap::new(),
                handles: Vec::new(),
                closed: false,
            }),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("naps-gw-accept".into())
                .spawn(move || accept_loop(&inner, &listener))?
        };
        let metrics_thread = match metrics_listener {
            Some(listener) => {
                let inner = Arc::clone(&inner);
                Some(
                    thread::Builder::new()
                        .name("naps-gw-metrics".into())
                        .spawn(move || metrics_loop(&inner, &listener))?,
                )
            }
            None => None,
        };
        Ok(Gateway {
            inner,
            addr,
            metrics_addr,
            accept: Some(accept),
            metrics_thread,
        })
    }

    /// The address the gateway is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listener's address (connect, read to EOF, get the
    /// plaintext page), if metrics are enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A point-in-time snapshot of the gateway's counters — the typed
    /// form of the metrics page.
    pub fn stats(&self) -> GatewayStats {
        self.inner.metrics.snapshot(self.inner.engine.queue_depth())
    }

    /// Graceful drain: stop accepting connections and frames, answer
    /// every already-accepted request (verdict or typed error), join
    /// every thread, and return the final counters.
    pub fn shutdown(mut self) -> GatewayStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        // Close the registry (no new connections can register) and
        // shut the read half of every live socket: readers unblock,
        // stop accepting frames, and drain their in-flight requests.
        {
            let mut reg = self
                .inner
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            reg.closed = true;
            for stream in reg.streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Wake the accept loop with a throwaway connection and join it.
        if let Some(handle) = self.accept.take() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
        // Join the reader threads (each drains its in-flight requests
        // before exiting — this is the answer-everything barrier).
        let handles = {
            let mut reg = self
                .inner
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut reg.handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Finally the metrics listener.
        if let Some(handle) = self.metrics_thread.take() {
            if let Some(addr) = self.metrics_addr {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    // The shutdown wake-up (or a late client): refuse.
                    drop(stream);
                    break;
                }
                spawn_connection(inner, stream, peer);
            }
            Err(e) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (e.g. fd exhaustion): note it
                // and keep serving; never take the listener down.
                eprintln!("naps-gateway: accept error: {e}");
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn spawn_connection(inner: &Arc<Inner>, stream: TcpStream, peer: SocketAddr) {
    // A clone for the shutdown sweep; if the socket can't be cloned it
    // is already unusable.
    let sweep = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("naps-gateway: {peer}: clone failed: {e}");
            return;
        }
    };
    let mut reg = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
    if reg.closed {
        return; // raced with shutdown: refuse, the sweep already ran
    }
    let id = reg.next_id;
    reg.next_id += 1;
    reg.streams.insert(id, sweep);
    // Reap finished reader threads so a long-lived gateway's handle
    // list stays proportional to *live* connections.
    let mut finished = Vec::new();
    let mut live = Vec::new();
    for h in reg.handles.drain(..) {
        if h.is_finished() {
            finished.push(h);
        } else {
            live.push(h);
        }
    }
    reg.handles = live;
    let spawned = thread::Builder::new()
        .name(format!("naps-gw-conn-{id}"))
        .spawn({
            let inner = Arc::clone(inner);
            move || {
                handle_connection(&inner, stream, id, peer);
                let mut reg = inner.registry.lock().unwrap_or_else(|e| e.into_inner());
                reg.streams.remove(&id);
                drop(reg);
                inner
                    .metrics
                    .connections_current
                    // ordering: relaxed — gauge; readers tolerate staleness
                    .fetch_sub(1, Ordering::Relaxed);
            }
        });
    match spawned {
        Ok(handle) => {
            let open = inner
                .metrics
                .connections_current
                // ordering: relaxed — gauge; readers tolerate staleness
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            inner
                .metrics
                .connections_peak
                // ordering: relaxed — high-water gauge; fetch_max keeps
                // racing accepts from regressing it (checked by the
                // naps-sim stat_max model)
                .fetch_max(open, Ordering::Relaxed);
            inner
                .metrics
                .connections_total
                // ordering: relaxed — monotone stat counter
                .fetch_add(1, Ordering::Relaxed);
            reg.handles.push(handle);
        }
        Err(e) => {
            reg.streams.remove(&id);
            eprintln!("naps-gateway: {peer}: spawn failed: {e}");
        }
    }
    drop(reg);
    for h in finished {
        let _ = h.join();
    }
}

/// Runs one connection: handshake, then read → decode → submit until
/// the client goes away (or sends garbage), then drain and close.
fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream, id: u64, peer: SocketAddr) {
    // Handshake under a read deadline so an idle prober can't pin the
    // thread; cleared once the peer has proven it speaks the protocol.
    let _ = stream.set_read_timeout(inner.cfg.handshake_timeout);
    let _ = stream.set_nodelay(true);
    match proto::read_hello(&mut stream) {
        Ok(version) if version == WIRE_VERSION => {}
        Ok(version) => {
            // ordering: relaxed — stat counter on the error path
            inner.metrics.malformed.fetch_add(1, Ordering::Relaxed);
            eprintln!("naps-gateway: conn {id} ({peer}): unsupported protocol v{version}");
            // Tell the peer which version we speak, then hang up.
            let _ = stream.write_all(&proto::encode_hello(WIRE_VERSION));
            return;
        }
        Err(e) => {
            if e.is_malformed() {
                // ordering: relaxed — stat counter on the error path
                inner.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                eprintln!("naps-gateway: conn {id} ({peer}): bad handshake: {e}");
            }
            return;
        }
    }
    if stream
        .write_all(&proto::encode_hello(WIRE_VERSION))
        .is_err()
    {
        return;
    }
    let _ = stream.set_read_timeout(None);
    let _ = stream.set_write_timeout(inner.cfg.write_timeout);

    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("naps-gateway: conn {id} ({peer}): clone failed: {e}");
            return;
        }
    };
    let conn = Arc::new(Conn {
        inner: Arc::clone(inner),
        writer: Mutex::new(writer),
        in_flight: Mutex::new(0),
        idle: Condvar::new(),
    });

    loop {
        let payload = match proto::read_frame(&mut stream, inner.cfg.max_frame_len) {
            Ok(p) => p,
            Err(WireError::Closed) => break, // clean EOF (or shutdown sweep)
            Err(e) => {
                if e.is_malformed() {
                    // ordering: relaxed — stat counter on the error path
                    inner.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    eprintln!("naps-gateway: conn {id} ({peer}): dropping: {e}");
                }
                break;
            }
        };
        let req = match proto::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // ordering: relaxed — stat counter on the error path
                inner.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                eprintln!("naps-gateway: conn {id} ({peer}): dropping: {e}");
                break;
            }
        };
        serve_request(inner, &conn, req);
        if inner.shutting_down.load(Ordering::SeqCst) {
            break; // stop reading; anything already accepted drains below
        }
    }

    // Drain: every accepted request resolves its guard (verdict, typed
    // rejection, or the guard's own WorkerLost fallback), so this always
    // terminates.  The timeout only bounds each wait, not the drain.
    let mut in_flight = conn.in_flight.lock().unwrap_or_else(|e| e.into_inner());
    while *in_flight > 0 {
        let (guard, _timed_out) = conn
            .idle
            .wait_timeout(in_flight, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner());
        in_flight = guard;
    }
    drop(in_flight);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Accepts one decoded request: accounts it, submits it without
/// blocking, and guarantees a response via the [`ResponseGuard`].
fn serve_request(inner: &Arc<Inner>, conn: &Arc<Conn>, req: Request) {
    let Request {
        id,
        kind,
        query,
        input,
    } = req;
    // ordering: relaxed — monotone stat counters; the answer-everything
    // guarantee rides on the ResponseGuard, not on these.
    inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
    inner
        .metrics
        .kind(kind)
        .count
        // ordering: relaxed — monotone stat counter
        .fetch_add(1, Ordering::Relaxed);
    let guard = ResponseGuard::new(Arc::clone(conn), id, kind);
    if inner.shutting_down.load(Ordering::SeqCst) {
        guard.respond(&Response::Rejected(Rejection::ShuttingDown));
        return;
    }
    let tensor = Tensor::from_vec(vec![input.len()], input);
    // The guard travels to whichever side ends up answering: into the
    // worker callback on success, back to this thread on a typed
    // submission error.  The slot makes the hand-off explicit — and if
    // the engine drops the callback unexecuted (worker death), the
    // guard's destructor still answers.
    let slot = Arc::new(Mutex::new(Some(guard)));
    let callback_slot = Arc::clone(&slot);
    let result = inner
        .engine
        .try_submit_layered_with(tensor, query, move |report| {
            if let Some(guard) = callback_slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                guard.respond(&wire_response(kind, report));
            }
        });
    if let Err(err) = result {
        if let Some(guard) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            if matches!(err, SubmitError::Saturated) {
                // ordering: relaxed — monotone stat counter
                inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
            }
            guard.respond(&Response::Rejected(rejection_for(&err)));
        }
    }
}

/// Projects a layered verdict onto the response shape the request asked
/// for: the single-layer kinds get the primary-layer projection, the
/// layered kinds the full report.
fn wire_response(kind: RequestKind, report: LayeredEpochReport) -> Response {
    match kind {
        RequestKind::Check | RequestKind::CheckGraded => Response::Single(report.into_single()),
        RequestKind::CheckLayered | RequestKind::CheckLayeredGraded => Response::Layered(report),
    }
}

fn rejection_for(err: &SubmitError) -> Rejection {
    match err {
        SubmitError::Saturated => Rejection::Saturated,
        SubmitError::ShutDown => Rejection::ShuttingDown,
        SubmitError::WorkerLost => Rejection::WorkerLost,
        SubmitError::WidthMismatch { expected, actual } => Rejection::WidthMismatch {
            expected: u32::try_from(*expected).unwrap_or(u32::MAX),
            actual: u32::try_from(*actual).unwrap_or(u32::MAX),
        },
        // `SubmitError` is non-exhaustive: future variants must degrade
        // to a typed response, never to an unwinding `match`.
        _ => Rejection::Internal,
    }
}

fn metrics_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let page = inner.metrics.render(inner.engine.queue_depth());
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = stream.write_all(page.as_bytes());
                let _ = stream.shutdown(Shutdown::Both);
            }
            Err(_) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
