//! Loopback soak suite for the gateway (ISSUE 7 acceptance): concurrent
//! clients lose zero requests and wire verdicts are bit-identical to
//! in-process checking; a full queue sheds with a typed response; a
//! malformed frame or mid-request disconnect drops one connection and
//! nothing else; graceful shutdown answers everything accepted.

use naps_core::{GradedQuery, MonitorBuilder};
use naps_gateway::{
    ClientError, Gateway, GatewayClient, GatewayConfig, Rejection, RequestKind, Response, WireError,
};
use naps_nn::{Dense, Layer, Relu, Sequential};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLASSES: usize = 4;

/// A trained engine over the shared serving fixture plus its probe
/// workload.
fn fixture_engine(workers: usize, queue_capacity: usize) -> (Arc<MonitorEngine>, Vec<Tensor>) {
    let (monitor, net, probes) = naps_bench::serving_fixture(CLASSES, 24, 11);
    let engine = MonitorEngine::new(
        &monitor,
        &net,
        EngineConfig {
            workers,
            max_batch: 8,
            queue_capacity,
        },
    )
    .expect("MLP replicates");
    (Arc::new(engine), probes)
}

fn query() -> GradedQuery {
    GradedQuery::new(3, 2)
}

/// Polls `f` for up to two seconds — gateway counters are updated by
/// other threads, so assertions on them poll instead of racing.
fn eventually<F: FnMut() -> bool>(mut f: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if f() {
            return;
        }
        // naps-lint: allow(test_flakiness, "5ms pacing inside a 2s deadline poll; the deadline, not the sleep, is the synchronization point")
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn concurrent_soak_loses_nothing_and_matches_in_process_verdicts() {
    let (engine, probes) = fixture_engine(2, 256);
    // In-process reference verdicts, one per (probe, kind).
    let reference: Vec<_> = probes
        .iter()
        .map(|x| {
            (
                engine.check(x).expect("engine up"),
                engine.check_graded(x, query()).expect("engine up"),
                engine.check_layered(x).expect("engine up"),
                engine.check_layered_graded(x, query()).expect("engine up"),
            )
        })
        .collect();

    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");
    let addr = gateway.local_addr();

    const THREADS: usize = 4;
    const PASSES: usize = 3;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let probes = probes.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = GatewayClient::connect(addr).expect("connect");
                let mut served = 0usize;
                for pass in 0..PASSES {
                    for (i, x) in probes.iter().enumerate() {
                        // Stagger kinds across threads and passes so all
                        // four wire paths run concurrently.
                        match (t + pass + i) % 4 {
                            0 => assert_eq!(
                                client.check(x).expect("served"),
                                reference[i].0,
                                "thread {t} probe {i}: check diverged"
                            ),
                            1 => assert_eq!(
                                client.check_graded(x, query()).expect("served"),
                                reference[i].1,
                                "thread {t} probe {i}: check_graded diverged"
                            ),
                            2 => assert_eq!(
                                client.check_layered(x).expect("served"),
                                reference[i].2,
                                "thread {t} probe {i}: check_layered diverged"
                            ),
                            _ => assert_eq!(
                                client.check_layered_graded(x, query()).expect("served"),
                                reference[i].3,
                                "thread {t} probe {i}: check_layered_graded diverged"
                            ),
                        }
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();
    let served: usize = handles
        .into_iter()
        .map(|h| h.join().expect("no client panic"))
        .sum();
    assert_eq!(
        served,
        THREADS * PASSES * probes.len(),
        "every request answered"
    );

    let stats = gateway.shutdown();
    assert_eq!(stats.accepted, served as u64);
    assert_eq!(stats.answered, stats.accepted, "zero lost requests");
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.write_errors, 0);
}

/// An identity layer whose forward pass sleeps — pins the single worker
/// so the bounded queue observably fills.
#[derive(Debug)]
struct SlowLayer {
    features: usize,
}

impl Layer for SlowLayer {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        // naps-lint: allow(test_flakiness, "simulates a slow model so the bounded queue observably fills; a workload, not a synchronization point")
        std::thread::sleep(Duration::from_millis(30));
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn output_len(&self) -> usize {
        self.features
    }

    fn label(&self) -> String {
        "slow".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn slow_model() -> Sequential {
    let mut rng = StdRng::seed_from_u64(5);
    Sequential::new(vec![
        Box::new(SlowLayer { features: 2 }),
        Box::new(Dense::new(2, 8, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(8, CLASSES, &mut rng)),
    ])
}

#[test]
fn full_queue_sheds_with_typed_saturated_response() {
    // One worker judging one request at a time, 30 ms each, queue of 2:
    // a burst of 16 pipelined requests must shed most of itself.
    let mut net = slow_model();
    let xs: Vec<Tensor> = (0..12)
        .map(|i| Tensor::from_vec(vec![2], vec![(i as f32).cos(), (i as f32).sin()]))
        .collect();
    let ys: Vec<usize> = (0..12).map(|i| i % CLASSES).collect();
    let monitor = MonitorBuilder::new(2, 1).build(&mut net, &xs, &ys, CLASSES);
    let frozen = FrozenMonitor::shard_by_class(&monitor, 1);
    let engine = Arc::new(
        MonitorEngine::with_replicas(
            frozen,
            vec![slow_model()],
            EngineConfig {
                workers: 1,
                max_batch: 1,
                queue_capacity: 2,
            },
        )
        .expect("engine"),
    );
    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");

    let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");
    const BURST: usize = 16;
    let mut ids = Vec::new();
    for i in 0..BURST {
        ids.push(
            client
                .send(RequestKind::Check, None, &xs[i % xs.len()])
                .expect("send"),
        );
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut seen = Vec::new();
    for _ in 0..BURST {
        let (id, resp) = client.recv().expect("every request is answered");
        seen.push(id);
        match resp {
            Response::Single(_) => ok += 1,
            Response::Rejected(Rejection::Saturated) => shed += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(
        seen, ids,
        "all {BURST} correlation ids answered exactly once"
    );
    assert!(ok >= 1, "the worker served at least the head of the burst");
    assert!(
        shed >= 1,
        "the full queue shed with a typed response, got {ok} ok"
    );

    let stats = gateway.shutdown();
    assert_eq!(stats.accepted, BURST as u64);
    assert_eq!(stats.answered, BURST as u64);
    assert_eq!(stats.shed, shed as u64);
}

#[test]
fn malformed_bytes_drop_one_connection_and_nothing_else() {
    let (engine, probes) = fixture_engine(1, 64);
    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");
    let addr = gateway.local_addr();

    // (a) Garbage handshake.
    let mut bad = TcpStream::connect(addr).expect("connect");
    bad.write_all(b"GET / HTTP/1.1\r\n").expect("write");
    let mut buf = Vec::new();
    let _ = bad.read_to_end(&mut buf); // server hangs up
    drop(bad);

    // (b) Valid handshake, then a hostile length prefix.
    let mut bad = TcpStream::connect(addr).expect("connect");
    bad.write_all(b"NAPS\x01\x00").expect("hello");
    let mut hello = [0u8; 6];
    bad.read_exact(&mut hello).expect("server hello");
    bad.write_all(&u32::MAX.to_le_bytes()).expect("prefix");
    let mut buf = Vec::new();
    let _ = bad.read_to_end(&mut buf);
    drop(bad);

    // (c) Valid frame, unknown request kind.
    let mut bad = TcpStream::connect(addr).expect("connect");
    bad.write_all(b"NAPS\x01\x00").expect("hello");
    bad.read_exact(&mut hello).expect("server hello");
    let junk = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
    bad.write_all(&(junk.len() as u32).to_le_bytes())
        .expect("prefix");
    bad.write_all(&junk).expect("payload");
    let mut buf = Vec::new();
    let _ = bad.read_to_end(&mut buf);
    drop(bad);

    eventually(
        || gateway.stats().malformed >= 3,
        "all three malformed connections counted",
    );

    // The server is fine: a healthy client round-trips, bit-identically.
    let mut client = GatewayClient::connect(addr).expect("connect after abuse");
    let want = engine.check(&probes[0]).expect("engine up");
    assert_eq!(client.check(&probes[0]).expect("served"), want);

    let stats = gateway.shutdown();
    assert_eq!(stats.answered, stats.accepted);
}

#[test]
fn mid_request_disconnect_still_accounts_the_request() {
    let (engine, probes) = fixture_engine(1, 64);
    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");
    let addr = gateway.local_addr();

    // Send a valid request, then vanish before the verdict arrives.
    {
        let mut client = GatewayClient::connect(addr).expect("connect");
        client
            .send(RequestKind::Check, None, &probes[0])
            .expect("send");
        // Dropping the client closes the socket with the verdict in flight.
    }

    // The accepted request is still answered (the write may land in a
    // dead socket, which is the client's loss, not the server's).
    eventually(
        || {
            let s = gateway.stats();
            s.accepted >= 1 && s.answered == s.accepted
        },
        "orphaned request accounted as answered",
    );

    // And the server keeps serving.
    let mut client = GatewayClient::connect(addr).expect("connect");
    let want = engine.check(&probes[1]).expect("engine up");
    assert_eq!(client.check(&probes[1]).expect("served"), want);
    gateway.shutdown();
}

#[test]
fn graceful_shutdown_answers_everything_accepted() {
    let (engine, probes) = fixture_engine(2, 256);
    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");
    let addr = gateway.local_addr();

    let mut client = GatewayClient::connect(addr).expect("connect");
    const PIPELINED: usize = 64;
    for i in 0..PIPELINED {
        client
            .send(RequestKind::Check, None, &probes[i % probes.len()])
            .expect("send");
    }

    // Drain concurrently with the client still reading.
    let reader = std::thread::spawn(move || {
        let mut responses = 0usize;
        loop {
            match client.recv() {
                Ok((_, Response::Single(_))) => responses += 1,
                Ok((_, Response::Rejected(r))) => {
                    panic!("pipelined request rejected during drain: {r}")
                }
                Ok((_, other)) => panic!("unexpected response: {other:?}"),
                Err(ClientError::Wire(WireError::Closed)) => break,
                Err(ClientError::Wire(WireError::Io(_))) => break,
                Err(e) => panic!("client error during drain: {e}"),
            }
        }
        responses
    });

    let stats = gateway.shutdown();
    let responses = reader.join().expect("reader thread");
    assert_eq!(
        stats.answered, stats.accepted,
        "drain answered everything accepted"
    );
    assert_eq!(
        responses as u64, stats.accepted,
        "the client saw exactly the accepted verdicts"
    );
    // The engine outlives its gateway — still serving in-process.
    engine
        .check(&probes[0])
        .expect("engine untouched by gateway shutdown");
}

#[test]
fn metrics_endpoint_serves_the_plaintext_page() {
    let (engine, probes) = fixture_engine(1, 64);
    let gateway =
        Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default()).expect("bind");
    let mut client = GatewayClient::connect(gateway.local_addr()).expect("connect");
    for x in probes.iter().take(8) {
        client.check(x).expect("served");
        client.check_graded(x, query()).expect("served");
    }

    let metrics_addr = gateway.metrics_addr().expect("metrics enabled by default");
    let mut page = String::new();
    TcpStream::connect(metrics_addr)
        .expect("metrics connect")
        .read_to_string(&mut page)
        .expect("metrics read");
    for needle in [
        "naps_gateway_qps ",
        "naps_gateway_engine_queue_depth ",
        "naps_gateway_requests_total{kind=\"check\"} 8",
        "naps_gateway_requests_total{kind=\"check_graded\"} 8",
        "naps_gateway_latency_us{kind=\"check\",quantile=\"0.99\"}",
    ] {
        assert!(
            page.contains(needle),
            "metrics page missing {needle:?}:\n{page}"
        );
    }

    // The typed snapshot agrees.
    let stats = gateway.stats();
    assert_eq!(stats.accepted, 16);
    let check = stats
        .kinds
        .iter()
        .find(|k| k.kind == "check")
        .expect("kind row");
    assert_eq!(check.count, 8);
    assert!(check.p50_us.is_some() && check.p99_us.is_some());
    gateway.shutdown();
}
