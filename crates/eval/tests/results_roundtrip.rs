//! The experiment harness's result records must survive JSON round-trips:
//! EXPERIMENTS.md is reconciled against `results/*.json`, so the schema is
//! a contract.

use naps_eval::case_study::{CaseStudy, ConditionResult};
use naps_eval::fig2::{Fig2, SpectrumPoint};
use naps_eval::table1::{Table1, Table1Row};
use naps_eval::table2::{Table2, Table2Block, Table2Row};

#[test]
fn table1_roundtrips() {
    let t = Table1 {
        schema_version: 1,
        rows: vec![Table1Row {
            id: 1,
            classifier: "MNIST".into(),
            architecture: "conv(40), relu".into(),
            train_accuracy: 0.9983,
            val_accuracy: 0.924,
            train_size: 1200,
            val_size: 500,
        }],
    };
    let json = serde_json::to_string(&t).expect("serialize");
    let back: Table1 = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.rows.len(), 1);
    assert_eq!(back.schema_version, 1);
    assert_eq!(back.rows[0].classifier, "MNIST");
    assert!((back.rows[0].train_accuracy - 0.9983).abs() < 1e-12);
}

#[test]
fn table2_roundtrips() {
    let t = Table2 {
        schema_version: 1,
        blocks: vec![Table2Block {
            id: 2,
            misclassification_rate: 0.1028,
            rows: vec![Table2Row {
                gamma: 3,
                out_of_pattern_rate: 0.1168,
                warning_precision: 0.88,
                total: 214,
                out_of_pattern: 25,
            }],
        }],
    };
    let json = serde_json::to_string(&t).expect("serialize");
    let back: Table2 = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.blocks[0].rows[0].gamma, 3);
    assert_eq!(back.blocks[0].rows[0].total, 214);
}

#[test]
fn fig2_roundtrips() {
    let f = Fig2 {
        schema_version: 1,
        spectrum: vec![SpectrumPoint {
            gamma: 4,
            out_of_pattern_rate: 0.016,
            warning_precision: 0.875,
            false_positive_rate: 0.0022,
            class0_zone_patterns: 1.5e6,
        }],
        gamma_for_silence: Some(4),
        gamma_for_precision: Some(1),
    };
    let json = serde_json::to_string(&f).expect("serialize");
    let back: Fig2 = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.gamma_for_silence, Some(4));
    assert_eq!(back.spectrum.len(), 1);
}

#[test]
fn case_study_roundtrips() {
    let c = CaseStudy {
        schema_version: 1,
        conditions: vec![ConditionResult {
            condition: "heavy rain".into(),
            accuracy: 0.815,
            warning_rate: 0.025,
        }],
    };
    let json = serde_json::to_string(&c).expect("serialize");
    let back: CaseStudy = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.conditions[0].condition, "heavy rain");
}

#[test]
fn config_profiles_scale_consistently() {
    use naps_eval::RunConfig;
    let fast = RunConfig::default();
    let full = RunConfig {
        full: true,
        ..RunConfig::default()
    };
    assert!(full.mnist_train_per_class() >= fast.mnist_train_per_class());
    assert!(full.mnist_val_per_class() >= fast.mnist_val_per_class());
    assert!(full.gtsrb_train_per_class() >= fast.gtsrb_train_per_class());
    assert!(full.frontcar_scenarios() >= fast.frontcar_scenarios());
}
