//! Table II: runtime monitoring results per γ.
//!
//! Network 1 (MNIST-like): all 10 classes monitored on the full 40-neuron
//! layer, γ ∈ {0, 1, 2}.  Network 2 (GTSRB-like): only the stop-sign class
//! (c = 14), 25 % of the 84 neurons selected by gradient saliency,
//! γ ∈ {0, 1, 2, 3} — exactly the paper's configuration.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::{train_gtsrb, train_mnist, TrainedClassifier};
use naps_core::{BddZone, EvalMode, GammaSweep, MonitorBuilder, NeuronSelection};
use naps_data::signs::STOP_SIGN_CLASS;
use naps_nn::{saliency_from_output_weights, Dense};
use serde::{Deserialize, Serialize};

/// One γ row of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// The Hamming budget.
    pub gamma: u32,
    /// `#out-of-pattern / #total` on the validation set.
    pub out_of_pattern_rate: f64,
    /// `#out-of-pattern ∧ misclassified / #out-of-pattern`.
    pub warning_precision: f64,
    /// Raw counts, for EXPERIMENTS.md bookkeeping.
    pub total: usize,
    /// Raw out-of-pattern count.
    pub out_of_pattern: usize,
}

/// One network's block of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Block {
    /// Network id (1 or 2).
    pub id: usize,
    /// Misclassification rate on the (monitored portion of the)
    /// validation set.
    pub misclassification_rate: f64,
    /// Per-γ rows.
    pub rows: Vec<Table2Row>,
}

/// The full Table II result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Blocks for network 1 and network 2.
    pub blocks: Vec<Table2Block>,
}

fn sweep_block(
    id: usize,
    trained: &mut TrainedClassifier,
    builder: MonitorBuilder,
    num_classes: usize,
    max_gamma: u32,
    mode: EvalMode,
    eval: (&[naps_tensor::Tensor], &[usize]),
) -> Table2Block {
    let mut monitor = builder.build::<BddZone>(
        &mut trained.model,
        &trained.train.samples,
        &trained.train.labels,
        num_classes,
    );
    let sweep = GammaSweep::up_to(max_gamma).with_mode(mode).run(
        &mut monitor,
        &mut trained.model,
        eval.0,
        eval.1,
    );
    let misclassification_rate = sweep
        .first()
        .map(|g| g.stats.misclassification_rate())
        .unwrap_or(0.0);
    Table2Block {
        id,
        misclassification_rate,
        rows: sweep
            .iter()
            .map(|g| Table2Row {
                gamma: g.gamma,
                out_of_pattern_rate: g.stats.out_of_pattern_rate(),
                warning_precision: g.stats.warning_precision(),
                total: g.stats.total,
                out_of_pattern: g.stats.out_of_pattern,
            })
            .collect(),
    }
}

/// Runs both Table II blocks and prints/persists them.
pub fn run(cfg: &RunConfig) -> Table2 {
    println!("== Table II: runtime neuron activation monitoring ==");

    println!("[network 1: monitor all 10 classes, full fc(40) ReLU layer]");
    let mut mnist = train_mnist(cfg);
    let (mnist_val_x, mnist_val_y) = (mnist.val.samples.clone(), mnist.val.labels.clone());
    let block1 = sweep_block(
        1,
        &mut mnist,
        MonitorBuilder::new(naps_nn::MNIST_MONITOR_LAYER, 0),
        10,
        2,
        EvalMode::ByPrediction,
        (&mnist_val_x, &mnist_val_y),
    );

    println!("[network 2: monitor stop sign (c=14), 25% of fc(84) by gradient saliency]");
    let mut gtsrb = train_gtsrb(cfg);
    // The monitored layer feeds the linear output layer directly, so the
    // paper's special case applies: saliency = |output weight|.
    let out_layer = gtsrb.model.len() - 1;
    let dense = gtsrb
        .model
        .layer(out_layer)
        .as_any()
        .downcast_ref::<Dense>()
        .expect("output layer is dense");
    let saliency = saliency_from_output_weights(dense, STOP_SIGN_CLASS);
    let selection = NeuronSelection::top_fraction_by_saliency(&saliency, 0.25);
    // Class-conditioned evaluation needs a large stop-sign pool (the paper
    // evaluates its single-class monitor on all stop-sign validation
    // images); enrich the validation split with extra hard stop signs,
    // a quarter of them corrupted (occlusion / fog / noise) to model the
    // difficult real-world captures GTSRB contains.
    use naps_data::corrupt::{apply, Corruption};
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(cfg.seed.wrapping_add(40));
    let extra = if cfg.full { 400 } else { 200 };
    let mut val_x = gtsrb.val.samples.clone();
    let mut val_y = gtsrb.val.labels.clone();
    for i in 0..extra {
        let img = naps_data::signs::render(
            STOP_SIGN_CLASS,
            naps_data::signs::SignStyle::hard(),
            &mut rng,
        );
        let img = match i % 8 {
            0 => apply(&img, 3, 32, Corruption::Occlusion(12), &mut rng),
            1 => apply(&img, 3, 32, Corruption::Fog(0.5), &mut rng),
            _ => img,
        };
        val_x.push(img);
        val_y.push(STOP_SIGN_CLASS);
    }
    let block2 = sweep_block(
        2,
        &mut gtsrb,
        MonitorBuilder::new(naps_nn::GTSRB_MONITOR_LAYER, 0)
            .with_selection(selection)
            .with_classes(vec![STOP_SIGN_CLASS]),
        naps_data::signs::NUM_CLASSES,
        3,
        EvalMode::ByLabel,
        (&val_x, &val_y),
    );

    let table = Table2 {
        schema_version: 1,
        blocks: vec![block1, block2],
    };
    print_table(&table);
    write_json(&cfg.out_dir, "table2", &table);
    table
}

fn print_table(table: &Table2) {
    rule(72);
    println!(
        "{:<3} {:>10} {:>3} {:>24} {:>24}",
        "ID", "miscls", "γ", "#oop/#total", "#oop-miscls/#oop"
    );
    rule(72);
    for b in &table.blocks {
        for (i, r) in b.rows.iter().enumerate() {
            let mis = if i == 0 {
                pct(b.misclassification_rate)
            } else {
                String::new()
            };
            println!(
                "{:<3} {:>10} {:>3} {:>24} {:>24}",
                if i == 0 {
                    b.id.to_string()
                } else {
                    String::new()
                },
                mis,
                r.gamma,
                format!(
                    "{} ({}/{})",
                    pct(r.out_of_pattern_rate),
                    r.out_of_pattern,
                    r.total
                ),
                pct(r.warning_precision),
            );
        }
        rule(72);
    }
    println!("(paper net 1: 7.66/2.01/0.6% oop with 10.7/21.9/31.7% precision)");
    println!("(paper net 2: 32.9/15.0/7.1/4.6% oop with 10.1/19.4/41.2/54.5% precision)");
}
