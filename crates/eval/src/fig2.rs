//! Figure 2: the coarseness-of-abstraction spectrum.
//!
//! The paper's Figure 2 is conceptual: an abstraction `α1` barely larger
//! than the visited states generalises nothing (everything in operation is
//! "not visited"), while an over-coarse `α3` declares everything visited.
//! This experiment makes the spectrum quantitative: sweep γ from 0 until
//! the out-of-pattern rate hits (near) zero and report, at every step, the
//! out-of-pattern rate (specificity of the abstraction) and the warning
//! precision (usefulness of a warning), plus the γ that each selection
//! policy of Section III would choose.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::train_mnist;
use naps_core::{choose_gamma, BddZone, GammaPolicy, GammaSweep, MonitorBuilder};
use serde::{Deserialize, Serialize};

/// One point of the abstraction spectrum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpectrumPoint {
    /// Hamming budget.
    pub gamma: u32,
    /// Out-of-pattern rate on the validation set.
    pub out_of_pattern_rate: f64,
    /// Warning precision.
    pub warning_precision: f64,
    /// False-positive rate (correct-but-warned / correct).
    pub false_positive_rate: f64,
    /// Total patterns contained in class 0's zone (growth indicator).
    pub class0_zone_patterns: f64,
}

/// The Figure 2 result: the spectrum plus chosen γ values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Spectrum points for γ = 0.. until saturation.
    pub spectrum: Vec<SpectrumPoint>,
    /// γ chosen by the "monitor mostly silent" policy (≤ 2 % warnings).
    pub gamma_for_silence: Option<u32>,
    /// γ chosen by the "warnings mean errors" policy (≥ 30 % precision).
    pub gamma_for_precision: Option<u32>,
}

/// Runs the γ spectrum sweep on the MNIST-like network.
pub fn run(cfg: &RunConfig) -> Fig2 {
    println!("== Figure 2: finding the just-right abstraction ==");
    println!("[training network 1: MNIST-like]");
    let mut mnist = train_mnist(cfg);
    let mut monitor = MonitorBuilder::new(mnist.monitor_layer, 0).build::<BddZone>(
        &mut mnist.model,
        &mnist.train.samples,
        &mnist.train.labels,
        10,
    );
    let max_gamma = if cfg.full { 10 } else { 6 };
    // Manual sweep so the zone size can be captured at each γ (GammaSweep
    // would only expose the final, fully dilated zone).
    let mut sweep = Vec::new();
    let mut spectrum = Vec::new();
    for gamma in 0..=max_gamma {
        let step = GammaSweep::up_to(gamma).run(
            &mut monitor,
            &mut mnist.model,
            &mnist.val.samples,
            &mnist.val.labels,
        );
        let g = *step.last().expect("one step per gamma");
        spectrum.push(SpectrumPoint {
            gamma: g.gamma,
            out_of_pattern_rate: g.stats.out_of_pattern_rate(),
            warning_precision: g.stats.warning_precision(),
            false_positive_rate: g.stats.false_positive_rate(),
            class0_zone_patterns: monitor.zone(0).map(|z| z.pattern_count()).unwrap_or(0.0),
        });
        sweep.push(g);
    }
    let gamma_for_silence = choose_gamma(&sweep, GammaPolicy::MaxOutOfPatternRate(0.02));
    let gamma_for_precision = choose_gamma(&sweep, GammaPolicy::MinWarningPrecision(0.30));

    rule(64);
    println!(
        "{:>3} {:>16} {:>16} {:>16}",
        "γ", "out-of-pattern", "precision", "false-positive"
    );
    rule(64);
    for p in &spectrum {
        println!(
            "{:>3} {:>16} {:>16} {:>16}",
            p.gamma,
            pct(p.out_of_pattern_rate),
            pct(p.warning_precision),
            pct(p.false_positive_rate)
        );
    }
    rule(64);
    println!(
        "γ for near-silence (≤2% warnings): {:?}; γ for ≥30% precision: {:?}",
        gamma_for_silence, gamma_for_precision
    );
    println!("(small γ = α1-like, no generalization; large γ = α3-like, over-generalization)");

    let fig = Fig2 {
        schema_version: 1,
        spectrum,
        gamma_for_silence,
        gamma_for_precision,
    };
    write_json(&cfg.out_dir, "fig2", &fig);
    fig
}
