//! Table I: network architectures and train/validation accuracies.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::{train_gtsrb, train_mnist};
use serde::{Deserialize, Serialize};

/// One Table I row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Network id (1 = MNIST-like, 2 = GTSRB-like).
    pub id: usize,
    /// Classifier name.
    pub classifier: String,
    /// Architecture summary (Table I notation).
    pub architecture: String,
    /// Training accuracy.
    pub train_accuracy: f64,
    /// Validation accuracy.
    pub val_accuracy: f64,
    /// Training set size.
    pub train_size: usize,
    /// Validation set size.
    pub val_size: usize,
}

/// The full Table I result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Both rows.
    pub rows: Vec<Table1Row>,
}

/// Trains both networks and prints/persists Table I.
pub fn run(cfg: &RunConfig) -> Table1 {
    println!("== Table I: architectures and accuracies ==");
    let mut rows = Vec::new();

    println!("[training network 1: MNIST-like]");
    let m = train_mnist(cfg);
    rows.push(Table1Row {
        id: 1,
        classifier: "MNIST".to_owned(),
        architecture: m.model.summary(),
        train_accuracy: m.train_accuracy,
        val_accuracy: m.val_accuracy,
        train_size: m.train.len(),
        val_size: m.val.len(),
    });

    println!("[training network 2: GTSRB-like]");
    let g = train_gtsrb(cfg);
    rows.push(Table1Row {
        id: 2,
        classifier: "GTSRB".to_owned(),
        architecture: g.model.summary(),
        train_accuracy: g.train_accuracy,
        val_accuracy: g.val_accuracy,
        train_size: g.train.len(),
        val_size: g.val.len(),
    });

    rule(78);
    println!(
        "{:<3} {:<10} {:>9} {:>9}  architecture",
        "ID", "Classifier", "train", "val"
    );
    rule(78);
    for r in &rows {
        println!(
            "{:<3} {:<10} {:>9} {:>9}  {}",
            r.id,
            r.classifier,
            pct(r.train_accuracy),
            pct(r.val_accuracy),
            r.architecture
        );
    }
    rule(78);
    println!("(paper: net 1 = 99.34%/98.81%, net 2 = 99.98%/96.73%)");

    let table = Table1 {
        schema_version: 1,
        rows,
    };
    write_json(&cfg.out_dir, "table1", &table);
    table
}
