//! Section III case study / Figure 3: a monitored neural front-car
//! selection unit for highway piloting.
//!
//! The pipeline is trained under nominal conditions, its monitor built
//! with Algorithm 1, and then driven through scenario distributions the
//! training never contained.  The experiment reports, per condition, the
//! selection accuracy and the out-of-pattern warning rate — demonstrating
//! the paper's claim that frequent unseen patterns indicate distribution
//! shift to the development team.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use naps_frontcar::{Conditions, FrontCarPipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Results for one scenario distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConditionResult {
    /// Human-readable condition name.
    pub condition: String,
    /// Selection accuracy.
    pub accuracy: f64,
    /// Fraction of decisions flagged out-of-pattern.
    pub warning_rate: f64,
}

/// The full case-study result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudy {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Per-condition outcomes; index 0 is nominal.
    pub conditions: Vec<ConditionResult>,
}

/// Trains the pipeline and evaluates it across scenario distributions.
pub fn run(cfg: &RunConfig) -> CaseStudy {
    println!("== Case study: monitored front-car selection (Figure 3) ==");
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let pipe_cfg = PipelineConfig {
        train_scenarios: cfg.frontcar_scenarios(),
        ..PipelineConfig::default()
    };
    println!(
        "[training selection network on {} nominal scenarios]",
        pipe_cfg.train_scenarios
    );
    let mut pipe = FrontCarPipeline::train(pipe_cfg, &mut rng);

    let n_eval = if cfg.full { 2000 } else { 600 };
    let suites: [(&str, Conditions); 4] = [
        ("nominal", Conditions::nominal()),
        ("heavy rain", Conditions::heavy_rain()),
        ("dense cut-ins", Conditions::dense_cutins()),
        ("degraded sensor", Conditions::degraded_sensor()),
    ];
    let mut conditions = Vec::new();
    for (name, c) in suites {
        let accuracy = pipe.accuracy(n_eval, c, &mut rng);
        let warning_rate = pipe.warning_rate(n_eval, c, &mut rng);
        conditions.push(ConditionResult {
            condition: name.to_owned(),
            accuracy,
            warning_rate,
        });
    }

    rule(56);
    println!(
        "{:<18} {:>12} {:>16}",
        "condition", "accuracy", "warning rate"
    );
    rule(56);
    for c in &conditions {
        println!(
            "{:<18} {:>12} {:>16}",
            c.condition,
            pct(c.accuracy),
            pct(c.warning_rate)
        );
    }
    rule(56);
    println!("(expected shape: shifted conditions warn more than nominal)");

    let result = CaseStudy {
        schema_version: 1,
        conditions,
    };
    write_json(&cfg.out_dir, "case_study", &result);
    result
}
