//! Graded verdict triage: distance histograms, nearest-class
//! attribution, and the bounded-DP speedup.
//!
//! The binary monitor says *that* a decision is unsupported; the graded
//! monitor says *how far* outside the comfort zone it fell and *whose*
//! zone is nearest.  This experiment replays three streams through the
//! serving engine's graded path — clean validation data, corrupted
//! variants of it, and genuine novelties — and measures what the graded
//! signal buys:
//!
//! * **distance histograms** per stream: clean inputs pile up at
//!   distance 0, corrupted ones land a few flips out, novelties fall
//!   beyond the budget (the [`naps_core::Triage::Novelty`] bucket);
//! * **misclassification attribution**: on corrupted inputs the network
//!   gets wrong, how often the nearest comfort zone names the *true*
//!   class — versus the always-predicted-class baseline, which by
//!   construction scores zero on misclassified inputs;
//! * **bounded-vs-unbounded speedup**: the budget-bounded early-exit DP
//!   against the full-array sweep, on the same frozen zones and query
//!   mix, with exact agreement (truncation at the budget) verified
//!   query-for-query;
//! * **drift hookup**: per-class detectors armed on the engine, stable
//!   on the clean stream, alarming (epoch-stamped) on the corrupted one.
//!
//! The `graded` binary exits non-zero when the bounded path disagrees
//! with the unbounded path, when verdicts are not bit-identical to
//! sequential grading, or when attribution fails to beat the baseline —
//! so CI can gate on it.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use naps_core::{
    BddZone, DriftConfig, DriftStatus, GradedQuery, Monitor, MonitorBuilder, Triage, Verdict,
};
use naps_data::corrupt::{apply, Corruption};
use naps_data::novelty::{render_gray, Novelty};
use naps_data::{digits, Dataset};
use naps_nn::{mlp, Adam, TrainConfig, Trainer};
use naps_serve::{EngineConfig, FrozenMonitor, MonitorEngine};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Distance histogram of one served stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamHistogram {
    /// Stream label (`clean`, `corrupted`, `novelty`).
    pub stream: String,
    /// `counts[d]` = verdicts at zone distance `d`, for `d` in
    /// `0..=budget`.
    pub counts: Vec<usize>,
    /// Verdicts beyond the budget from the predicted class's zone
    /// (`distance_to_zone = None` on a monitored class).
    pub beyond_budget: usize,
    /// Verdicts triaged [`Triage::Novelty`] (beyond the budget from
    /// *every* monitored zone).
    pub novelties: usize,
    /// Verdicts triaged [`Triage::MisclassificationCandidate`].
    pub misclassification_candidates: usize,
    /// Out-of-pattern rate of the stream (monitored verdicts).
    pub out_of_pattern_rate: f64,
    /// Stream length.
    pub samples: usize,
}

/// The attribution experiment on the corrupted stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attribution {
    /// Corrupted inputs the network misclassified.
    pub misclassified: usize,
    /// ... of which the nearest comfort zone (smallest bounded zone
    /// distance over all monitored classes, predicted included, ties to
    /// the lower class) names the true label.
    pub nearest_zone_hits: usize,
    /// `nearest_zone_hits / misclassified`.
    pub nearest_zone_accuracy: f64,
    /// The always-predicted-class baseline on the same inputs — zero by
    /// construction (they are misclassified), recorded for the JSON
    /// consumer.
    pub baseline_accuracy: f64,
    /// Attribution accuracy over the **whole** corrupted stream when the
    /// rule is "predicted class if in-pattern, else nearest zone".
    pub full_stream_accuracy: f64,
    /// Network accuracy on the whole corrupted stream (the baseline for
    /// `full_stream_accuracy`).
    pub full_stream_baseline: f64,
}

/// Bounded-vs-unbounded DP timing on the frozen zones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundedSpeedup {
    /// The budget the bounded DP ran with (≤ γ + 2).
    pub budget: u32,
    /// Distance queries timed (patterns × classes).
    pub queries: usize,
    /// Wall time of the unbounded full-sweep path, microseconds.
    pub unbounded_us: f64,
    /// Wall time of the bounded early-exit path, microseconds.
    pub bounded_us: f64,
    /// `unbounded_us / bounded_us`.
    pub speedup: f64,
    /// Every bounded answer equalled the unbounded one truncated at the
    /// budget (the correctness gate).
    pub agrees_with_unbounded: bool,
}

/// One class's drift posture after the corrupted stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftSummary {
    /// Class index.
    pub class: usize,
    /// `Warmup` / `Stable` / `Drifting` as a string (the core enum is
    /// not serializable by design).
    pub status: String,
    /// Epoch the evidence was gathered under.
    pub epoch: u64,
    /// Windowed out-of-pattern rate.
    pub windowed_rate: f64,
    /// Verdicts folded in.
    pub observed: usize,
}

/// The full graded-triage result (`results/graded.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradedTriage {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// The monitor's γ.
    pub gamma: u32,
    /// The graded query budget (γ + 1, within the ≤ γ + 2 bound).
    pub budget: u32,
    /// Per-stream distance histograms.
    pub histograms: Vec<StreamHistogram>,
    /// Nearest-class attribution on the corrupted stream.
    pub attribution: Attribution,
    /// Bounded-vs-unbounded DP timing.
    pub speedup: BoundedSpeedup,
    /// Every served graded verdict was bit-identical to sequential
    /// `check_graded_batch` (the serving correctness gate).
    pub served_matches_sequential: bool,
    /// Per-class drift after the corrupted stream (armed on the engine).
    pub drift: Vec<DriftSummary>,
    /// Classes drifting after the corrupted stream.
    pub drifting_classes: usize,
    /// Classes drifting after the clean stream (should be 0).
    pub drifting_on_clean: usize,
}

/// The deployment-time corruption mix (cycled per sample).
const SHIFTS: [Corruption; 3] = [
    Corruption::GaussianNoise(0.35),
    Corruption::Fog(0.45),
    Corruption::Brightness(0.6),
];

fn corrupted_stream(val: &Dataset, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    val.samples
        .iter()
        .enumerate()
        .map(|(i, s)| apply(s, 1, 28, SHIFTS[i % SHIFTS.len()], &mut rng))
        .collect()
}

fn novelty_stream(n: usize, seed: u64) -> Vec<Tensor> {
    let kinds = [
        Novelty::Scooter,
        Novelty::Asterisk,
        Novelty::Spiral,
        Novelty::Static,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| render_gray(kinds[i % kinds.len()], 28, &mut rng))
        .collect()
}

fn histogram(stream: &str, graded: &[naps_core::GradedReport], budget: u32) -> StreamHistogram {
    let mut counts = vec![0usize; budget as usize + 1];
    let mut beyond = 0usize;
    for g in graded {
        match g.distance_to_zone {
            Some(d) => counts[d as usize] += 1,
            None if g.report.verdict != Verdict::Unmonitored => beyond += 1,
            None => {}
        }
    }
    let monitored = graded
        .iter()
        .filter(|g| g.report.verdict != Verdict::Unmonitored)
        .count();
    let oop = graded
        .iter()
        .filter(|g| g.report.verdict == Verdict::OutOfPattern)
        .count();
    StreamHistogram {
        stream: stream.to_string(),
        counts,
        beyond_budget: beyond,
        novelties: graded
            .iter()
            .filter(|g| g.triage == Triage::Novelty)
            .count(),
        misclassification_candidates: graded
            .iter()
            .filter(|g| g.triage == Triage::MisclassificationCandidate)
            .count(),
        out_of_pattern_rate: if monitored == 0 {
            0.0
        } else {
            oop as f64 / monitored as f64
        },
        samples: graded.len(),
    }
}

/// The class whose zone is nearest under the graded report's budget:
/// the predicted class at its bounded distance competes with the ranked
/// `nearest` list; ties go to the lower class index (matching the
/// ranking order).  `None` when nothing is within the budget.
fn nearest_class(g: &naps_core::GradedReport) -> Option<usize> {
    let mut best: Option<(u32, usize)> = g.distance_to_zone.map(|d| (d, g.report.predicted));
    for n in &g.nearest {
        let cand = (n.distance, n.class);
        if best.is_none_or(|b| cand < b) {
            best = Some(cand);
        }
    }
    best.map(|(_, c)| c)
}

/// Runs the graded-triage experiment and writes `results/graded.json`.
pub fn run(cfg: &RunConfig) -> GradedTriage {
    println!("== Graded verdicts: distance triage, attribution, bounded DP ==");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let train = digits::generate(
        cfg.mnist_train_per_class(),
        digits::DigitStyle::clean(),
        &mut rng,
    );
    let val = digits::generate(
        cfg.mnist_val_per_class(),
        digits::DigitStyle::hard(),
        &mut rng,
    );
    let mut model = mlp(&[784, 96, 48, 10], &mut rng);
    Trainer::new(TrainConfig {
        epochs: cfg.mnist_epochs(),
        batch_size: 32,
        verbose: false,
    })
    .fit(
        &mut model,
        &train.samples,
        &train.labels,
        &mut Adam::new(1.5e-3),
        &mut rng,
    );
    let gamma = 2;
    let monitor_layer = 3; // second ReLU (width 48)
    let mut monitor: Monitor<BddZone> = MonitorBuilder::new(monitor_layer, gamma).build(
        &mut model,
        &train.samples,
        &train.labels,
        10,
    );
    monitor.compact();
    // γ + 1: one flip beyond the comfort zone is still attributable;
    // anything further is novelty.  (The acceptance bound is ≤ γ + 2;
    // the bounded DP's pruning advantage grows as the budget shrinks.)
    let budget = gamma + 1;
    let query = GradedQuery::new(budget, 3);

    let corrupted = corrupted_stream(&val, cfg.seed.wrapping_add(31));
    let novel = novelty_stream(if cfg.full { 120 } else { 48 }, cfg.seed.wrapping_add(62));

    let workers = 2;
    let engine = MonitorEngine::new(
        &monitor,
        &model,
        EngineConfig {
            workers,
            max_batch: 16,
            queue_capacity: val.samples.len().max(64) * 2,
        },
    )
    .expect("MLP replicates");
    engine.enable_drift(DriftConfig {
        baseline_rate: 0.02,
        alarm_rate: 0.35,
        window: 20,
        ewma_alpha: 0.1,
        patience: 10,
    });

    // ---- Serve the three streams graded; verify against sequential ----
    let mut served_matches_sequential = true;
    let mut histograms = Vec::new();
    let mut check_stream = |label: &str, inputs: &[Tensor], model: &mut naps_nn::Sequential| {
        let sequential = monitor.check_graded_batch(model, inputs, query);
        let served = engine
            .check_graded_batch(inputs, query)
            .expect("engine is up");
        let ok = served.len() == sequential.len()
            && served
                .iter()
                .zip(&sequential)
                .all(|(s, q)| s.graded.as_ref() == Some(q));
        if !ok {
            served_matches_sequential = false;
            eprintln!("FAIL: served graded verdicts diverge from sequential on {label}");
        }
        histograms.push(histogram(label, &sequential, budget));
        sequential
    };
    let _clean_graded = check_stream("clean", &val.samples, &mut model);
    let drifting_on_clean = engine
        .drift_status()
        .expect("armed")
        .iter()
        .filter(|c| c.status == DriftStatus::Drifting)
        .count();
    let corrupt_graded = check_stream("corrupted", &corrupted, &mut model);
    let drift_after: Vec<DriftSummary> = engine
        .drift_status()
        .expect("armed")
        .iter()
        .map(|c| DriftSummary {
            class: c.class,
            status: format!("{:?}", c.status),
            epoch: c.epoch,
            windowed_rate: c.windowed_rate,
            observed: c.observed,
        })
        .collect();
    let drifting_classes = drift_after
        .iter()
        .filter(|c| c.status == "Drifting")
        .count();
    let _novel_graded = check_stream("novelty", &novel, &mut model);

    // ---- Misclassification attribution on the corrupted stream ----
    let mut misclassified = 0usize;
    let mut nearest_hits = 0usize;
    let mut full_hits = 0usize;
    let mut baseline_hits = 0usize;
    for (g, &label) in corrupt_graded.iter().zip(&val.labels) {
        let predicted = g.report.predicted;
        if predicted == label {
            baseline_hits += 1;
        }
        // Full-stream rule: trust in-pattern decisions, re-attribute the
        // rest to the nearest zone (fall back to predicted when nothing
        // is within budget).
        let attributed = if g.report.verdict == Verdict::InPattern {
            predicted
        } else {
            nearest_class(g).unwrap_or(predicted)
        };
        if attributed == label {
            full_hits += 1;
        }
        if predicted != label {
            misclassified += 1;
            if nearest_class(g) == Some(label) {
                nearest_hits += 1;
            }
        }
    }
    let attribution = Attribution {
        misclassified,
        nearest_zone_hits: nearest_hits,
        nearest_zone_accuracy: if misclassified == 0 {
            0.0
        } else {
            nearest_hits as f64 / misclassified as f64
        },
        baseline_accuracy: 0.0,
        full_stream_accuracy: full_hits as f64 / corrupt_graded.len() as f64,
        full_stream_baseline: baseline_hits as f64 / corrupt_graded.len() as f64,
    };

    // ---- Bounded vs unbounded DP on the frozen zones ----
    let frozen = FrozenMonitor::freeze(&monitor);
    let patterns: Vec<naps_core::Pattern> = monitor
        .observe_batch(&mut model, &val.samples)
        .into_iter()
        .chain(monitor.observe_batch(&mut model, &corrupted))
        .chain(monitor.observe_batch(&mut model, &novel))
        .map(|(_, p)| p)
        .collect();
    let classes: Vec<usize> = (0..frozen.num_classes())
        .filter(|&c| frozen.zone(c).is_some())
        .collect();
    let t0 = Instant::now();
    let mut unbounded: Vec<Option<u32>> = Vec::with_capacity(patterns.len() * classes.len());
    for p in &patterns {
        for &c in &classes {
            unbounded.push(frozen.zone(c).expect("monitored").distance_to_zone(p));
        }
    }
    let unbounded_us = t0.elapsed().as_secs_f64() * 1e6;
    let t1 = Instant::now();
    let mut bounded: Vec<Option<u32>> = Vec::with_capacity(patterns.len() * classes.len());
    for p in &patterns {
        for &c in &classes {
            bounded.push(
                frozen
                    .zone(c)
                    .expect("monitored")
                    .distance_to_zone_within(p, budget),
            );
        }
    }
    let bounded_us = t1.elapsed().as_secs_f64() * 1e6;
    let agrees = unbounded
        .iter()
        .zip(&bounded)
        .all(|(u, b)| *b == u.filter(|&d| d <= budget));
    let speedup = BoundedSpeedup {
        budget,
        queries: patterns.len() * classes.len(),
        unbounded_us,
        bounded_us,
        speedup: unbounded_us / bounded_us.max(f64::EPSILON),
        agrees_with_unbounded: agrees,
    };

    engine.shutdown();
    let result = GradedTriage {
        schema_version: 1,
        gamma,
        budget,
        histograms,
        attribution,
        speedup,
        served_matches_sequential,
        drift: drift_after,
        drifting_classes,
        drifting_on_clean,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "graded", &result);
    result
}

fn print_table(result: &GradedTriage) {
    rule(76);
    println!(
        "{:<12} {:>8} {:<35}  {:>8} {:>8} {:>8}",
        "stream", "oop", "distance histogram 0..budget,beyond", "novel", "miscls", "n"
    );
    rule(76);
    for h in &result.histograms {
        println!(
            "{:<12} {:>8} {:?}+{}  {:>8} {:>8} {:>8}",
            h.stream,
            pct(h.out_of_pattern_rate),
            h.counts,
            h.beyond_budget,
            h.novelties,
            h.misclassification_candidates,
            h.samples
        );
    }
    rule(76);
    let a = &result.attribution;
    println!(
        "attribution: {}/{} misclassified corrupted inputs recovered by nearest \
         zone ({}; baseline {}), full-stream {} vs network {}",
        a.nearest_zone_hits,
        a.misclassified,
        pct(a.nearest_zone_accuracy),
        pct(a.baseline_accuracy),
        pct(a.full_stream_accuracy),
        pct(a.full_stream_baseline),
    );
    let s = &result.speedup;
    println!(
        "bounded DP: {:.2}x vs unbounded over {} queries at budget {} (agree: {}); \
         served==sequential: {}",
        s.speedup, s.queries, s.budget, s.agrees_with_unbounded, result.served_matches_sequential
    );
    println!(
        "drift: {} classes drifting after corrupted stream ({} on clean)",
        result.drifting_classes, result.drifting_on_clean
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use naps_core::{GradedReport, MonitorReport, NearestZone};

    fn graded(
        predicted: usize,
        verdict: Verdict,
        distance_to_zone: Option<u32>,
        nearest: Vec<NearestZone>,
        triage: Triage,
    ) -> GradedReport {
        GradedReport {
            report: MonitorReport {
                predicted,
                verdict,
                distance_to_seeds: None,
            },
            distance_to_zone,
            nearest,
            query: GradedQuery::new(4, 3),
            triage,
        }
    }

    #[test]
    fn nearest_class_prefers_smallest_distance_then_class() {
        let g = graded(
            2,
            Verdict::OutOfPattern,
            Some(3),
            vec![
                NearestZone {
                    class: 5,
                    distance: 1,
                },
                NearestZone {
                    class: 7,
                    distance: 1,
                },
            ],
            Triage::OutOfPattern,
        );
        assert_eq!(nearest_class(&g), Some(5));
        // The predicted class wins ties at equal distance when lower.
        let g = graded(
            0,
            Verdict::OutOfPattern,
            Some(1),
            vec![NearestZone {
                class: 4,
                distance: 1,
            }],
            Triage::OutOfPattern,
        );
        assert_eq!(nearest_class(&g), Some(0));
        // Nothing within budget: no attribution.
        let g = graded(0, Verdict::OutOfPattern, None, vec![], Triage::Novelty);
        assert_eq!(nearest_class(&g), None);
    }

    #[test]
    fn histogram_buckets_distances_and_triage() {
        let gs = vec![
            graded(0, Verdict::InPattern, Some(0), vec![], Triage::InPattern),
            graded(
                0,
                Verdict::OutOfPattern,
                Some(2),
                vec![],
                Triage::OutOfPattern,
            ),
            graded(0, Verdict::OutOfPattern, None, vec![], Triage::Novelty),
            graded(
                0,
                Verdict::OutOfPattern,
                Some(1),
                vec![NearestZone {
                    class: 1,
                    distance: 0,
                }],
                Triage::MisclassificationCandidate,
            ),
        ];
        let h = histogram("t", &gs, 4);
        assert_eq!(h.counts, vec![1, 1, 1, 0, 0]);
        assert_eq!(h.beyond_budget, 1);
        assert_eq!(h.novelties, 1);
        assert_eq!(h.misclassification_candidates, 1);
        assert_eq!(h.samples, 4);
        assert!((h.out_of_pattern_rate - 0.75).abs() < 1e-12);
    }
}
