//! Drift-detection experiment: how quickly does the out-of-pattern rate
//! surface a distribution shift?
//!
//! The paper's introduction positions the monitor as a shift indicator
//! for the development team ("may indicate that a neural network deployed
//! on an autonomous vehicle needs to be updated") without quantifying it.
//! This experiment does: the network-1 monitor's verdicts feed a
//! [`naps_core::DriftDetector`] calibrated on the clean validation
//! stream, and a deployment stream switches to corrupted inputs of
//! increasing severity.  Reported per severity: the shifted
//! out-of-pattern rate, whether the detector fired, and the **detection
//! latency** (monitored observations between the switch and the alarm).
//! A pure-clean control row checks the false-alarm behaviour.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::train_mnist;
use naps_core::ActivationMonitor;
use naps_core::{
    BddZone, DriftConfig, DriftDetector, DriftStatus, Monitor, MonitorBuilder, Verdict,
};
use naps_data::corrupt::{shift_dataset, Corruption};
use naps_nn::Sequential;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One deployment condition's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftRow {
    /// Condition label (`clean control`, `noise σ=0.2`, …).
    pub condition: String,
    /// Out-of-pattern rate of the condition's stream.
    pub out_of_pattern_rate: f64,
    /// Whether the detector reached [`DriftStatus::Drifting`].
    pub detected: bool,
    /// Monitored observations from the switch until the alarm
    /// (`None` when no alarm fired).
    pub detection_latency: Option<usize>,
}

/// The full drift experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Drift {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Baseline (clean validation) out-of-pattern rate the detector was
    /// calibrated with.
    pub baseline_rate: f64,
    /// Alarm threshold derived from the baseline.
    pub alarm_rate: f64,
    /// Per-condition rows.
    pub rows: Vec<DriftRow>,
}

fn verdict_stream(
    monitor: &Monitor<BddZone>,
    net: &mut Sequential,
    samples: &[naps_tensor::Tensor],
    shuffle_seed: u64,
) -> Vec<Verdict> {
    let mut verdicts: Vec<Verdict> = monitor
        .check_batch(net, samples)
        .into_iter()
        .map(|r| r.verdict)
        .collect();
    // Datasets are generated class by class; deployment streams are
    // i.i.d., so shuffle.
    verdicts.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
    verdicts
}

fn oop_rate(verdicts: &[Verdict]) -> f64 {
    let monitored = verdicts
        .iter()
        .filter(|v| **v != Verdict::Unmonitored)
        .count();
    if monitored == 0 {
        return 0.0;
    }
    verdicts
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / monitored as f64
}

/// Runs one deployment: `warm` clean epochs, then shifted epochs, and
/// reports the detection latency relative to the switch.
fn deploy(config: &DriftConfig, clean: &[Verdict], shifted: &[Verdict]) -> (bool, Option<usize>) {
    let mut det = DriftDetector::new(config.clone());
    for _ in 0..3 {
        for v in clean {
            det.observe(*v);
        }
    }
    let mut latency = None;
    let mut step = 0usize;
    for _ in 0..3 {
        for v in shifted {
            det.observe(*v);
            step += 1;
            if det.status() == DriftStatus::Drifting && latency.is_none() {
                latency = Some(step);
            }
        }
    }
    (latency.is_some(), latency)
}

/// Runs the drift experiment and prints/persists the table.
pub fn run(cfg: &RunConfig) -> Drift {
    println!("== Drift detection: out-of-pattern rate as a shift indicator ==");
    let mut trained = train_mnist(cfg);
    let monitor = MonitorBuilder::new(trained.monitor_layer, 2).build::<BddZone>(
        &mut trained.model,
        &trained.train.samples.clone(),
        &trained.train.labels.clone(),
        10,
    );

    println!("[calibrating the detector on the clean validation stream]");
    let clean = verdict_stream(
        &monitor,
        &mut trained.model,
        &trained.val.samples.clone(),
        cfg.seed,
    );
    let baseline = oop_rate(&clean);
    // Alarm when the rate roughly doubles (with a 6-point floor so a
    // near-zero baseline does not alarm on single stragglers).
    let config = DriftConfig {
        baseline_rate: baseline.min(0.94),
        alarm_rate: (1.5 * baseline).max(baseline + 0.06).min(0.95),
        window: (clean.len() / 2).clamp(20, 200),
        ewma_alpha: 0.05,
        patience: 20,
    };

    println!("[deploying under increasingly corrupted streams]");
    let severities = [0.1f32, 0.25, 0.5, 0.8];
    let mut rows = Vec::new();

    // Control: a clean continuation must not alarm.
    let (detected, latency) = deploy(&config, &clean, &clean);
    rows.push(DriftRow {
        condition: "clean control".to_string(),
        out_of_pattern_rate: baseline,
        detected,
        detection_latency: latency,
    });

    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(77));
    for (i, &sigma) in severities.iter().enumerate() {
        let noisy = shift_dataset(
            &trained.val,
            1,
            28,
            Corruption::GaussianNoise(sigma),
            &mut rng,
        );
        let shifted = verdict_stream(
            &monitor,
            &mut trained.model,
            &noisy.samples,
            cfg.seed.wrapping_add(i as u64 + 1),
        );
        let (detected, latency) = deploy(&config, &clean, &shifted);
        rows.push(DriftRow {
            condition: format!("noise σ={sigma}"),
            out_of_pattern_rate: oop_rate(&shifted),
            detected,
            detection_latency: latency,
        });
    }

    let result = Drift {
        schema_version: 1,
        baseline_rate: baseline,
        alarm_rate: config.alarm_rate,
        rows,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "drift", &result);
    result
}

fn print_table(result: &Drift) {
    rule(72);
    println!(
        "{:<16} {:>14} {:>10} {:>18}",
        "condition", "oop rate", "detected", "latency (obs)"
    );
    rule(72);
    for r in &result.rows {
        println!(
            "{:<16} {:>14} {:>10} {:>18}",
            r.condition,
            pct(r.out_of_pattern_rate),
            if r.detected { "yes" } else { "no" },
            r.detection_latency
                .map_or_else(|| "—".to_string(), |l| l.to_string()),
        );
    }
    rule(72);
    println!(
        "(baseline {} → alarm threshold {}; expected shape: harsher corruption \
         ⇒ higher rate ⇒ shorter latency, clean control silent)",
        pct(result.baseline_rate),
        pct(result.alarm_rate)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oop_rate_ignores_unmonitored() {
        let vs = [
            Verdict::OutOfPattern,
            Verdict::InPattern,
            Verdict::Unmonitored,
            Verdict::OutOfPattern,
        ];
        assert!((oop_rate(&vs) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(oop_rate(&[]), 0.0);
        assert_eq!(oop_rate(&[Verdict::Unmonitored]), 0.0);
    }

    #[test]
    fn deploy_detects_a_hot_stream_and_stays_quiet_on_a_cold_one() {
        let config = DriftConfig {
            baseline_rate: 0.02,
            alarm_rate: 0.3,
            window: 40,
            ewma_alpha: 0.1,
            patience: 10,
        };
        let clean: Vec<Verdict> = (0..100)
            .map(|i| {
                if i % 50 == 0 {
                    Verdict::OutOfPattern
                } else {
                    Verdict::InPattern
                }
            })
            .collect();
        let hot: Vec<Verdict> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    Verdict::OutOfPattern
                } else {
                    Verdict::InPattern
                }
            })
            .collect();
        let (detected, latency) = deploy(&config, &clean, &hot);
        assert!(detected);
        assert!(latency.expect("latency") > 0);
        let (quiet, none) = deploy(&config, &clean, &clean);
        assert!(!quiet);
        assert_eq!(none, None);
    }

    #[test]
    fn hotter_streams_are_detected_faster() {
        let config = DriftConfig {
            baseline_rate: 0.02,
            alarm_rate: 0.25,
            window: 40,
            ewma_alpha: 0.1,
            patience: 10,
        };
        let clean = vec![Verdict::InPattern; 100];
        let stream = |period: usize| -> Vec<Verdict> {
            (0..200)
                .map(|i| {
                    if i % period == 0 {
                        Verdict::OutOfPattern
                    } else {
                        Verdict::InPattern
                    }
                })
                .collect()
        };
        let (_, warm) = deploy(&config, &clean, &stream(3)); // ~33%
        let (_, hot) = deploy(&config, &clean, &stream(1)); // 100%
        let (warm, hot) = (warm.expect("warm"), hot.expect("hot"));
        assert!(hot <= warm, "hotter stream slower: {hot} > {warm}");
    }
}
