//! Experiment harness regenerating every table and figure of the paper.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table I — architectures and train/validation accuracies |
//! | `table2` | Table II — out-of-pattern rates and warning precision per γ |
//! | `fig2` | Figure 2 — the abstraction-coarseness spectrum (γ sweep to saturation) |
//! | `case_study` | Section III case study / Figure 3 — monitored front-car selection |
//! | `refinement` | Section V item (2) ablation — binary monitor vs box/DBM numeric refinements |
//! | `drift` | Section I claim — distribution shift surfacing as out-of-pattern warnings, with detection latency |
//! | `selection` | Section II ablation — gradient saliency vs variance vs random neuron selection |
//! | `throughput` | ROADMAP north star — parallel `MonitorEngine` QPS vs sequential checking, with verdict-equivalence verification |
//! | `online_adaptation` | Section IV deployment loop — drift stream, operator-confirmed enrichment, hot snapshot swap, persistence (`results/online.json`; exits non-zero when the out-of-pattern rate fails to drop) |
//! | `graded` | graded distance verdicts — per-stream distance histograms, nearest-class misclassification attribution, bounded-vs-unbounded DP speedup, per-class drift (`results/graded.json`; exits non-zero when the bounded DP disagrees, serving diverges from sequential grading, or attribution fails to beat the baseline) |
//! | `layered` | multi-layer monitoring — Any/All/Majority detection-vs-FPR vs the single-layer baseline, layered engine ≡ sequential equivalence, marginal cost per extra monitored layer (`results/layered.json`; exits non-zero when serving diverges, Any detects less than the baseline, or extra layers add forward passes) |
//! | `compiled` | compiled zone evaluators — compiled-vs-walked speedup per query kind plus fast-path census (`results/compiled.json`; exits non-zero when any compiled answer diverges from the walked oracle or the batched membership speedup falls below 2x) |
//! | `gateway` | the TCP wire boundary — loopback soak with concurrent clients, saturation-burst shedding, malformed-byte abuse (`results/gateway.json`; exits non-zero on any lost request, wire/in-process verdict divergence, missing typed shed response, or a server that stops serving) |
//! | `forward` | the allocation-free prepared forward pass — pre-packed weights + reused scratch vs the allocating baseline, with a counting global allocator (`results/forward.json`; exits non-zero when the prepared path allocates in steady state, the single-row speedup falls below 1.3x, or any row diverges) |
//!
//! Each binary prints the paper-format rows and writes machine-readable
//! JSON under `results/`.  Run with `--full` for paper-scale workloads
//! (slower); the default "fast" profile keeps the same shape with smaller
//! sample counts.  All runs are seeded and deterministic.
//!
//! The networks are trained on the procedural datasets of [`naps_data`]
//! (see DESIGN.md §4 for the MNIST/GTSRB substitution argument), so
//! absolute numbers differ from the paper while the qualitative shape —
//! out-of-pattern rate falling and warning precision rising with γ —
//! is the reproduction target recorded in EXPERIMENTS.md.

pub mod case_study;
pub mod compiled;
pub mod config;
pub mod drift;
pub mod fig2;
pub mod forward;
pub mod gateway;
pub mod graded;
pub mod layered;
pub mod online;
pub mod refinement;
pub mod report;
pub mod selection;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod trained;

pub use config::RunConfig;
