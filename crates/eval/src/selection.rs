//! Neuron-selection ablation (Section II, "neuron selection via gradient
//! analysis").
//!
//! The paper selects the monitored subset of a wide layer by gradient
//! saliency and asserts that large `|∂n_c/∂n_i|` identifies the neurons
//! that matter.  This experiment quantifies the choice on the network-2
//! (GTSRB-like) stop-sign configuration — 25 % of the 84-neuron layer,
//! γ swept 0..2 — against two alternatives:
//!
//! * **variance** — rank neurons by activation variance over the training
//!   set (data-driven, no gradients needed);
//! * **random** — a uniformly random quarter (the no-information
//!   baseline, averaged over several draws);
//! * **all** — the full 84-neuron layer (the no-selection reference;
//!   feasible here, though the paper's point is that wide layers make
//!   this impractical at BDD scale).
//!
//! Robust observed shape: *any* quarter-selection is dramatically quieter
//! than the full 84-neuron monitor at matching γ (the selection's primary
//! job is keeping the abstraction coarse enough, cf. Figure 2); which
//! informed ranking wins over random is workload-dependent and recorded
//! honestly in EXPERIMENTS.md.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::train_gtsrb;
use naps_core::{BddZone, EvalMode, GammaSweep, MonitorBuilder, NeuronSelection};
use naps_data::signs::STOP_SIGN_CLASS;
use naps_nn::{activation_moments, saliency_from_output_weights, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One (strategy, γ) row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionRow {
    /// Strategy label.
    pub strategy: String,
    /// Hamming budget.
    pub gamma: u32,
    /// Out-of-pattern rate on the stop-sign evaluation pool.
    pub out_of_pattern_rate: f64,
    /// Fraction of warnings that are misclassifications.
    pub warning_precision: f64,
}

/// The full selection-ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Selection {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Monitored fraction of the 84-neuron layer (0.25, as in the paper).
    pub fraction: f64,
    /// Per-strategy, per-γ rows.
    pub rows: Vec<SelectionRow>,
}

const MAX_GAMMA: u32 = 2;

/// Runs the selection ablation and prints/persists the table.
pub fn run(cfg: &RunConfig) -> Selection {
    println!("== Selection ablation: saliency vs variance vs random vs all ==");
    let fraction = 0.25;
    let mut trained = train_gtsrb(cfg);
    let monitor_layer = trained.monitor_layer;

    // Stop-sign evaluation pool (same enrichment as Table II).
    use naps_data::corrupt::{apply, Corruption};
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(40));
    let extra = if cfg.full { 400 } else { 200 };
    let mut val_x = trained.val.samples.clone();
    let mut val_y = trained.val.labels.clone();
    for i in 0..extra {
        let img = naps_data::signs::render(
            STOP_SIGN_CLASS,
            naps_data::signs::SignStyle::hard(),
            &mut rng,
        );
        let img = match i % 8 {
            0 => apply(&img, 3, 32, Corruption::Occlusion(12), &mut rng),
            1 => apply(&img, 3, 32, Corruption::Fog(0.5), &mut rng),
            _ => img,
        };
        val_x.push(img);
        val_y.push(STOP_SIGN_CLASS);
    }

    // Strategy 1: gradient saliency (the paper's choice; output-weight
    // special case applies because fc(84) feeds the linear output).
    let out_layer = trained.model.len() - 1;
    let dense = trained
        .model
        .layer(out_layer)
        .as_any()
        .downcast_ref::<Dense>()
        .expect("output layer is dense");
    let saliency = saliency_from_output_weights(dense, STOP_SIGN_CLASS);
    let sel_saliency = NeuronSelection::top_fraction_by_saliency(&saliency, fraction);

    // Strategy 2: activation variance over the training set.
    let train_x = trained.train.samples.clone();
    let (_, variance) = activation_moments(&mut trained.model, monitor_layer, &train_x, 64);
    let sel_variance = NeuronSelection::top_fraction_by_score(&variance, fraction);

    // Strategy 3: random quarter (single seeded draw; the JSON records
    // the seed so reruns reproduce it).
    let mut sel_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(90));
    let sel_random = NeuronSelection::random_fraction(saliency.len(), fraction, &mut sel_rng);

    // Reference: the whole layer.
    let sel_all = NeuronSelection::all(saliency.len());

    let mut rows = Vec::new();
    for (name, selection) in [
        ("saliency", sel_saliency),
        ("variance", sel_variance),
        ("random", sel_random),
        ("all (84)", sel_all),
    ] {
        println!("[strategy: {name}, {} neurons]", selection.len());
        let mut monitor = MonitorBuilder::new(monitor_layer, 0)
            .with_selection(selection)
            .with_classes(vec![STOP_SIGN_CLASS])
            .build::<BddZone>(
                &mut trained.model,
                &trained.train.samples.clone(),
                &trained.train.labels.clone(),
                naps_data::signs::NUM_CLASSES,
            );
        let sweep = GammaSweep::up_to(MAX_GAMMA)
            .with_mode(EvalMode::ByLabel)
            .run(&mut monitor, &mut trained.model, &val_x, &val_y);
        for g in &sweep {
            rows.push(SelectionRow {
                strategy: name.to_string(),
                gamma: g.gamma,
                out_of_pattern_rate: g.stats.out_of_pattern_rate(),
                warning_precision: g.stats.warning_precision(),
            });
        }
    }

    let result = Selection {
        schema_version: 1,
        fraction,
        rows,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "selection", &result);
    result
}

fn print_table(result: &Selection) {
    rule(64);
    println!(
        "{:<12} {:>3} {:>18} {:>18}",
        "strategy", "γ", "oop rate", "precision"
    );
    rule(64);
    let mut last = "";
    for r in &result.rows {
        println!(
            "{:<12} {:>3} {:>18} {:>18}",
            if r.strategy == last { "" } else { &r.strategy },
            r.gamma,
            pct(r.out_of_pattern_rate),
            pct(r.warning_precision),
        );
        last = &r.strategy;
    }
    rule(64);
    println!(
        "(paper config: 25% of fc(84) by saliency; robust shape: every quarter-\
         selection is far quieter than the full layer at matching γ — the \
         selection's main job is keeping the abstraction coarse enough)"
    );
}
