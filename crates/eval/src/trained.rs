//! Shared training pipelines: the two Table I networks on their synthetic
//! datasets.

use crate::config::RunConfig;
use naps_data::{digits, signs, Dataset};
use naps_nn::{gtsrb_net, mnist_net, Adam, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A trained classifier with its datasets and headline accuracies.
#[derive(Debug)]
pub struct TrainedClassifier {
    /// The trained network.
    pub model: Sequential,
    /// Training split.
    pub train: Dataset,
    /// Validation split (drawn from a harder rendering style).
    pub val: Dataset,
    /// Accuracy on the training split.
    pub train_accuracy: f64,
    /// Accuracy on the validation split.
    pub val_accuracy: f64,
    /// Index of the monitored layer.
    pub monitor_layer: usize,
}

/// Trains network 1 (the MNIST-like classifier of Table I).
pub fn train_mnist(cfg: &RunConfig) -> TrainedClassifier {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let train = digits::generate(
        cfg.mnist_train_per_class(),
        digits::DigitStyle::clean(),
        &mut rng,
    );
    let val = digits::generate(
        cfg.mnist_val_per_class(),
        digits::DigitStyle::hard(),
        &mut rng,
    );
    let mut model = mnist_net(&mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.mnist_epochs(),
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut model,
        &train.samples,
        &train.labels,
        &mut Adam::new(1.5e-3),
        &mut rng,
    );
    let train_accuracy = trainer.evaluate(&mut model, &train.samples, &train.labels);
    let val_accuracy = trainer.evaluate(&mut model, &val.samples, &val.labels);
    TrainedClassifier {
        model,
        train,
        val,
        train_accuracy,
        val_accuracy,
        monitor_layer: naps_nn::MNIST_MONITOR_LAYER,
    }
}

/// Trains network 2 (the GTSRB-like classifier of Table I).
pub fn train_gtsrb(cfg: &RunConfig) -> TrainedClassifier {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let train = signs::generate(
        cfg.gtsrb_train_per_class(),
        signs::SignStyle::clean(),
        &mut rng,
    );
    let val = signs::generate(
        cfg.gtsrb_val_per_class(),
        signs::SignStyle::hard(),
        &mut rng,
    );
    let mut model = gtsrb_net(&mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.gtsrb_epochs(),
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut model,
        &train.samples,
        &train.labels,
        &mut Adam::new(1.5e-3),
        &mut rng,
    );
    let train_accuracy = trainer.evaluate(&mut model, &train.samples, &train.labels);
    let val_accuracy = trainer.evaluate(&mut model, &val.samples, &val.labels);
    TrainedClassifier {
        model,
        train,
        val,
        train_accuracy,
        val_accuracy,
        monitor_layer: naps_nn::GTSRB_MONITOR_LAYER,
    }
}
