//! Result persistence and pretty-printing helpers.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Serialises `value` as pretty JSON into `dir/name.json`, creating the
/// directory if needed.  Errors are reported to stderr but do not abort
/// the experiment (results are also printed to stdout).
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Formats a ratio as a percentage with two decimals, paper style.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_two_decimals() {
        assert_eq!(pct(0.0766), "7.66%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("naps_eval_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_json(&dir, "probe", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(dir.join("probe.json")).expect("file");
        assert!(content.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
