//! Replays clean/corrupted/novelty streams through the engine's graded
//! path and writes `results/graded.json` (distance histograms,
//! nearest-class attribution, bounded-vs-unbounded DP speedup, per-class
//! drift).  Exits non-zero when the graded subsystem fails its purpose —
//! the bounded DP must agree with the unbounded sweep, served graded
//! verdicts must be bit-identical to sequential `check_graded`, and the
//! misclassification-attribution metric must beat the
//! always-predicted-class baseline — so CI can gate on it.
//! Usage: `cargo run --release -p naps-eval --bin graded [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::graded::run(&cfg);
    let mut failures = Vec::new();
    if !result.speedup.agrees_with_unbounded {
        failures.push("bounded DP disagrees with the unbounded sweep".to_string());
    }
    if !result.served_matches_sequential {
        failures.push("served graded verdicts diverge from sequential check_graded".to_string());
    }
    if result.attribution.misclassified == 0 {
        failures.push("corrupted stream produced no misclassification to attribute".to_string());
    }
    if result.attribution.nearest_zone_accuracy <= result.attribution.baseline_accuracy {
        failures.push(format!(
            "nearest-zone attribution ({:.4}) does not beat the always-predicted-class \
             baseline ({:.4})",
            result.attribution.nearest_zone_accuracy, result.attribution.baseline_accuracy
        ));
    }
    if result.speedup.speedup <= 1.0 {
        // Timing on shared CI hardware is noisy; the acceptance target
        // (> 1x at budget ≤ γ+2) is recorded in the JSON and warned on
        // here rather than hard-failing the job.
        eprintln!(
            "WARN: bounded DP speedup {:.2}x did not exceed 1x on this host",
            result.speedup.speedup
        );
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
