//! Replays the online-adaptation loop (drift stream → operator-confirmed
//! enrichment → hot snapshot swap → persistence) and writes
//! `results/online.json`.  Exits non-zero when the loop fails its
//! purpose — the out-of-pattern rate on the shifted stream must **drop**
//! after enrichment, verdicts must stay attributable across the swap,
//! and the published snapshot must persist — so CI can gate on it.
//! Usage: `cargo run --release -p naps-eval --bin online_adaptation [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::online::run(&cfg);
    let mut failures = Vec::new();
    if result.enriched_patterns == 0 {
        failures.push("no benign pattern was confirmed/enriched".to_string());
    }
    if !result.rate_dropped {
        failures.push(format!(
            "out-of-pattern rate did not drop after enrichment ({:.4} -> {:.4})",
            result.shifted_rate_before, result.shifted_rate_after
        ));
    }
    if !result.verdicts_attributable {
        failures.push("an under-swap verdict diverged from its epoch's oracle".to_string());
    }
    if !result.persistence_roundtrip_ok {
        failures.push("save/load did not round-trip the published snapshot".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
