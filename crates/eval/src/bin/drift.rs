//! Regenerates the drift-detection experiment (paper Section I claim).
//! Usage: `cargo run --release -p naps-eval --bin drift [--full] [--seed N]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::drift::run(&cfg);
}
