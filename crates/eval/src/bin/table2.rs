//! Regenerates Table II. Usage: `cargo run --release -p naps-eval --bin table2 [--full] [--seed N]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::table2::run(&cfg);
}
