//! Regenerates Table I. Usage: `cargo run --release -p naps-eval --bin table1 [--full] [--seed N]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::table1::run(&cfg);
}
