//! Regenerates the neuron-selection ablation (paper Section II).
//! Usage: `cargo run --release -p naps-eval --bin selection [--full] [--seed N]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::selection::run(&cfg);
}
