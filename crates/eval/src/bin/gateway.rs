//! Soaks the TCP gateway over loopback — concurrent clients, a
//! saturation burst, and malformed-byte abuse — and writes
//! `results/gateway.json`.  Exits non-zero on any lost request, wire
//! verdict divergence, missing typed shed response, accepted/answered
//! mismatch, or a server that stops serving after abuse, so CI gates on
//! the wire boundary staying total and panic-free.
//! Usage: `cargo run --release -p naps-eval --bin gateway [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::gateway::run(&cfg);
    let failures = result.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
