//! Regenerates the refinement ablation (paper Section V item 2).
//! Usage: `cargo run --release -p naps-eval --bin refinement [--full] [--seed N]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::refinement::run(&cfg);
}
