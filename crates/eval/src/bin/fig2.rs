//! Regenerates the Figure 2 abstraction spectrum. Usage: `cargo run --release -p naps-eval --bin fig2 [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::fig2::run(&cfg);
}
