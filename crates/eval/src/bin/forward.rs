//! Measures the allocation-free prepared serving forward pass against
//! the allocating baseline on the serving fixture and writes
//! `results/forward.json` (per-micro-batch-size QPS, allocations per
//! batch on each path).  The binary installs a counting global
//! allocator so allocations-per-request is measured, not estimated.
//! Exits non-zero when the prepared path allocates at all in steady
//! state, when the single-row speedup falls below 1.3x, or when any
//! prepared row diverges from the allocating path — the hot path must
//! stay allocation-free, worthwhile, and bit-identical.
//! Usage: `cargo run --release -p naps-eval --bin forward [--full]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation event (alloc/realloc/alloc_zeroed) while
/// delegating the actual memory management to [`System`].
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the System allocator,
// which upholds the GlobalAlloc contract; the counter is a Relaxed
// atomic add with no other side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: counting wrapper around System::alloc; the caller's contract is forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: relaxed — a monotone event counter, read only when
        // the allocator is quiescent between measurement fences.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: direct delegation to System::dealloc; the caller's contract is forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching alloc on System.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: counting wrapper around System::realloc; the caller's contract is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ordering: relaxed — monotone event counter (see alloc).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as our own caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: counting wrapper around System::alloc_zeroed; the caller's contract is forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ordering: relaxed — monotone event counter (see alloc).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    // ordering: relaxed — read between measurement fences while the
    // measured region is single-threaded.
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::forward::run(&cfg, allocation_count);
    let mut failures = Vec::new();
    if !result.all_identical {
        failures.push("prepared rows diverged from the allocating observe path".to_string());
    }
    if result.steady_state_allocs != 0 {
        failures.push(format!(
            "prepared path performed {} heap allocations in steady state (must be zero)",
            result.steady_state_allocs
        ));
    }
    if result.single_row_speedup < 1.3 {
        failures.push(format!(
            "single-row speedup {:.2}x is below the 1.3x floor",
            result.single_row_speedup
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
