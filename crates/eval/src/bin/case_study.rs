//! Regenerates the Section III front-car case study. Usage: `cargo run --release -p naps-eval --bin case_study [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::case_study::run(&cfg);
}
