//! Benchmarks the compiled zone evaluators against the walked snapshot
//! oracle on the serving fixture and writes `results/compiled.json`
//! (per-query-kind speedups, fast-path census).  Exits non-zero when any
//! compiled answer diverges from the walked oracle, or when the
//! bit-sliced membership kernel's speedup falls below 2x, so CI can
//! gate on the compiled path staying both correct and worthwhile.
//! Usage: `cargo run --release -p naps-eval --bin compiled [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::compiled::run(&cfg);
    let mut failures = Vec::new();
    for row in &result.rows {
        if !row.identical {
            failures.push(format!(
                "compiled {} diverged from the walked snapshot oracle",
                row.kind
            ));
        }
    }
    if result.sliced_membership_speedup < 2.0 {
        failures.push(format!(
            "bit-sliced membership speedup {:.2}x is below the 2x floor",
            result.sliced_membership_speedup
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
