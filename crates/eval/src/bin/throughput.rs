//! Measures serving throughput (MonitorEngine vs sequential) and writes
//! `results/throughput.json`. Usage: `cargo run --release -p naps-eval --bin throughput [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let _ = naps_eval::throughput::run(&cfg);
}
