//! Multi-layer monitoring end to end: Any/All/Majority detection-vs-FPR
//! on clean/corrupted/novelty streams versus the single-layer baseline,
//! layered-engine ≡ sequential verdict equivalence, and the marginal
//! cost of each extra monitored layer (`results/layered.json`).  Exits
//! non-zero when the layered subsystem fails its purpose — served
//! layered verdicts must be bit-identical to sequential layered
//! checking, the `Any` policy must detect at least as many corrupted
//! inputs as the single-layer baseline, and adding monitored layers must
//! not add forward passes (measured by the model's own pass counter) —
//! so CI can gate on it.
//! Usage: `cargo run --release -p naps-eval --bin layered [--full]`.
fn main() {
    let cfg = naps_eval::RunConfig::from_env();
    let result = naps_eval::layered::run(&cfg);
    let mut failures = Vec::new();
    if !result.engine_matches_sequential {
        failures.push("engine layered verdicts diverge from sequential checking".to_string());
    }
    if !result.any_beats_baseline_on_corrupted {
        failures.push(format!(
            "Any-policy layered detection ({:.4}) fell below the single-layer baseline ({:.4}) \
             on the corrupted stream",
            result.rows[1].corrupted_rate, result.rows[0].corrupted_rate
        ));
    }
    if !result.marginal.no_extra_forward_pass {
        failures
            .push("adding monitored layers changed the measured forward-pass count".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
