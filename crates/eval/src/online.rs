//! Online adaptation: the live-update loop of the paper's deployment
//! story (Section IV).
//!
//! A deployed monitor faces a **drifting** stream: corrupted variants of
//! the training distribution plus genuine novelties.  Out-of-pattern
//! warnings pile up; an operator reviews them and confirms the benign
//! ones (corrupted inputs the network still classified correctly).  The
//! confirmed activation patterns are fed back through
//! [`naps_core::Monitor::enrich`], the zones are compacted and re-frozen,
//! and the new snapshot is **hot-swapped** into the running
//! [`MonitorEngine`] without dropping a request.  This experiment
//! replays that loop end to end and records, per epoch: the
//! out-of-pattern rate, the serving QPS, the swap latency, the QPS while
//! the swap happens, and whether persistence
//! ([`FrozenMonitor::save`]/[`FrozenMonitor::load`]) round-trips the
//! published snapshot exactly.
//!
//! The headline check (enforced by the `online_adaptation` binary and
//! CI): after enrichment, the out-of-pattern rate on the **same** shifted
//! stream must drop, while the novelty stream keeps warning — the
//! monitor adapts to benign drift without going blind to true novelty.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use naps_core::{
    ActivationMonitor, BddZone, Monitor, MonitorBuilder, MonitorReport, Pattern, Verdict,
};
use naps_data::corrupt::{apply, Corruption};
use naps_data::novelty::{render_gray, Novelty};
use naps_data::{digits, Dataset};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_serve::{EngineConfig, EpochReport, FrozenMonitor, MonitorEngine};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// One served stream segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlinePhase {
    /// Segment label (`clean @0`, `shifted @0`, `shifted under swap`, …).
    pub phase: String,
    /// Zone epochs observed on this segment's verdicts (ascending).  A
    /// single-element list means the whole segment was judged by one
    /// snapshot; the under-swap segment may legitimately span two.
    pub epochs_seen: Vec<u64>,
    /// Out-of-pattern rate over the monitored verdicts.
    pub out_of_pattern_rate: f64,
    /// Requests served per second on this segment.
    pub qps: f64,
    /// Segment length.
    pub samples: usize,
}

/// The full online-adaptation trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineAdaptation {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Served segments in order.
    pub phases: Vec<OnlinePhase>,
    /// Operator-confirmed patterns admitted by `enrich` (new seeds).
    pub enriched_patterns: usize,
    /// Classes the enrichment touched (dirty set at publish time).
    pub dirty_classes: usize,
    /// Wall time of `MonitorEngine::publish` (the hot swap itself).
    pub swap_latency_us: f64,
    /// QPS of the stream segment that was in flight while the swap
    /// happened — the "service does not stall" number.
    pub qps_during_update: f64,
    /// Whether every under-swap verdict matched the sequential oracle of
    /// the epoch stamped on it (exactness across the swap).
    pub verdicts_attributable: bool,
    /// Out-of-pattern rate on the shifted stream before enrichment.
    pub shifted_rate_before: f64,
    /// ... and after (same stream, enriched zones).
    pub shifted_rate_after: f64,
    /// Novelty-stream rate before enrichment.
    pub novelty_rate_before: f64,
    /// Novelty-stream rate after — should stay high: adapting to benign
    /// drift must not blind the monitor to true novelty.
    pub novelty_rate_after: f64,
    /// The headline acceptance bit: did the shifted rate drop?
    pub rate_dropped: bool,
    /// `FrozenMonitor::save` → `load` of the published epoch-1 snapshot
    /// round-tripped to an equal monitor.
    pub persistence_roundtrip_ok: bool,
    /// Snapshot swaps the engine performed.
    pub swaps: u64,
}

/// Out-of-pattern rate over monitored verdicts.
fn oop_rate(reports: &[EpochReport]) -> f64 {
    let monitored = reports
        .iter()
        .filter(|r| r.report.verdict != Verdict::Unmonitored)
        .count();
    if monitored == 0 {
        return 0.0;
    }
    reports
        .iter()
        .filter(|r| r.report.verdict == Verdict::OutOfPattern)
        .count() as f64
        / monitored as f64
}

fn epochs_seen(reports: &[EpochReport]) -> Vec<u64> {
    let mut seen: Vec<u64> = reports.iter().map(|r| r.epoch).collect();
    seen.sort_unstable();
    seen.dedup();
    seen
}

/// Serves `inputs` through the engine as one timed segment.
fn serve_phase(
    engine: &MonitorEngine,
    phase: &str,
    inputs: &[Tensor],
) -> (OnlinePhase, Vec<EpochReport>) {
    let start = Instant::now();
    let reports = engine.check_batch(inputs).expect("engine is up");
    let qps = inputs.len() as f64 / start.elapsed().as_secs_f64();
    (
        OnlinePhase {
            phase: phase.to_string(),
            epochs_seen: epochs_seen(&reports),
            out_of_pattern_rate: oop_rate(&reports),
            qps,
            samples: inputs.len(),
        },
        reports,
    )
}

/// The operator's review queue: inputs whose decision was **correct**
/// but out-of-pattern are confirmed benign, keyed by predicted class.
fn confirm_benign(
    monitor: &Monitor<BddZone>,
    model: &mut Sequential,
    inputs: &[Tensor],
    labels: &[usize],
) -> HashMap<usize, Vec<Pattern>> {
    let mut confirmed: HashMap<usize, Vec<Pattern>> = HashMap::new();
    for ((predicted, pattern), &label) in
        monitor.observe_batch(model, inputs).into_iter().zip(labels)
    {
        if predicted == label && monitor.check_pattern(predicted, &pattern) == Verdict::OutOfPattern
        {
            confirmed.entry(predicted).or_default().push(pattern);
        }
    }
    confirmed
}

/// The deployment-time corruption mix (cycled per sample).
const SHIFTS: [Corruption; 3] = [
    Corruption::GaussianNoise(0.25),
    Corruption::Fog(0.35),
    Corruption::Brightness(0.55),
];

/// Corrupts the validation stream deterministically (one fixed tensor
/// per sample, so pre- and post-enrichment phases replay the identical
/// stream).
fn shifted_stream(val: &Dataset, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    val.samples
        .iter()
        .enumerate()
        .map(|(i, s)| apply(s, 1, 28, SHIFTS[i % SHIFTS.len()], &mut rng))
        .collect()
}

/// A stream of genuine novelties (classes the network never saw).
fn novelty_stream(n: usize, seed: u64) -> Vec<Tensor> {
    let kinds = [
        Novelty::Scooter,
        Novelty::Asterisk,
        Novelty::Spiral,
        Novelty::Static,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| render_gray(kinds[i % kinds.len()], 28, &mut rng))
        .collect()
}

/// Runs the online-adaptation experiment and writes
/// `results/online.json`.
pub fn run(cfg: &RunConfig) -> OnlineAdaptation {
    println!("== Online adaptation: enrich → hot swap → persist ==");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let train = digits::generate(
        cfg.mnist_train_per_class(),
        digits::DigitStyle::clean(),
        &mut rng,
    );
    let val = digits::generate(
        cfg.mnist_val_per_class(),
        digits::DigitStyle::hard(),
        &mut rng,
    );
    // An MLP digits classifier (the engine replicates MLPs; the paper's
    // conv net would need caller-made replicas and adds nothing here).
    let mut model = mlp(&[784, 96, 48, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.mnist_epochs(),
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut model,
        &train.samples,
        &train.labels,
        &mut Adam::new(1.5e-3),
        &mut rng,
    );
    let monitor_layer = 3; // second ReLU (width 48)
    let mut monitor = MonitorBuilder::new(monitor_layer, 2).build::<BddZone>(
        &mut model,
        &train.samples,
        &train.labels,
        10,
    );
    monitor.compact();
    monitor.take_dirty(); // construction is epoch 0's baseline, not an update

    let workers = 2;
    let shifted = shifted_stream(&val, cfg.seed.wrapping_add(101));
    let novel = novelty_stream(if cfg.full { 120 } else { 48 }, cfg.seed.wrapping_add(202));
    let engine = MonitorEngine::new(
        &monitor,
        &model,
        EngineConfig {
            workers,
            max_batch: 16,
            queue_capacity: shifted.len().max(64) * 2,
        },
    )
    .expect("MLP replicates");

    // ---- Epoch 0: baseline, drift, novelty ----
    let mut phases = Vec::new();
    let (p, _) = serve_phase(&engine, "clean @0", &val.samples);
    phases.push(p);
    let (p, _) = serve_phase(&engine, "shifted @0", &shifted);
    let shifted_rate_before = p.out_of_pattern_rate;
    phases.push(p);
    let (p, _) = serve_phase(&engine, "novelty @0", &novel);
    let novelty_rate_before = p.out_of_pattern_rate;
    phases.push(p);

    // ---- Operator review: confirm correct-but-warned drift inputs ----
    let oracle0: Vec<MonitorReport> = monitor.check_batch(&mut model, &shifted);
    let confirmed = confirm_benign(&monitor, &mut model, &shifted, &val.labels);
    let mut enriched_patterns = 0usize;
    for (class, patterns) in &confirmed {
        enriched_patterns += monitor
            .enrich(*class, patterns)
            .expect("confirmed classes are monitored");
    }
    println!(
        "[operator confirmed {enriched_patterns} benign patterns across {} classes]",
        confirmed.len()
    );
    monitor.compact_dirty();
    let dirty_classes = monitor.take_dirty().len();
    let frozen1 = FrozenMonitor::shard_by_class(&monitor, workers);
    let oracle1: Vec<MonitorReport> = monitor.check_batch(&mut model, &shifted);

    // ---- Hot swap while the shifted stream is in flight ----
    let start = Instant::now();
    let tickets: Vec<_> = shifted
        .iter()
        .map(|x| engine.submit(x.clone()).expect("engine is up"))
        .collect();
    let publish_start = Instant::now();
    let new_epoch = engine.publish(frozen1).expect("compatible snapshot");
    let swap_latency_us = publish_start.elapsed().as_secs_f64() * 1e6;
    let under_swap: Vec<EpochReport> = tickets
        .into_iter()
        .map(|t| t.wait().expect("engine worker alive"))
        .collect();
    let qps_during_update = under_swap.len() as f64 / start.elapsed().as_secs_f64();
    assert_eq!(new_epoch, 1);
    // Exactness across the swap: every verdict matches the sequential
    // oracle of the epoch stamped on it.
    let verdicts_attributable = under_swap.iter().enumerate().all(|(i, r)| match r.epoch {
        0 => r.report == oracle0[i],
        1 => r.report == oracle1[i],
        _ => false,
    });
    phases.push(OnlinePhase {
        phase: "shifted under swap".to_string(),
        epochs_seen: epochs_seen(&under_swap),
        out_of_pattern_rate: oop_rate(&under_swap),
        qps: qps_during_update,
        samples: under_swap.len(),
    });

    // ---- Epoch 1: the same streams, enriched zones ----
    let (p, reports) = serve_phase(&engine, "shifted @1", &shifted);
    let shifted_rate_after = p.out_of_pattern_rate;
    assert!(
        reports.iter().all(|r| r.epoch == 1),
        "post-swap verdicts must come from the enriched snapshot"
    );
    phases.push(p);
    let (p, _) = serve_phase(&engine, "novelty @1", &novel);
    let novelty_rate_after = p.out_of_pattern_rate;
    phases.push(p);
    let (p, _) = serve_phase(&engine, "clean @1", &val.samples);
    phases.push(p);

    // ---- Persist the published snapshot for warm restarts ----
    let published = engine.monitor();
    let persistence_roundtrip_ok = {
        if std::fs::create_dir_all(&cfg.out_dir).is_err() {
            false
        } else {
            let path = cfg.out_dir.join("monitor_epoch1.json");
            published.save(&path).is_ok()
                && FrozenMonitor::load(&path).is_ok_and(|loaded| loaded == *published)
        }
    };

    let stats = engine.shutdown();
    let rate_dropped = shifted_rate_after < shifted_rate_before;
    let result = OnlineAdaptation {
        schema_version: 1,
        phases,
        enriched_patterns,
        dirty_classes,
        swap_latency_us,
        qps_during_update,
        verdicts_attributable,
        shifted_rate_before,
        shifted_rate_after,
        novelty_rate_before,
        novelty_rate_after,
        rate_dropped,
        persistence_roundtrip_ok,
        swaps: stats.swaps,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "online", &result);
    result
}

fn print_table(result: &OnlineAdaptation) {
    rule(72);
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>8}",
        "phase", "epochs", "oop rate", "qps", "n"
    );
    rule(72);
    for p in &result.phases {
        println!(
            "{:<22} {:>10} {:>14} {:>12.0} {:>8}",
            p.phase,
            p.epochs_seen
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(","),
            pct(p.out_of_pattern_rate),
            p.qps,
            p.samples
        );
    }
    rule(72);
    println!(
        "enriched {} patterns over {} classes; swap {:.0}µs; {:.0} qps under \
         update; verdicts attributable: {}; persisted: {}",
        result.enriched_patterns,
        result.dirty_classes,
        result.swap_latency_us,
        result.qps_during_update,
        result.verdicts_attributable,
        result.persistence_roundtrip_ok
    );
    println!(
        "shifted rate {} -> {} ({}), novelty rate {} -> {} (should stay high)",
        pct(result.shifted_rate_before),
        pct(result.shifted_rate_after),
        if result.rate_dropped {
            "dropped ✓"
        } else {
            "DID NOT DROP"
        },
        pct(result.novelty_rate_before),
        pct(result.novelty_rate_after),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(verdict: Verdict, epoch: u64) -> EpochReport {
        EpochReport {
            epoch,
            report: MonitorReport {
                predicted: 0,
                verdict,
                distance_to_seeds: None,
            },
            graded: None,
        }
    }

    #[test]
    fn oop_rate_ignores_unmonitored_and_handles_empty() {
        let rs = [
            rep(Verdict::OutOfPattern, 0),
            rep(Verdict::InPattern, 0),
            rep(Verdict::Unmonitored, 0),
        ];
        assert!((oop_rate(&rs) - 0.5).abs() < 1e-12);
        assert_eq!(oop_rate(&[]), 0.0);
    }

    #[test]
    fn epochs_seen_dedups_and_sorts() {
        let rs = [
            rep(Verdict::InPattern, 1),
            rep(Verdict::InPattern, 0),
            rep(Verdict::InPattern, 1),
        ];
        assert_eq!(epochs_seen(&rs), vec![0, 1]);
    }

    #[test]
    fn shifted_stream_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = digits::generate(2, digits::DigitStyle::clean(), &mut rng);
        let a = shifted_stream(&ds, 9);
        let b = shifted_stream(&ds, 9);
        assert_eq!(a, b, "replays must be bit-identical");
        assert_ne!(a, ds.samples, "corruption must change the stream");
    }

    #[test]
    fn novelty_stream_has_the_right_geometry() {
        let stream = novelty_stream(8, 4);
        assert_eq!(stream.len(), 8);
        assert!(stream.iter().all(|t| t.len() == 784));
    }
}
