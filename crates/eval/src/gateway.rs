//! Gateway soak: the wire boundary under concurrent load.
//!
//! Three phases over loopback TCP, writing `results/gateway.json`:
//!
//! 1. **Soak** — N client threads × M requests each (all four request
//!    kinds interleaved) against a healthy engine; counts lost requests
//!    (must be zero) and wire verdicts that diverge from in-process
//!    [`naps_serve::MonitorEngine::check`] (must be zero).
//! 2. **Saturation** — a pipelined burst against a one-worker engine
//!    with a two-slot queue; the gateway must shed with typed
//!    `Saturated` responses while still answering every accepted
//!    request (a full queue must cost a typed frame, not a blocked
//!    socket).
//! 3. **Abuse** — garbage handshakes and hostile frames; the server
//!    must count them, drop those connections, and keep serving.
//!
//! The binary exits non-zero on any lost request, verdict divergence,
//! missing shed response, or accepted/answered mismatch, so CI gates on
//! the wire boundary staying total.

use crate::config::RunConfig;
use crate::report::{rule, write_json};
use naps_core::GradedQuery;
use naps_gateway::{Gateway, GatewayClient, GatewayConfig, Rejection, RequestKind, Response};
use naps_serve::{EngineConfig, MonitorEngine};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency summary for one request kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindLatency {
    /// The wire request kind.
    pub kind: String,
    /// Requests of this kind served in the soak phase.
    pub count: u64,
    /// Median latency bucket upper bound, µs.
    pub p50_us: Option<u64>,
    /// p99 latency bucket upper bound, µs.
    pub p99_us: Option<u64>,
}

/// The full gateway soak record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewaySoak {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Concurrent client threads in the soak phase.
    pub client_threads: usize,
    /// Requests per thread in the soak phase.
    pub requests_per_thread: usize,
    /// Soak requests sent in total.
    pub total_requests: u64,
    /// Soak requests answered with a verdict.
    pub served: u64,
    /// Soak requests that never got a response (**gate: must be 0**).
    pub lost: u64,
    /// Wire verdicts differing from in-process checking (**gate: 0**).
    pub divergent: u64,
    /// Gateway `accepted` counter after the soak phase.
    pub accepted: u64,
    /// Gateway `answered` counter after the soak phase (**gate: equals
    /// `accepted`** — the drain answered everything).
    pub answered: u64,
    /// Responses per second over the soak phase (wall clock, all
    /// threads).
    pub soak_qps: f64,
    /// Per-kind latency summaries from the gateway's histograms.
    pub kinds: Vec<KindLatency>,
    /// Burst size of the saturation phase.
    pub burst: u64,
    /// Typed `Saturated` responses in the saturation phase (**gate:
    /// ≥ 1** — the full queue shed instead of blocking).
    pub shed: u64,
    /// Verdicts served in the saturation phase.
    pub burst_served: u64,
    /// Saturation-phase accepted/answered agreement.
    pub burst_fully_answered: bool,
    /// Malformed connections counted in the abuse phase.
    pub malformed_dropped: u64,
    /// Whether the gateway still served verdicts after the abuse phase.
    pub survived_abuse: bool,
}

impl GatewaySoak {
    /// Gate failures, empty when the wire boundary held.
    pub fn failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        if self.lost > 0 {
            fails.push(format!("{} soak request(s) lost (no response)", self.lost));
        }
        if self.divergent > 0 {
            fails.push(format!(
                "{} wire verdict(s) diverged from in-process checking",
                self.divergent
            ));
        }
        if self.accepted != self.answered {
            fails.push(format!(
                "gateway accepted {} requests but answered {}",
                self.accepted, self.answered
            ));
        }
        if self.shed == 0 {
            fails.push("saturation burst produced no typed Saturated response".to_string());
        }
        if !self.burst_fully_answered {
            fails.push("saturation burst left accepted requests unanswered".to_string());
        }
        if !self.survived_abuse {
            fails.push("gateway stopped serving after malformed connections".to_string());
        }
        fails
    }
}

const CLASSES: usize = 4;

fn soak_query() -> GradedQuery {
    GradedQuery::new(3, 2)
}

/// Runs the three phases and writes `results/gateway.json`.
pub fn run(cfg: &RunConfig) -> GatewaySoak {
    println!("== Gateway soak: the wire boundary under load ==");
    let (threads, per_thread, probes_n) = if cfg.full { (8, 400, 64) } else { (4, 120, 24) };

    // ---- Phase 1: concurrent soak, verdict parity ----
    let (monitor, net, probes) = naps_bench::serving_fixture(CLASSES, probes_n, cfg.seed);
    let engine = Arc::new(
        MonitorEngine::new(
            &monitor,
            &net,
            EngineConfig {
                workers: 2,
                max_batch: 8,
                queue_capacity: 1024,
            },
        )
        .expect("serving fixture is an MLP"),
    );
    let reference: Vec<_> = probes
        .iter()
        .map(|x| {
            (
                engine.check(x).expect("engine up"),
                engine.check_graded(x, soak_query()).expect("engine up"),
                engine.check_layered(x).expect("engine up"),
                engine
                    .check_layered_graded(x, soak_query())
                    .expect("engine up"),
            )
        })
        .collect();
    let gateway = Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default())
        .expect("loopback bind");
    let addr = gateway.local_addr();
    println!(
        "[{threads} client threads x {per_thread} requests, {} probes]",
        probes.len()
    );

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let probes = probes.clone();
            let reference = reference.clone();
            std::thread::spawn(move || -> (u64, u64) {
                let mut client = GatewayClient::connect(addr).expect("connect");
                let (mut served, mut divergent) = (0u64, 0u64);
                for r in 0..per_thread {
                    let i = (t * 31 + r) % probes.len();
                    let x = &probes[i];
                    let identical = match (t + r) % 4 {
                        0 => client.check(x).expect("served") == reference[i].0,
                        1 => {
                            client.check_graded(x, soak_query()).expect("served") == reference[i].1
                        }
                        2 => client.check_layered(x).expect("served") == reference[i].2,
                        _ => {
                            client
                                .check_layered_graded(x, soak_query())
                                .expect("served")
                                == reference[i].3
                        }
                    };
                    served += 1;
                    divergent += u64::from(!identical);
                }
                (served, divergent)
            })
        })
        .collect();
    let (mut served, mut divergent) = (0u64, 0u64);
    let mut lost = (threads * per_thread) as u64;
    for h in handles {
        let (s, d) = h.join().expect("client thread");
        served += s;
        divergent += d;
        lost -= s;
    }
    let soak_secs = start.elapsed().as_secs_f64().max(1e-9);
    let stats = gateway.shutdown();
    let soak_qps = served as f64 / soak_secs;
    rule(60);
    println!(
        "soak: {served} served, {lost} lost, {divergent} divergent, {soak_qps:.0} responses/s"
    );
    for k in &stats.kinds {
        println!(
            "  {:<22} {:>6}  p50 <= {:>6} us  p99 <= {:>6} us",
            k.kind,
            k.count,
            k.p50_us.map_or_else(|| "-".into(), |v| v.to_string()),
            k.p99_us.map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    // ---- Phase 2: saturation (typed shedding, not a blocked socket) ----
    let burst = if cfg.full { 512u64 } else { 192 };
    let tiny = Arc::new(
        MonitorEngine::new(
            &monitor,
            &net,
            EngineConfig {
                workers: 1,
                max_batch: 1,
                queue_capacity: 2,
            },
        )
        .expect("serving fixture is an MLP"),
    );
    let tiny_gateway = Gateway::bind(Arc::clone(&tiny), "127.0.0.1:0", GatewayConfig::default())
        .expect("loopback bind");
    let mut client = GatewayClient::connect(tiny_gateway.local_addr()).expect("connect");
    for i in 0..burst {
        client
            .send(RequestKind::Check, None, &probes[i as usize % probes.len()])
            .expect("send");
    }
    let (mut shed, mut burst_served) = (0u64, 0u64);
    for _ in 0..burst {
        match client.recv().expect("every burst request answered").1 {
            Response::Single(_) => burst_served += 1,
            Response::Rejected(Rejection::Saturated) => shed += 1,
            other => panic!("unexpected burst response: {other:?}"),
        }
    }
    drop(client);
    let tiny_stats = tiny_gateway.shutdown();
    let burst_fully_answered =
        tiny_stats.accepted == burst && tiny_stats.answered == tiny_stats.accepted;
    println!(
        "saturation: burst {burst} -> {burst_served} served, {shed} shed \
         (queue capacity 2, 1 worker)"
    );

    // ---- Phase 3: abuse (malformed bytes must not take the server down) ----
    let abuse_gateway = Gateway::bind(Arc::clone(&engine), "127.0.0.1:0", GatewayConfig::default())
        .expect("loopback bind");
    let abuse_addr = abuse_gateway.local_addr();
    for garbage in [
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        // Valid hello, then a hostile length prefix.
        [b"NAPS\x01\x00".to_vec(), u32::MAX.to_le_bytes().to_vec()].concat(),
        // Valid hello, then an unknown request kind in a valid frame.
        [
            b"NAPS\x01\x00".to_vec(),
            9u32.to_le_bytes().to_vec(),
            vec![0xEE; 9],
        ]
        .concat(),
    ] {
        let mut s = TcpStream::connect(abuse_addr).expect("connect");
        let _ = s.write_all(&garbage);
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // server hangs up on us
    }
    // Poll the counter (connections are dropped asynchronously), then
    // prove the server still answers correctly.
    let deadline = Instant::now() + Duration::from_secs(2);
    while abuse_gateway.stats().malformed < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let survived_abuse = GatewayClient::connect(abuse_addr)
        .ok()
        .and_then(|mut c| c.check(&probes[0]).ok())
        .is_some_and(|wire| wire == reference[0].0);
    let abuse_stats = abuse_gateway.shutdown();
    println!(
        "abuse: {} malformed connection(s) dropped, server survived: {survived_abuse}",
        abuse_stats.malformed
    );
    rule(60);

    let result = GatewaySoak {
        schema_version: 1,
        client_threads: threads,
        requests_per_thread: per_thread,
        total_requests: (threads * per_thread) as u64,
        served,
        lost,
        divergent,
        accepted: stats.accepted,
        answered: stats.answered,
        soak_qps,
        kinds: stats
            .kinds
            .iter()
            .map(|k| KindLatency {
                kind: k.kind.to_string(),
                count: k.count,
                p50_us: k.p50_us,
                p99_us: k.p99_us,
            })
            .collect(),
        burst,
        shed,
        burst_served,
        burst_fully_answered,
        malformed_dropped: abuse_stats.malformed,
        survived_abuse,
    };
    write_json(&cfg.out_dir, "gateway", &result);
    result
}
