//! Serving throughput: the `naps-serve` engine vs. sequential checking.
//!
//! The ROADMAP's north star is serving monitored classifications as fast
//! as the hardware allows.  This experiment measures end-to-end queries
//! per second on the shared `naps-bench` serving fixture across worker
//! counts (1/2/4/8) and micro-batch sizes (1/16/128), verifies that
//! every parallel configuration returns verdicts **bit-identical** to
//! sequential checking, and writes `results/throughput.json` so future
//! PRs can regression-check monitoring latency and QPS against a
//! recorded trajectory.
//!
//! Speedups are hardware-relative: the available parallelism is recorded
//! alongside every row, so a 1-core CI container producing a ~1x speedup
//! and an 8-core workstation producing ~4x are both healthy runs.

use crate::config::RunConfig;
use crate::report::{rule, write_json};
use naps_bench::serving_fixture;
use naps_core::ActivationMonitor;
use naps_serve::{EngineConfig, MonitorEngine};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Engine worker threads (0 = the sequential baseline).
    pub workers: usize,
    /// Micro-batch size (engine `max_batch`, or the sequential chunk).
    pub batch: usize,
    /// Queries served per second.
    pub qps: f64,
    /// Speedup over the single-thread sequential baseline at the same
    /// batch size.
    pub speedup_vs_sequential: f64,
    /// Whether every verdict matched sequential checking bit-for-bit.
    pub verdicts_identical: bool,
    /// Forward passes the engine executed (0 for the baseline rows).
    pub engine_batches: u64,
    /// Requests obtained by work stealing (0 for the baseline rows).
    pub engine_stolen: u64,
}

/// One single-thread compiled-vs-walked judging row: the frozen judging
/// path (compiled evaluators, class-grouped batches) against the walked
/// snapshot oracle on the same observed pairs — the forward pass is
/// excluded from both sides, so this isolates what compilation buys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledVsWalkedRow {
    /// Query kind (`judge_batch` = verdict + seed distance per row).
    pub kind: String,
    /// Walked-snapshot queries per second.
    pub walked_qps: f64,
    /// Compiled-evaluator queries per second.
    pub compiled_qps: f64,
    /// `compiled_qps / walked_qps`.
    pub speedup: f64,
    /// Whether compiled reports matched the walked oracle bit-for-bit.
    pub verdicts_identical: bool,
}

/// The full throughput matrix plus environment context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Throughput {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Hardware parallelism the run had available.
    pub available_parallelism: usize,
    /// Hardware threads, duplicated under the name downstream tooling
    /// reads alongside [`Throughput::skipped_reason`].
    pub hardware_threads: usize,
    /// Probes served per measured configuration.
    pub workload: usize,
    /// Speedup of the 4-worker / batch-128 configuration (the ISSUE 2
    /// acceptance-criterion cell; target ≥ 3x).
    pub speedup_4w_batch128: f64,
    /// Whether that cell met the ≥ 3x target — `None` when the run had
    /// fewer than 4 hardware threads, where the target is unreachable
    /// and a low number means nothing.
    pub meets_3x_target: Option<bool>,
    /// Why the 3x target was not judged (`None` when it was): records
    /// the hardware shortfall explicitly so a null verdict is
    /// distinguishable from a missing one.
    pub skipped_reason: Option<String>,
    /// Baseline + engine rows.
    pub rows: Vec<ThroughputRow>,
    /// Single-thread compiled-vs-walked judging rows (PR 6's compiled
    /// evaluators against the interpreted snapshot walk).
    pub compiled_vs_walked: Vec<CompiledVsWalkedRow>,
}

const BATCHES: [usize; 3] = [1, 16, 128];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Runs the throughput matrix and writes `results/throughput.json`.
pub fn run(cfg: &RunConfig) -> Throughput {
    println!("== Serving throughput: MonitorEngine vs sequential ==");
    let (probes_n, repeats) = if cfg.full { (2048, 5) } else { (512, 3) };
    let (monitor, mut model, probes) = serving_fixture(6, probes_n, cfg.seed);
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "[fixture: {} probes, {} classes, available parallelism {parallelism}]",
        probes.len(),
        monitor.num_classes(),
    );

    // Sequential oracle (also the verdict reference for every engine row).
    let reference = monitor.check_batch(&mut model, &probes);

    let mut rows = Vec::new();
    let mut baseline_qps = vec![0.0f64; BATCHES.len()];
    rule(66);
    println!(
        "{:>8} {:>7} {:>12} {:>10} {:>10} {:>8}",
        "workers", "batch", "qps", "speedup", "identical", "stolen"
    );
    rule(66);
    for (bi, &batch) in BATCHES.iter().enumerate() {
        let start = Instant::now();
        let mut identical = true;
        for _ in 0..repeats {
            let mut got = Vec::with_capacity(probes.len());
            for chunk in probes.chunks(batch) {
                got.extend(monitor.check_batch(&mut model, chunk));
            }
            identical &= got == reference;
        }
        let qps = (repeats * probes.len()) as f64 / start.elapsed().as_secs_f64();
        baseline_qps[bi] = qps;
        println!(
            "{:>8} {:>7} {:>12.0} {:>10.2} {:>10} {:>8}",
            "seq", batch, qps, 1.0, identical, 0
        );
        rows.push(ThroughputRow {
            workers: 0,
            batch,
            qps,
            speedup_vs_sequential: 1.0,
            verdicts_identical: identical,
            engine_batches: 0,
            engine_stolen: 0,
        });
    }
    for &workers in WORKERS.iter() {
        for (bi, &batch) in BATCHES.iter().enumerate() {
            let engine = MonitorEngine::new(
                &monitor,
                &model,
                EngineConfig {
                    workers,
                    max_batch: batch,
                    queue_capacity: 2 * probes.len(),
                },
            )
            .expect("serving fixture is an MLP");
            let served = |engine: &MonitorEngine| -> Vec<naps_core::MonitorReport> {
                engine
                    .check_batch(&probes)
                    .expect("engine is up")
                    .into_iter()
                    .map(|r| r.report)
                    .collect()
            };
            // Warm-up pass (thread spawn, allocator) excluded from timing.
            let mut identical = served(&engine) == reference;
            let start = Instant::now();
            for _ in 0..repeats {
                identical &= served(&engine) == reference;
            }
            let qps = (repeats * probes.len()) as f64 / start.elapsed().as_secs_f64();
            let stats = engine.shutdown();
            let speedup = qps / baseline_qps[bi];
            println!(
                "{workers:>8} {batch:>7} {qps:>12.0} {speedup:>10.2} {identical:>10} {:>8}",
                stats.stolen
            );
            rows.push(ThroughputRow {
                workers,
                batch,
                qps,
                speedup_vs_sequential: speedup,
                verdicts_identical: identical,
                engine_batches: stats.batches,
                engine_stolen: stats.stolen,
            });
        }
    }
    rule(66);
    assert!(
        rows.iter().all(|r| r.verdicts_identical),
        "a parallel configuration diverged from sequential verdicts"
    );

    // The acceptance-criterion cell: 4 workers at micro-batch 128 should
    // reach >= 3x sequential QPS — judged only on hardware that can
    // physically deliver it (>= 4 threads).
    let speedup_4w_batch128 = rows
        .iter()
        .find(|r| r.workers == 4 && r.batch == 128)
        .map_or(0.0, |r| r.speedup_vs_sequential);
    let meets_3x_target = (parallelism >= 4).then_some(speedup_4w_batch128 >= 3.0);
    match meets_3x_target {
        Some(false) => eprintln!(
            "WARNING: 4 workers / batch 128 reached only \
             {speedup_4w_batch128:.2}x sequential QPS on {parallelism} \
             hardware threads (target >= 3x) — serving regression?"
        ),
        Some(true) => println!("[4w/128 speedup {speedup_4w_batch128:.2}x >= 3x target met]"),
        None => println!(
            "[4w/128 speedup {speedup_4w_batch128:.2}x recorded; 3x target \
             not judged on {parallelism} hardware thread(s)]"
        ),
    }

    let skipped_reason = if meets_3x_target.is_none() {
        Some(format!(
            "only {parallelism} hardware thread(s) available; the 4-worker \
             3x target needs at least 4"
        ))
    } else {
        None
    };

    // Single-thread compiled-vs-walked judging on the same fixture: one
    // shared observation pass, then the compiled class-grouped batch
    // judging vs. the walked row-at-a-time oracle.
    let frozen = naps_serve::FrozenMonitor::freeze(&monitor);
    let pairs = frozen.observe_batch(&mut model, &probes);
    let pair_refs: Vec<(usize, &naps_core::Pattern)> =
        pairs.iter().map(|(p, pat)| (*p, pat)).collect();
    let walk_one = |&(p, pat): &(usize, &naps_core::Pattern)| -> naps_core::MonitorReport {
        match frozen.zone(p) {
            None => naps_core::MonitorReport {
                predicted: p,
                verdict: naps_core::Verdict::Unmonitored,
                distance_to_seeds: None,
            },
            Some(z) => naps_core::MonitorReport {
                predicted: p,
                verdict: if z.contains_walked(pat) {
                    naps_core::Verdict::InPattern
                } else {
                    naps_core::Verdict::OutOfPattern
                },
                distance_to_seeds: z.distance_to_seeds_walked(pat),
            },
        }
    };
    let compiled_reports = frozen.report_batch(&pair_refs);
    let walked_reports: Vec<naps_core::MonitorReport> = pair_refs.iter().map(walk_one).collect();
    let identical = compiled_reports == walked_reports;
    let time_qps = |mut f: Box<dyn FnMut() + '_>| -> f64 {
        let start = Instant::now();
        for _ in 0..repeats {
            f();
        }
        (repeats * pairs.len()) as f64 / start.elapsed().as_secs_f64()
    };
    let walked_qps = time_qps(Box::new(|| {
        std::hint::black_box(pair_refs.iter().map(walk_one).collect::<Vec<_>>());
    }));
    let compiled_qps = time_qps(Box::new(|| {
        std::hint::black_box(frozen.report_batch(&pair_refs));
    }));
    let judge_speedup = compiled_qps / walked_qps;
    println!(
        "[single-thread judge: walked {walked_qps:.0} qps, compiled {compiled_qps:.0} qps \
         ({judge_speedup:.2}x), identical: {identical}]"
    );
    assert!(
        identical,
        "compiled judging diverged from the walked snapshot oracle"
    );
    let compiled_vs_walked = vec![CompiledVsWalkedRow {
        kind: "judge_batch".to_string(),
        walked_qps,
        compiled_qps,
        speedup: judge_speedup,
        verdicts_identical: identical,
    }];

    let result = Throughput {
        schema_version: 1,
        available_parallelism: parallelism,
        hardware_threads: parallelism,
        workload: probes.len(),
        speedup_4w_batch128,
        meets_3x_target,
        skipped_reason,
        rows,
        compiled_vs_walked,
    };
    write_json(&cfg.out_dir, "throughput", &result);
    result
}
