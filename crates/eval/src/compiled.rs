//! Compiled zone evaluators vs. the walked snapshot oracle.
//!
//! PR 6's tentpole lowers every frozen zone into a [`CompiledZone`]
//! (flat topo-ordered walk, 64-lane bit-sliced batches, small-zone
//! interval/sorted-key indexes, and the bounded distance DP on the same
//! node array).  This experiment measures what that buys on the shared
//! serving fixture — compiled vs. walked queries per second for every
//! query kind the engine serves — verifies the compiled answers are
//! **bit-identical** to the interpreted snapshot walk on the whole
//! workload, records which fast path each zone compiled to, and writes
//! `results/compiled.json` so future PRs can regression-check the
//! compiled path.
//!
//! The driving binary exits non-zero on any divergence, or when the
//! bit-sliced membership kernel's speedup falls below 2x — the compiled
//! path must pay for itself even in smoke mode.

use crate::config::RunConfig;
use crate::report::{rule, write_json};
use naps_bdd::CompiledPath;
use naps_bench::serving_fixture;
use naps_core::{MonitorReport, Pattern, Verdict};
use naps_serve::FrozenMonitor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One query kind, timed on both paths over the same workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledRow {
    /// Query kind (`membership`, `membership_batch`, `seed_distance`,
    /// `membership_sliced_flat`, `bounded_zone_distance`).
    pub kind: String,
    /// Walked-snapshot queries per second.
    pub walked_qps: f64,
    /// Compiled-evaluator queries per second.
    pub compiled_qps: f64,
    /// `compiled_qps / walked_qps`.
    pub speedup: f64,
    /// Whether every compiled answer matched the walked oracle.
    pub identical: bool,
}

/// How many zones compiled to each membership fast path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FastPathCounts {
    /// Contiguous small zones (two-compare membership).
    pub interval: usize,
    /// Enumerated small zones (binary search over sorted keys).
    pub sorted_keys: usize,
    /// Node-array zones (scalar walk / bit-sliced batches).
    pub flat_walk: usize,
}

impl FastPathCounts {
    fn count(&mut self, path: CompiledPath) {
        match path {
            CompiledPath::Interval => self.interval += 1,
            CompiledPath::SortedKeys => self.sorted_keys += 1,
            CompiledPath::FlatWalk => self.flat_walk += 1,
        }
    }
}

/// The full compiled-vs-walked comparison plus fast-path census.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledEval {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Judged `(predicted, pattern)` pairs per timed pass.
    pub workload: usize,
    /// Monitored zones in the frozen fixture monitor.
    pub monitored_zones: usize,
    /// γ of the fixture monitor (the bounded query runs at γ + 2).
    pub gamma: u32,
    /// Fast paths of the enlarged-zone evaluators.
    pub zone_paths: FastPathCounts,
    /// Fast paths of the seed-set evaluators.
    pub seed_paths: FastPathCounts,
    /// One row per query kind.
    pub rows: Vec<CompiledRow>,
    /// Batched judging speedup (the engine hot path: membership +
    /// seed distance, class-grouped).
    pub batch_membership_speedup: f64,
    /// The gated cell: the bit-sliced node-array kernel vs. the walked
    /// per-pattern walk (the path large zones take) — stable enough to
    /// hard-fail on, unlike the allocation-noise-prone end-to-end rows.
    pub sliced_membership_speedup: f64,
    /// Whether every kind agreed on every query.
    pub all_identical: bool,
}

/// The walked-oracle counterpart of [`FrozenMonitor::report`]: the exact
/// judging the engine ran before evaluators were compiled.
fn report_walked(frozen: &FrozenMonitor, predicted: usize, pattern: &Pattern) -> MonitorReport {
    match frozen.zone(predicted) {
        None => MonitorReport {
            predicted,
            verdict: Verdict::Unmonitored,
            distance_to_seeds: None,
        },
        Some(z) => MonitorReport {
            predicted,
            verdict: if z.contains_walked(pattern) {
                Verdict::InPattern
            } else {
                Verdict::OutOfPattern
            },
            distance_to_seeds: z.distance_to_seeds_walked(pattern),
        },
    }
}

fn time_qps<T>(n: usize, repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    (repeats * n) as f64 / start.elapsed().as_secs_f64()
}

/// Runs the compiled-vs-walked comparison and writes
/// `results/compiled.json`.
pub fn run(cfg: &RunConfig) -> CompiledEval {
    println!("== Compiled zone evaluators vs walked snapshots ==");
    let (probes_n, repeats) = if cfg.full { (2048, 7) } else { (512, 3) };
    let (monitor, mut model, probes) = serving_fixture(6, probes_n, cfg.seed);
    let frozen = FrozenMonitor::freeze(&monitor);
    let pairs: Vec<(usize, Pattern)> = frozen.observe_batch(&mut model, &probes);
    let pair_refs: Vec<(usize, &Pattern)> = pairs.iter().map(|(p, pat)| (*p, pat)).collect();
    let budget = frozen.gamma() + 2;

    let mut zone_paths = FastPathCounts::default();
    let mut seed_paths = FastPathCounts::default();
    let mut monitored_zones = 0usize;
    for c in 0..frozen.num_classes() {
        if let Some(z) = frozen.zone(c) {
            monitored_zones += 1;
            zone_paths.count(z.zone_eval().path());
            seed_paths.count(z.seed_eval().path());
        }
    }
    println!(
        "[{} pairs, {} monitored zones; zone paths {}i/{}s/{}f, seed paths {}i/{}s/{}f]",
        pairs.len(),
        monitored_zones,
        zone_paths.interval,
        zone_paths.sorted_keys,
        zone_paths.flat_walk,
        seed_paths.interval,
        seed_paths.sorted_keys,
        seed_paths.flat_walk,
    );

    let mut rows = Vec::new();
    rule(66);
    println!(
        "{:>24} {:>12} {:>12} {:>8} {:>6}",
        "kind", "walked qps", "compiled qps", "speedup", "same"
    );
    rule(66);
    let mut push = |kind: &str, walked_qps: f64, compiled_qps: f64, identical: bool| {
        let speedup = compiled_qps / walked_qps;
        println!(
            "{kind:>24} {walked_qps:>12.0} {compiled_qps:>12.0} {speedup:>8.2} {identical:>6}"
        );
        rows.push(CompiledRow {
            kind: kind.to_string(),
            walked_qps,
            compiled_qps,
            speedup,
            identical,
        });
    };

    // Scalar membership: one pattern at a time through the zone of its
    // predicted class.
    let member_compiled: Vec<bool> = pair_refs
        .iter()
        .map(|&(p, pat)| frozen.zone(p).is_some_and(|z| z.contains(pat)))
        .collect();
    let member_walked: Vec<bool> = pair_refs
        .iter()
        .map(|&(p, pat)| frozen.zone(p).is_some_and(|z| z.contains_walked(pat)))
        .collect();
    push(
        "membership",
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter(|&&(p, pat)| frozen.zone(p).is_some_and(|z| z.contains_walked(pat)))
                .count()
        }),
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter(|&&(p, pat)| frozen.zone(p).is_some_and(|z| z.contains(pat)))
                .count()
        }),
        member_compiled == member_walked,
    );

    // Batched judging — the engine's hot path: grouped per class so the
    // bit-sliced evaluator answers up to 64 rows per node-array sweep,
    // vs. the walked row-at-a-time reports the engine ran before.
    let judged_compiled = frozen.report_batch(&pair_refs);
    let judged_walked: Vec<MonitorReport> = pair_refs
        .iter()
        .map(|&(p, pat)| report_walked(&frozen, p, pat))
        .collect();
    let batch_walked_qps = time_qps(pairs.len(), repeats, || {
        pair_refs
            .iter()
            .map(|&(p, pat)| report_walked(&frozen, p, pat))
            .collect::<Vec<_>>()
    });
    let batch_compiled_qps = time_qps(pairs.len(), repeats, || frozen.report_batch(&pair_refs));
    push(
        "membership_batch",
        batch_walked_qps,
        batch_compiled_qps,
        judged_compiled == judged_walked,
    );

    // Seed distance: the distance column of every report.
    let seeds_compiled: Vec<Option<u32>> = pair_refs
        .iter()
        .map(|&(p, pat)| frozen.zone(p).and_then(|z| z.distance_to_seeds(pat)))
        .collect();
    let seeds_walked: Vec<Option<u32>> = pair_refs
        .iter()
        .map(|&(p, pat)| frozen.zone(p).and_then(|z| z.distance_to_seeds_walked(pat)))
        .collect();
    push(
        "seed_distance",
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter_map(|&(p, pat)| {
                    frozen.zone(p).and_then(|z| z.distance_to_seeds_walked(pat))
                })
                .count()
        }),
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter_map(|&(p, pat)| frozen.zone(p).and_then(|z| z.distance_to_seeds(pat)))
                .count()
        }),
        seeds_compiled == seeds_walked,
    );

    // The bit-sliced node-array kernel itself: force flat compilation
    // (no small-zone shortcut on the compiled side) and answer each
    // class's rows 64 lanes per node-array sweep, against the same
    // walked per-pattern root-to-terminal walk.  This is the path zones
    // too big for the small index take in production.
    let flat: Vec<Option<naps_bdd::CompiledZone>> = (0..frozen.num_classes())
        .map(|c| {
            frozen
                .zone(c)
                .map(|z| naps_bdd::CompiledZone::compile_flat_only(z.zone_snapshot()))
        })
        .collect();
    let by_class: Vec<Vec<&Pattern>> = (0..frozen.num_classes())
        .map(|c| {
            pair_refs
                .iter()
                .filter(|&&(p, _)| p == c)
                .map(|&(_, pat)| pat)
                .collect()
        })
        .collect();
    let sliced_pass = || -> Vec<bool> {
        let mut hits = Vec::with_capacity(pairs.len());
        for (c, rows) in by_class.iter().enumerate() {
            if let Some(z) = &flat[c] {
                let words: Vec<&[u64]> = rows.iter().map(|p| p.words()).collect();
                hits.extend(z.eval_many(&words));
            }
        }
        hits
    };
    let walked_pass = || -> Vec<bool> {
        let mut hits = Vec::with_capacity(pairs.len());
        for (c, rows) in by_class.iter().enumerate() {
            if let Some(z) = frozen.zone(c) {
                let snap = z.zone_snapshot();
                hits.extend(rows.iter().map(|p| snap.eval(&p.to_bools())));
            }
        }
        hits
    };
    push(
        "membership_sliced_flat",
        time_qps(pairs.len(), repeats, walked_pass),
        time_qps(pairs.len(), repeats, sliced_pass),
        sliced_pass() == walked_pass(),
    );

    // Bounded zone distance at γ + 2: the graded ranking query.
    let bounded_compiled: Vec<Option<u32>> = pair_refs
        .iter()
        .map(|&(p, pat)| {
            frozen
                .zone(p)
                .and_then(|z| z.distance_to_zone_within(pat, budget))
        })
        .collect();
    let bounded_walked: Vec<Option<u32>> = pair_refs
        .iter()
        .map(|&(p, pat)| {
            frozen
                .zone(p)
                .and_then(|z| z.distance_to_zone_within_walked(pat, budget))
        })
        .collect();
    push(
        "bounded_zone_distance",
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter_map(|&(p, pat)| {
                    frozen
                        .zone(p)
                        .and_then(|z| z.distance_to_zone_within_walked(pat, budget))
                })
                .count()
        }),
        time_qps(pairs.len(), repeats, || {
            pair_refs
                .iter()
                .filter_map(|&(p, pat)| {
                    frozen
                        .zone(p)
                        .and_then(|z| z.distance_to_zone_within(pat, budget))
                })
                .count()
        }),
        bounded_compiled == bounded_walked,
    );
    rule(66);

    let batch_membership_speedup = rows
        .iter()
        .find(|r| r.kind == "membership_batch")
        .map_or(0.0, |r| r.speedup);
    let sliced_membership_speedup = rows
        .iter()
        .find(|r| r.kind == "membership_sliced_flat")
        .map_or(0.0, |r| r.speedup);
    let all_identical = rows.iter().all(|r| r.identical);
    println!(
        "[batched judging {batch_membership_speedup:.2}x, bit-sliced kernel \
         {sliced_membership_speedup:.2}x, all identical: {all_identical}]"
    );

    let result = CompiledEval {
        schema_version: 1,
        workload: pairs.len(),
        monitored_zones,
        gamma: frozen.gamma(),
        zone_paths,
        seed_paths,
        rows,
        batch_membership_speedup,
        sliced_membership_speedup,
        all_identical,
    };
    write_json(&cfg.out_dir, "compiled", &result);
    result
}
