//! Multi-layer monitoring end to end: detection-vs-FPR across combine
//! policies, engine ≡ sequential layered equivalence, and the cost model
//! of adding monitored layers.
//!
//! The paper monitors one close-to-output ReLU layer and notes that any
//! ReLU layer qualifies.  This experiment monitors **three** (layers 5,
//! 3 and 1 of a four-block MLP — deepest first) and replays three
//! streams — clean validation digits, corrupted variants, genuine
//! novelties — through the layered monitor, measuring:
//!
//! * **policy tradeoff**: out-of-pattern rates per stream for `Any` /
//!   `All` / `Majority` versus the single-layer (deepest-layer)
//!   baseline — `Any` must detect at least as much corruption as the
//!   baseline (it folds a superset of evidence; the JSON records the
//!   margin), at a measured clean-stream FPR cost;
//! * **serving equivalence**: the layered `MonitorEngine` must return
//!   verdicts **bit-identical** to sequential
//!   [`LayeredMonitor::check_batch`] on every stream (hard gate);
//! * **marginal layer cost**: batched checks with 1, 2 and 3 monitored
//!   layers, with the model's own forward-pass counter proving each
//!   added layer costs shard lookups, **never** an extra forward pass,
//!   plus per-input timing deltas;
//! * **observation-plan win**: one packed pass through
//!   `forward_observe_plan` versus the allocate-everything
//!   `forward_all`, with retained-float counts.
//!
//! The `layered` binary exits non-zero when serving diverges from
//! sequential layered checking, when the `Any` policy detects less
//! corruption than the single-layer baseline, or when any sweep ran
//! extra forward passes — so CI can gate on it.

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use naps_core::batch::{pack_batch, ObservationPlan};
use naps_core::{
    ActivationMonitor, BddZone, CombinePolicy, LayeredMonitor, LayeredReport, Monitor,
    MonitorBuilder, Verdict,
};
use naps_data::corrupt::{apply, Corruption};
use naps_data::novelty::{render_gray, Novelty};
use naps_data::{digits, Dataset};
use naps_nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps_serve::{EngineConfig, MonitorEngine};
use naps_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// ReLU tap indices monitored by the layered family, deepest first (the
/// deepest is the paper's default single layer and the baseline).
const MONITORED_LAYERS: [usize; 3] = [5, 3, 1];

/// Batch size of the sequential sweeps.
const CHUNK: usize = 64;

/// One monitored layer's description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerInfo {
    /// Model layer index.
    pub layer: usize,
    /// Monitored neuron count.
    pub width: usize,
}

/// Out-of-pattern rates of one verdict rule on the three streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// `"baseline (deepest layer)"`, `"Any"`, `"All"` or `"Majority"`.
    pub rule: String,
    /// Clean-stream warn rate — the false-positive-rate proxy.
    pub clean_rate: f64,
    /// Corrupted-stream warn rate — the detection measure.
    pub corrupted_rate: f64,
    /// Novelty-stream warn rate.
    pub novelty_rate: f64,
}

/// One row of the marginal-layer-cost sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarginalRow {
    /// Monitored layers in this configuration (1 = deepest only).
    pub num_layers: usize,
    /// Sequential batched check time per input, microseconds (best of
    /// two sweeps over the clean stream).
    pub per_input_us: f64,
    /// Whole-network forward passes the sweep executed, from
    /// [`Sequential::forward_passes`] — must be identical across rows.
    pub forward_passes: u64,
}

/// The marginal-cost experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarginalCost {
    /// Per-configuration rows, 1..=3 monitored layers.
    pub sweep: Vec<MarginalRow>,
    /// Largest per-input time delta between consecutive rows, µs.
    pub max_marginal_per_input_us: f64,
    /// Every sweep executed exactly the same number of forward passes
    /// (measured, not assumed): adding a monitored layer never added a
    /// forward pass.  The hard gate.
    pub no_extra_forward_pass: bool,
}

/// Observation plan vs `forward_all` on one packed pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservationWin {
    /// Time of `forward_observe_plan` (3-layer plan) over the packed
    /// clean stream, microseconds (best of three).
    pub plan_us: f64,
    /// Time of `forward_all` over the same batch, microseconds.
    pub forward_all_us: f64,
    /// `forward_all_us / plan_us`.
    pub speedup: f64,
    /// Floats retained per input by the plan path (monitored layers +
    /// logits).
    pub floats_retained_plan: usize,
    /// Floats retained per input by `forward_all` (every activation and
    /// the input copy).
    pub floats_retained_all: usize,
}

/// The full layered-monitoring result (`results/layered.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayeredEval {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Hamming budget γ of every monitored layer.
    pub gamma: u32,
    /// The monitored layers, deepest (baseline) first.
    pub layers: Vec<LayerInfo>,
    /// Per-rule stream rates: baseline first, then the three policies.
    pub rows: Vec<PolicyRow>,
    /// `Any`-policy corrupted detection ≥ single-layer baseline (hard
    /// gate; `Any` folds a superset of the baseline's evidence).
    pub any_beats_baseline_on_corrupted: bool,
    /// Every engine verdict was bit-identical to sequential layered
    /// checking, on all streams (hard gate).
    pub engine_matches_sequential: bool,
    /// Forward passes the layered engine ran for the whole workload
    /// (micro-batches), for the marginal-cost record.
    pub engine_forward_passes: u64,
    /// The marginal-layer-cost sweep.
    pub marginal: MarginalCost,
    /// Observation-plan vs `forward_all` comparison.
    pub observation: ObservationWin,
}

/// The deployment-time corruption mix (cycled per sample).
const SHIFTS: [Corruption; 3] = [
    Corruption::GaussianNoise(0.35),
    Corruption::Fog(0.45),
    Corruption::Brightness(0.6),
];

fn corrupted_stream(val: &Dataset, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    val.samples
        .iter()
        .enumerate()
        .map(|(i, s)| apply(s, 1, 28, SHIFTS[i % SHIFTS.len()], &mut rng))
        .collect()
}

fn novelty_stream(n: usize, seed: u64) -> Vec<Tensor> {
    let kinds = [
        Novelty::Scooter,
        Novelty::Asterisk,
        Novelty::Spiral,
        Novelty::Static,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| render_gray(kinds[i % kinds.len()], 28, &mut rng))
        .collect()
}

/// Warn rate of `rule` over per-layer verdict vectors.
fn rate(reports: &[LayeredReport], rule: impl Fn(&LayeredReport) -> bool) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().filter(|r| rule(r)).count() as f64 / reports.len() as f64
}

fn build_monitor(
    model: &mut Sequential,
    train: &Dataset,
    layer: usize,
    gamma: u32,
) -> Monitor<BddZone> {
    let mut m = MonitorBuilder::new(layer, gamma).build::<BddZone>(
        model,
        &train.samples,
        &train.labels,
        10,
    );
    m.compact();
    m
}

fn sequential_sweep(
    layered: &LayeredMonitor<BddZone>,
    model: &mut Sequential,
    inputs: &[Tensor],
) -> Vec<LayeredReport> {
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(CHUNK) {
        out.extend(layered.check_batch(model, chunk));
    }
    out
}

/// Runs the layered-monitoring experiment and writes
/// `results/layered.json`.
pub fn run(cfg: &RunConfig) -> LayeredEval {
    println!("== Multi-layer monitoring: policies, serving, marginal cost ==");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let train = digits::generate(
        cfg.mnist_train_per_class(),
        digits::DigitStyle::clean(),
        &mut rng,
    );
    let val = digits::generate(
        cfg.mnist_val_per_class(),
        digits::DigitStyle::hard(),
        &mut rng,
    );
    let mut model = mlp(&[784, 96, 64, 48, 10], &mut rng);
    Trainer::new(TrainConfig {
        epochs: cfg.mnist_epochs(),
        batch_size: 32,
        verbose: false,
    })
    .fit(
        &mut model,
        &train.samples,
        &train.labels,
        &mut Adam::new(1.5e-3),
        &mut rng,
    );
    let gamma = 1;

    println!("[building one monitor per ReLU tap {MONITORED_LAYERS:?}]");
    let monitors: Vec<Monitor<BddZone>> = MONITORED_LAYERS
        .iter()
        .map(|&layer| build_monitor(&mut model, &train, layer, gamma))
        .collect();
    let layers: Vec<LayerInfo> = monitors
        .iter()
        .map(|m| LayerInfo {
            layer: m.layer(),
            width: m.selection().len(),
        })
        .collect();
    // One family under `Any`; every policy (and the baseline) is a fold
    // over the same per-layer verdicts, so one sequential sweep per
    // stream feeds every row.
    let layered = LayeredMonitor::new(monitors, CombinePolicy::Any);

    let corrupted = corrupted_stream(&val, cfg.seed.wrapping_add(31));
    let novel = novelty_stream(if cfg.full { 120 } else { 48 }, cfg.seed.wrapping_add(62));

    println!("[sequential layered sweeps over clean / corrupted / novelty]");
    let clean_reports = sequential_sweep(&layered, &mut model, &val.samples);
    let corrupt_reports = sequential_sweep(&layered, &mut model, &corrupted);
    let novel_reports = sequential_sweep(&layered, &mut model, &novel);

    let policy_rate = |reports: &[LayeredReport], policy: CombinePolicy| {
        rate(reports, |r| {
            policy.combine(&r.per_layer) == Verdict::OutOfPattern
        })
    };
    let baseline_rate =
        |reports: &[LayeredReport]| rate(reports, |r| r.per_layer[0] == Verdict::OutOfPattern);

    let mut rows = vec![PolicyRow {
        rule: "baseline (deepest layer)".to_string(),
        clean_rate: baseline_rate(&clean_reports),
        corrupted_rate: baseline_rate(&corrupt_reports),
        novelty_rate: baseline_rate(&novel_reports),
    }];
    for policy in [
        CombinePolicy::Any,
        CombinePolicy::All,
        CombinePolicy::Majority,
    ] {
        rows.push(PolicyRow {
            rule: format!("{policy:?}"),
            clean_rate: policy_rate(&clean_reports, policy),
            corrupted_rate: policy_rate(&corrupt_reports, policy),
            novelty_rate: policy_rate(&novel_reports, policy),
        });
    }
    let any_beats_baseline_on_corrupted = rows[1].corrupted_rate >= rows[0].corrupted_rate;

    // ---- Serving equivalence: engine ≡ sequential layered verdicts ----
    println!("[layered engine equivalence on all streams]");
    let engine = MonitorEngine::new_layered(
        &layered,
        &model,
        EngineConfig {
            workers: 2,
            max_batch: 16,
            queue_capacity: val.samples.len().max(64) * 2,
        },
    )
    .expect("MLP replicates");
    let mut engine_matches_sequential = true;
    for (label, inputs, sequential) in [
        ("clean", &val.samples, &clean_reports),
        ("corrupted", &corrupted, &corrupt_reports),
        ("novelty", &novel, &novel_reports),
    ] {
        let served = engine.check_layered_batch(inputs).expect("engine is up");
        let ok = served.len() == sequential.len()
            && served.iter().zip(sequential.iter()).all(|(s, q)| {
                s.predicted == q.predicted
                    && s.combined == q.combined
                    && s.per_layer.len() == q.per_layer.len()
                    && s.per_layer
                        .iter()
                        .zip(&q.per_layer)
                        .all(|(a, b)| a.verdict == *b)
            });
        if !ok {
            engine_matches_sequential = false;
            eprintln!("FAIL: engine layered verdicts diverge from sequential on {label}");
        }
    }
    let engine_forward_passes = engine.stats().batches;
    engine.shutdown();

    // ---- Marginal cost of each extra monitored layer ----
    println!("[marginal cost sweep: 1 / 2 / 3 monitored layers]");
    let mut sweep = Vec::new();
    for num_layers in 1..=MONITORED_LAYERS.len() {
        let family = LayeredMonitor::new(
            MONITORED_LAYERS[..num_layers]
                .iter()
                .map(|&layer| build_monitor(&mut model, &train, layer, gamma))
                .collect(),
            CombinePolicy::Any,
        );
        let mut best_us = f64::INFINITY;
        model.reset_forward_passes();
        for _ in 0..2 {
            let t = Instant::now();
            let reports = sequential_sweep(&family, &mut model, &val.samples);
            let us = t.elapsed().as_secs_f64() * 1e6;
            best_us = best_us.min(us / reports.len().max(1) as f64);
        }
        sweep.push(MarginalRow {
            num_layers,
            per_input_us: best_us,
            // Two timed repetitions: the counter sees both.
            forward_passes: model.forward_passes(),
        });
    }
    let max_marginal_per_input_us = sweep
        .windows(2)
        .map(|w| w[1].per_input_us - w[0].per_input_us)
        .fold(0.0f64, f64::max);
    let no_extra_forward_pass = sweep.windows(2).all(|w| {
        // Measured, not assumed: every configuration ran the identical
        // number of whole-network passes over the identical stream.
        w[0].forward_passes == w[1].forward_passes
    });
    let marginal = MarginalCost {
        sweep,
        max_marginal_per_input_us,
        no_extra_forward_pass,
    };

    // ---- Observation plan vs forward_all ----
    let batch = pack_batch(&val.samples);
    let plan = ObservationPlan::new(MONITORED_LAYERS.to_vec());
    let time_best = |f: &mut dyn FnMut() -> usize| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let keep = f();
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert!(keep > 0);
            best = best.min(us);
        }
        best
    };
    let plan_us = time_best(&mut || model.forward_observe_plan(&batch, &plan, false).0.len());
    let forward_all_us = time_best(&mut || model.forward_all(&batch, false).len());
    // Per input: plan keeps the monitored widths + logits; forward_all
    // keeps every boundary (input copy included).
    let widths = [784usize, 96, 96, 64, 64, 48, 48, 10];
    let floats_retained_all: usize = widths.iter().sum();
    let floats_retained_plan: usize = layers.iter().map(|l| l.width).sum::<usize>() + 10;
    let observation = ObservationWin {
        plan_us,
        forward_all_us,
        speedup: forward_all_us / plan_us.max(f64::EPSILON),
        floats_retained_plan,
        floats_retained_all,
    };

    let result = LayeredEval {
        schema_version: 1,
        gamma,
        layers,
        rows,
        any_beats_baseline_on_corrupted,
        engine_matches_sequential,
        engine_forward_passes,
        marginal,
        observation,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "layered", &result);
    result
}

fn print_table(result: &LayeredEval) {
    rule(72);
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "rule", "clean", "corrupted", "novelty"
    );
    rule(72);
    for row in &result.rows {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            row.rule,
            pct(row.clean_rate),
            pct(row.corrupted_rate),
            pct(row.novelty_rate)
        );
    }
    rule(72);
    println!(
        "any >= baseline on corrupted: {}; engine == sequential: {}",
        result.any_beats_baseline_on_corrupted, result.engine_matches_sequential
    );
    for row in &result.marginal.sweep {
        println!(
            "  {} layer(s): {:.2} us/input, {} forward passes",
            row.num_layers, row.per_input_us, row.forward_passes
        );
    }
    println!(
        "no extra forward pass per added layer: {} (max marginal {:.2} us/input)",
        result.marginal.no_extra_forward_pass, result.marginal.max_marginal_per_input_us
    );
    println!(
        "observation plan: {:.0} us vs forward_all {:.0} us ({:.2}x), \
         retains {}/{} floats per input",
        result.observation.plan_us,
        result.observation.forward_all_us,
        result.observation.speedup,
        result.observation.floats_retained_plan,
        result.observation.floats_retained_all
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(per_layer: Vec<Verdict>) -> LayeredReport {
        let combined = CombinePolicy::Any.combine(&per_layer);
        LayeredReport {
            predicted: 0,
            per_layer,
            combined,
        }
    }

    #[test]
    fn rates_fold_per_layer_verdicts() {
        use Verdict::*;
        let reports = vec![
            report(vec![OutOfPattern, InPattern, InPattern]),
            report(vec![InPattern, InPattern, InPattern]),
            report(vec![OutOfPattern, OutOfPattern, OutOfPattern]),
            report(vec![InPattern, OutOfPattern, OutOfPattern]),
        ];
        let any = |r: &LayeredReport| CombinePolicy::Any.combine(&r.per_layer) == OutOfPattern;
        let all = |r: &LayeredReport| CombinePolicy::All.combine(&r.per_layer) == OutOfPattern;
        let baseline = |r: &LayeredReport| r.per_layer[0] == OutOfPattern;
        assert_eq!(rate(&reports, any), 0.75);
        assert_eq!(rate(&reports, all), 0.25);
        assert_eq!(rate(&reports, baseline), 0.5);
        // Any >= baseline >= all, structurally.
        assert!(rate(&reports, any) >= rate(&reports, baseline));
        assert!(rate(&reports, baseline) >= rate(&reports, all));
        assert_eq!(rate(&[], any), 0.0);
    }
}
