//! Run configuration shared by all experiment binaries.

use std::path::PathBuf;

/// Workload sizing and output control, parsed from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// `true` = paper-scale workloads (`--full`), `false` = fast profile.
    pub full: bool,
    /// RNG seed (`--seed N`).
    pub seed: u64,
    /// Directory for JSON results (`--out DIR`), default `results/`.
    pub out_dir: PathBuf,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            full: false,
            seed: 7,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl RunConfig {
    /// Parses `--full`, `--seed N` and `--out DIR` from an argument list
    /// (unknown arguments are ignored so binaries can add their own).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = RunConfig::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => cfg.full = true,
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                    }
                }
                "--out" => {
                    if let Some(v) = it.next() {
                        cfg.out_dir = PathBuf::from(v);
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// Parses the process's own arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// MNIST-like training images per class.
    pub fn mnist_train_per_class(&self) -> usize {
        if self.full {
            400
        } else {
            120
        }
    }

    /// MNIST-like validation images per class.
    pub fn mnist_val_per_class(&self) -> usize {
        if self.full {
            100
        } else {
            50
        }
    }

    /// MNIST training epochs.
    pub fn mnist_epochs(&self) -> usize {
        if self.full {
            5
        } else {
            3
        }
    }

    /// GTSRB-like training images per class.
    pub fn gtsrb_train_per_class(&self) -> usize {
        if self.full {
            120
        } else {
            50
        }
    }

    /// GTSRB-like validation images per class.
    pub fn gtsrb_val_per_class(&self) -> usize {
        if self.full {
            30
        } else {
            14
        }
    }

    /// GTSRB training epochs.
    pub fn gtsrb_epochs(&self) -> usize {
        if self.full {
            10
        } else {
            8
        }
    }

    /// Front-car case-study training scenarios.
    pub fn frontcar_scenarios(&self) -> usize {
        if self.full {
            4000
        } else {
            1500
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> RunConfig {
        RunConfig::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_fast() {
        let cfg = args(&[]);
        assert!(!cfg.full);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn flags_parse() {
        let cfg = args(&["--full", "--seed", "42", "--out", "/tmp/x"]);
        assert!(cfg.full);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn unknown_args_are_ignored() {
        let cfg = args(&["--quiet", "--seed", "3"]);
        assert_eq!(cfg.seed, 3);
    }

    #[test]
    fn full_profile_is_larger() {
        let fast = args(&[]);
        let full = args(&["--full"]);
        assert!(full.mnist_train_per_class() > fast.mnist_train_per_class());
        assert!(full.gtsrb_epochs() >= fast.gtsrb_epochs());
    }
}
