//! The allocation-free serving forward pass vs. the allocating baseline.
//!
//! PR 10's tentpole makes `check_batch`'s front half — pack the batch,
//! run the plan-observed forward pass, extract per-row patterns —
//! compute-bound instead of allocator-bound: weights are pre-packed once
//! at freeze/publish/load ([`naps_nn::PreparedModel`]), and each engine
//! worker owns a [`naps_core::prepared::PreparedObserver`] whose batch /
//! carry / pattern storage is refilled in place across micro-batches.
//!
//! This experiment drives both paths over the shared serving fixture at
//! the engine's micro-batch sizes, measures rows per second before and
//! after, counts heap allocations per micro-batch on each path via the
//! driving binary's counting global allocator, and verifies the prepared
//! rows are **identical** to the allocating path's on the whole
//! workload.  It writes `results/forward.json`; the driving binary exits
//! non-zero when the prepared path allocates at all in steady state,
//! when the single-row speedup falls below 1.3x, or on any divergence.

use crate::config::RunConfig;
use crate::report::{rule, write_json};
use naps_bench::serving_fixture;
use naps_core::prepared::PreparedObserver;
use naps_nn::ModelSnapshot;
use naps_serve::{FrozenLayeredMonitor, FrozenMonitor};
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One micro-batch size, timed on both paths over the same workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForwardRow {
    /// Rows per micro-batch.
    pub batch_size: usize,
    /// Allocating-path rows per second (`observe_batch`).
    pub allocating_qps: f64,
    /// Prepared-path rows per second (`observe_batch_prepared`).
    pub prepared_qps: f64,
    /// `prepared_qps / allocating_qps`.
    pub speedup: f64,
    /// Heap allocations per micro-batch on the allocating path.
    pub allocating_allocs_per_batch: f64,
    /// Heap allocations per micro-batch on the warmed prepared path
    /// (the gated column: must be exactly zero).
    pub prepared_allocs_per_batch: f64,
    /// Whether the prepared rows matched the allocating path's exactly.
    pub identical: bool,
}

/// The full before/after comparison the binary gates on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForwardEval {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Probe rows driven through each path per timed pass.
    pub workload: usize,
    /// One row per micro-batch size.
    pub rows: Vec<ForwardRow>,
    /// Total prepared-path allocations across every steady-state timed
    /// micro-batch (the hard gate: zero).
    pub steady_state_allocs: u64,
    /// The gated speedup: micro-batches of one row, the latency-bound
    /// serving case where the allocator dominates the forward pass.
    pub single_row_speedup: f64,
    /// Whether every batch size agreed on every row.
    pub all_identical: bool,
}

fn time_rows_per_sec<T>(rows: usize, repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(f());
    }
    (repeats * rows) as f64 / start.elapsed().as_secs_f64()
}

/// Runs the allocating-vs-prepared comparison and writes
/// `results/forward.json`.  `alloc_count` reads the driving binary's
/// counting global allocator (monotone allocation events); the library
/// cannot own the `#[global_allocator]` itself.
pub fn run(cfg: &RunConfig, alloc_count: fn() -> u64) -> ForwardEval {
    println!("== Allocation-free prepared forward pass vs allocating baseline ==");
    let (probes_n, repeats) = if cfg.full { (1920, 9) } else { (480, 4) };
    let (monitor, mut model, probes) = serving_fixture(6, probes_n, cfg.seed);
    let frozen = FrozenLayeredMonitor::from_single(FrozenMonitor::freeze(&monitor));

    // The cold half, once: capture the frozen weights and pre-pack them
    // against the monitor's observation plan — exactly what the engine
    // does per replica at construction/publish/load.
    let snapshot = ModelSnapshot::capture(&model).expect("the serving fixture is an MLP");
    let prepared = snapshot.prepare(frozen.plan());
    let mut observer = PreparedObserver::new();

    let batch_sizes = [1usize, 4, 16];
    let mut rows = Vec::new();
    let mut steady_state_allocs = 0u64;
    rule(78);
    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>12} {:>12} {:>6}",
        "batch", "alloc qps", "prepared qps", "speedup", "allocs/b", "prep allocs", "same"
    );
    rule(78);
    for &bs in &batch_sizes {
        let batches: Vec<&[Tensor]> = probes.chunks(bs).collect();
        let n_batches = batches.len();

        // Equivalence first: every prepared row must equal the
        // allocating path's on the whole workload.
        let mut identical = true;
        for chunk in &batches {
            let want = frozen.observe_batch(&mut model, chunk);
            let got = frozen.observe_batch_prepared(&prepared, &mut observer, chunk);
            if got != &want[..] {
                identical = false;
            }
        }

        // Allocation census: allocations per micro-batch on each path.
        // The prepared observer is already warm from the equivalence
        // sweep above, so everything it does now is steady state.
        let before = alloc_count();
        for chunk in &batches {
            std::hint::black_box(frozen.observe_batch(&mut model, chunk));
        }
        let allocating_allocs = alloc_count() - before;
        let before = alloc_count();
        for chunk in &batches {
            std::hint::black_box(frozen.observe_batch_prepared(&prepared, &mut observer, chunk));
        }
        let prepared_allocs = alloc_count() - before;
        steady_state_allocs += prepared_allocs;

        let allocating_qps = time_rows_per_sec(probes.len(), repeats, || {
            batches
                .iter()
                .map(|chunk| frozen.observe_batch(&mut model, chunk).len())
                .sum::<usize>()
        });
        let prepared_qps = time_rows_per_sec(probes.len(), repeats, || {
            batches
                .iter()
                .map(|chunk| {
                    frozen
                        .observe_batch_prepared(&prepared, &mut observer, chunk)
                        .len()
                })
                .sum::<usize>()
        });
        let speedup = prepared_qps / allocating_qps;
        let allocating_allocs_per_batch = allocating_allocs as f64 / n_batches as f64;
        let prepared_allocs_per_batch = prepared_allocs as f64 / n_batches as f64;
        println!(
            "{bs:>6} {allocating_qps:>14.0} {prepared_qps:>14.0} {speedup:>8.2} \
             {allocating_allocs_per_batch:>12.1} {prepared_allocs_per_batch:>12.1} \
             {identical:>6}"
        );
        rows.push(ForwardRow {
            batch_size: bs,
            allocating_qps,
            prepared_qps,
            speedup,
            allocating_allocs_per_batch,
            prepared_allocs_per_batch,
            identical,
        });
    }
    rule(78);

    let single_row_speedup = rows
        .iter()
        .find(|r| r.batch_size == 1)
        .map_or(0.0, |r| r.speedup);
    let all_identical = rows.iter().all(|r| r.identical);
    println!(
        "[single-row speedup {single_row_speedup:.2}x, steady-state prepared \
         allocations {steady_state_allocs}, all identical: {all_identical}]"
    );

    let result = ForwardEval {
        schema_version: 1,
        workload: probes.len(),
        rows,
        steady_state_allocs,
        single_row_speedup,
        all_identical,
    };
    write_json(&cfg.out_dir, "forward", &result);
    result
}
