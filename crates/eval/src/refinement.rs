//! Refinement ablation (paper Section V item 2): binary pattern monitor
//! vs. numeric abstract-domain refinements.
//!
//! The paper sketches refining the on/off abstraction "using tools such
//! as difference bound matrices".  This experiment quantifies that idea
//! on the network-1 setup: alongside the γ = 2 binary monitor of Table
//! II, it records per-class numeric envelopes of the monitored layer's
//! activations — the per-neuron box ([`naps_core::IntervalZone`]) and
//! the relational DBM ([`naps_core::DbmZone`]) — over the correctly
//! classified training inputs, then measures on the validation set how
//! each detector's warning rate and warning precision compare, plus the
//! union of binary and DBM warnings.
//!
//! Expected shape: the numeric domains warn more often (every envelope
//! violation is a warning even when the on/off pattern is familiar),
//! buying extra misclassification coverage at a lower per-warning
//! precision; the DBM warns at least as often as the box by
//! construction.  The binary monitor keeps the O(#neurons) query; the
//! numeric refinements pay O(#neurons) (box) / O(#neurons²) (DBM).

use crate::config::RunConfig;
use crate::report::{pct, rule, write_json};
use crate::trained::{train_mnist, TrainedClassifier};
use naps_core::batch::{forward_observe_plan, ObservationPlan, ObservedBatch};
use naps_core::{BddZone, DbmZone, IntervalZone, MonitorBuilder, NeuronSelection, Verdict};
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One detector's row of the ablation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefinementRow {
    /// Detector name (`binary γ=2`, `box s=0.5`, `dbm s=0.5`, …).
    pub detector: String,
    /// Fraction of validation inputs the detector warns on.
    pub flagged_rate: f64,
    /// Fraction of warnings that are misclassifications.
    pub warning_precision: f64,
    /// Fraction of all misclassifications the detector catches.
    pub warning_recall: f64,
    /// Raw warning count.
    pub flagged: usize,
    /// Validation-set size.
    pub total: usize,
}

/// The full refinement-ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Refinement {
    /// Version of this JSON result shape (bump on breaking change).
    pub schema_version: u32,
    /// Binary monitor's Hamming budget.
    pub gamma: u32,
    /// Validation misclassification rate of the underlying network.
    pub misclassification_rate: f64,
    /// Per-detector rows.
    pub rows: Vec<RefinementRow>,
}

/// Per-class numeric envelopes recorded alongside the binary zones.
struct NumericZones {
    boxes: Vec<IntervalZone>,
    dbms: Vec<DbmZone>,
}

/// Projects the monitored layer's raw activations of one batch row.
fn monitored_values(monitored: &Tensor, selection: &NeuronSelection, row: usize) -> Vec<f32> {
    let full = monitored.row(row);
    selection.indices().iter().map(|&i| full[i]).collect()
}

fn record_numeric_zones(
    trained: &mut TrainedClassifier,
    selection: &NeuronSelection,
    num_classes: usize,
) -> NumericZones {
    let width = selection.len();
    let mut zones = NumericZones {
        boxes: (0..num_classes)
            .map(|_| IntervalZone::empty(width))
            .collect(),
        dbms: (0..num_classes).map(|_| DbmZone::empty(width)).collect(),
    };
    let layer = trained.monitor_layer;
    let samples = trained.train.samples.clone();
    let labels = trained.train.labels.clone();
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(64) {
        let feat = samples[chunk[0]].len();
        let mut data = Vec::with_capacity(chunk.len() * feat);
        for &i in chunk {
            data.extend_from_slice(samples[i].data());
        }
        let batch = Tensor::from_vec(vec![chunk.len(), feat], data);
        let ObservedBatch {
            predicted,
            observed,
        } = forward_observe_plan(&mut trained.model, &batch, &ObservationPlan::single(layer));
        for (r, &i) in chunk.iter().enumerate() {
            let pred = predicted[r];
            // Algorithm 1's filter: only correctly classified inputs shape
            // the comfort zone, numeric or binary alike.
            if pred == labels[i] {
                let values = monitored_values(&observed[0], selection, r);
                zones.boxes[pred].insert(&values);
                zones.dbms[pred].insert(&values);
            }
        }
    }
    zones
}

struct Tally {
    flagged: usize,
    flagged_miscls: usize,
}

impl Tally {
    fn new() -> Self {
        Tally {
            flagged: 0,
            flagged_miscls: 0,
        }
    }

    fn add(&mut self, warned: bool, miscls: bool) {
        if warned {
            self.flagged += 1;
            if miscls {
                self.flagged_miscls += 1;
            }
        }
    }

    fn row(&self, detector: &str, total: usize, miscls_total: usize) -> RefinementRow {
        RefinementRow {
            detector: detector.to_string(),
            flagged_rate: self.flagged as f64 / total.max(1) as f64,
            warning_precision: self.flagged_miscls as f64 / self.flagged.max(1) as f64,
            warning_recall: self.flagged_miscls as f64 / miscls_total.max(1) as f64,
            flagged: self.flagged,
            total,
        }
    }
}

/// One validation observation, gathered in a single evaluation pass.
struct Observation {
    miscls: bool,
    binary_warn: bool,
    box_violation: f32,
    dbm_violation: f32,
}

/// Slack levels swept for the numeric domains — the numeric analogue of
/// the γ sweep: larger slack = coarser abstraction (Figure 2's spectrum).
const SLACKS: [f32; 4] = [0.0, 0.5, 1.0, 2.0];

/// Runs the refinement ablation on the network-1 (MNIST-like) setup.
pub fn run(cfg: &RunConfig) -> Refinement {
    println!("== Refinement ablation: binary monitor vs numeric domains ==");
    let gamma = 2;
    let mut trained = train_mnist(cfg);
    let num_classes = 10;
    let selection = NeuronSelection::all(naps_nn::MNIST_MONITOR_WIDTH);

    println!("[building binary monitor (γ={gamma}) and numeric envelopes]");
    let monitor = MonitorBuilder::new(trained.monitor_layer, gamma)
        .with_selection(selection.clone())
        .build::<BddZone>(
            &mut trained.model,
            &trained.train.samples.clone(),
            &trained.train.labels.clone(),
            num_classes,
        );
    let numeric = record_numeric_zones(&mut trained, &selection, num_classes);

    println!("[evaluating detectors on the validation split]");
    let val_x = trained.val.samples.clone();
    let val_y = trained.val.labels.clone();
    let total = val_x.len();
    let mut observations = Vec::with_capacity(total);

    let layer = trained.monitor_layer;
    let indices: Vec<usize> = (0..total).collect();
    for chunk in indices.chunks(64) {
        let feat = val_x[chunk[0]].len();
        let mut data = Vec::with_capacity(chunk.len() * feat);
        for &i in chunk {
            data.extend_from_slice(val_x[i].data());
        }
        let batch = Tensor::from_vec(vec![chunk.len(), feat], data);
        let ObservedBatch {
            predicted,
            observed,
        } = forward_observe_plan(&mut trained.model, &batch, &ObservationPlan::single(layer));
        for (r, &i) in chunk.iter().enumerate() {
            let pred = predicted[r];
            let pattern = selection.pattern_from(observed[0].row(r));
            let values = monitored_values(&observed[0], &selection, r);
            observations.push(Observation {
                miscls: pred != val_y[i],
                binary_warn: monitor.check_pattern(pred, &pattern) == Verdict::OutOfPattern,
                // An empty envelope (class never correctly predicted in
                // training) rejects everything: infinite violation.
                box_violation: numeric.boxes[pred]
                    .violation(&values)
                    .unwrap_or(f32::INFINITY),
                dbm_violation: numeric.dbms[pred]
                    .violation(&values)
                    .unwrap_or(f32::INFINITY),
            });
        }
    }

    let miscls_total = observations.iter().filter(|o| o.miscls).count();
    let tally = |warn: &dyn Fn(&Observation) -> bool, name: &str| -> RefinementRow {
        let mut t = Tally::new();
        for o in &observations {
            t.add(warn(o), o.miscls);
        }
        t.row(name, total, miscls_total)
    };

    let mut rows = vec![tally(&|o| o.binary_warn, &format!("binary γ={gamma}"))];
    for s in SLACKS {
        rows.push(tally(&|o| o.box_violation > s, &format!("box s={s}")));
    }
    for s in SLACKS {
        rows.push(tally(&|o| o.dbm_violation > s, &format!("dbm s={s}")));
    }
    rows.push(tally(
        &|o| o.binary_warn || o.dbm_violation > *SLACKS.last().expect("nonempty"),
        &format!("binary ∪ dbm s={}", SLACKS.last().expect("nonempty")),
    ));

    let result = Refinement {
        schema_version: 1,
        gamma,
        misclassification_rate: miscls_total as f64 / total.max(1) as f64,
        rows,
    };
    print_table(&result);
    write_json(&cfg.out_dir, "refinement", &result);
    result
}

fn print_table(result: &Refinement) {
    rule(78);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "detector", "flag rate", "precision", "recall", "#flagged"
    );
    rule(78);
    for r in &result.rows {
        println!(
            "{:<14} {:>14} {:>14} {:>14} {:>14}",
            r.detector,
            pct(r.flagged_rate),
            pct(r.warning_precision),
            pct(r.warning_recall),
            format!("{}/{}", r.flagged, r.total),
        );
    }
    rule(78);
    println!(
        "(network misclassification rate: {}; dbm refines box: dbm flag rate ≥ box flag rate)",
        pct(result.misclassification_rate)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_computes_rates_and_precision() {
        let mut t = Tally::new();
        t.add(true, true);
        t.add(true, false);
        t.add(false, true);
        t.add(false, false);
        let row = t.row("probe", 4, 2);
        assert_eq!(row.flagged, 2);
        assert!((row.flagged_rate - 0.5).abs() < 1e-12);
        assert!((row.warning_precision - 0.5).abs() < 1e-12);
        assert!((row.warning_recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_does_not_divide_by_zero() {
        let t = Tally::new();
        let row = t.row("empty", 0, 0);
        assert_eq!(row.flagged_rate, 0.0);
        assert_eq!(row.warning_precision, 0.0);
        assert_eq!(row.warning_recall, 0.0);
    }

    #[test]
    fn slack_sweep_is_ordered() {
        // The swept slacks must be strictly increasing so the table reads
        // as a coarseness spectrum.
        for w in SLACKS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
