//! Integration: YOLO-style grid monitoring (Section V extension (1))
//! through the umbrella crate with BDD-backed zones — a shared proposal
//! head, per-cell comfort zones, whole-frame queries.

use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, GridMonitor, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps::tensor::{Randn, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: usize = 8;
const CLASSES: usize = 3;

fn cell_features(class: usize, rng: &mut StdRng) -> Tensor {
    let data: Vec<f32> = (0..FEATURES)
        .map(|i| {
            let centre = match class {
                0 => 0.0,
                1 => (i as f32 * 0.8).sin() * 2.0,
                _ => (i as f32 * 1.3).cos() * 2.0,
            };
            centre + 0.25 * rng.randn()
        })
        .collect();
    Tensor::from_vec(vec![FEATURES], data)
}

fn shared_head(rng: &mut StdRng) -> Sequential {
    let mut head = mlp(&[FEATURES, 16, CLASSES], rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..300 {
        let c = rng.gen_range(0..CLASSES);
        xs.push(cell_features(c, rng));
        ys.push(c);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 25,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(&mut head, &xs, &ys, &mut Adam::new(0.01), rng);
    head
}

/// Per-cell traffic: each cell sees a different dominant class.
fn per_cell_traffic(rng: &mut StdRng) -> Vec<(Vec<Tensor>, Vec<usize>)> {
    [0usize, 1, 1, 2]
        .iter()
        .map(|&dominant| {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..60 {
                let c = if rng.gen::<f32>() < 0.8 {
                    dominant
                } else {
                    rng.gen_range(0..CLASSES)
                };
                xs.push(cell_features(c, rng));
                ys.push(c);
            }
            (xs, ys)
        })
        .collect()
}

#[test]
fn grid_monitor_localises_unfamiliar_proposals() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut head = shared_head(&mut rng);
    let traffic = per_cell_traffic(&mut rng);
    let grid = GridMonitor::<BddZone>::build(
        2,
        2,
        &MonitorBuilder::new(1, 1),
        &mut head,
        &traffic,
        CLASSES,
    );

    // A nominal frame (each cell sees its dominant class) stays quiet in
    // most cells over repeated draws.
    let mut nominal_warnings = 0usize;
    let mut frames = 0usize;
    for _ in 0..20 {
        let frame: Vec<Tensor> = [0usize, 1, 1, 2]
            .iter()
            .map(|&c| cell_features(c, &mut rng))
            .collect();
        let report = grid.check_frame(&mut head, &frame);
        nominal_warnings += report.out_of_pattern_cells.len();
        frames += 4;
    }
    let nominal_rate = nominal_warnings as f64 / frames as f64;

    // An alien blob in one cell: that cell's warning rate dominates.
    let mut alien_cell0 = 0usize;
    let mut alien_other = 0usize;
    for _ in 0..20 {
        let mut frame: Vec<Tensor> = [0usize, 1, 1, 2]
            .iter()
            .map(|&c| cell_features(c, &mut rng))
            .collect();
        frame[0] = Tensor::from_vec(vec![FEATURES], vec![8.0; FEATURES]);
        let report = grid.check_frame(&mut head, &frame);
        for &c in &report.out_of_pattern_cells {
            if c == 0 {
                alien_cell0 += 1;
            } else {
                alien_other += 1;
            }
        }
    }
    assert!(
        alien_cell0 >= 15,
        "alien object missed in its cell: {alien_cell0}/20"
    );
    assert!(
        alien_cell0 > alien_other,
        "warnings not localised: cell0 {alien_cell0} vs others {alien_other}"
    );
    assert!(
        nominal_rate < 0.5,
        "nominal frames too noisy: {nominal_rate:.2}"
    );
}

#[test]
fn grid_enlargement_reduces_nominal_warnings() {
    let mut rng = StdRng::seed_from_u64(78);
    let mut head = shared_head(&mut rng);
    let traffic = per_cell_traffic(&mut rng);
    let mut grid = GridMonitor::<BddZone>::build(
        2,
        2,
        &MonitorBuilder::new(1, 0),
        &mut head,
        &traffic,
        CLASSES,
    );
    let frames: Vec<Vec<Tensor>> = (0..25)
        .map(|_| {
            [0usize, 1, 1, 2]
                .iter()
                .map(|&c| cell_features(c, &mut rng))
                .collect()
        })
        .collect();
    let count = |grid: &GridMonitor<BddZone>, head: &mut Sequential| -> usize {
        frames
            .iter()
            .map(|f| grid.check_frame(head, f).out_of_pattern_cells.len())
            .sum()
    };
    let before = count(&grid, &mut head);
    grid.enlarge_to(3);
    let after = count(&grid, &mut head);
    assert!(
        after <= before,
        "γ-enlargement increased warnings: {before} -> {after}"
    );

    // Verdicts never flip InPattern -> OutOfPattern under enlargement.
    for f in &frames {
        for cell in grid.check_frame(&mut head, f).cells {
            assert_ne!(cell.verdict, Verdict::Unmonitored);
        }
    }
}
