//! Integration: the front-car pipeline's monitor verdicts feeding the
//! drift detector — the fleet-level story of the paper's introduction
//! ("the network deployed on an autonomous vehicle needs to be updated")
//! on the Figure 3 case study.

use naps::frontcar::{Conditions, FrontCarPipeline, PipelineConfig, Scenario};
use naps::monitor::{DriftConfig, DriftDetector, DriftStatus, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline(seed: u64) -> (FrontCarPipeline, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = FrontCarPipeline::train(
        PipelineConfig {
            train_scenarios: 800,
            epochs: 12,
            ..PipelineConfig::default()
        },
        &mut rng,
    );
    (pipeline, rng)
}

fn stream(
    pipeline: &mut FrontCarPipeline,
    conditions: Conditions,
    n: usize,
    rng: &mut StdRng,
) -> Vec<Verdict> {
    (0..n)
        .map(|_| {
            let scenario = Scenario::sample(conditions, rng);
            pipeline.step(&scenario, rng).verdict
        })
        .collect()
}

#[test]
fn degraded_sensor_episode_raises_the_fleet_alarm() {
    let (mut pipeline, mut rng) = pipeline(3);

    // Calibrate on nominal traffic.
    let nominal = stream(&mut pipeline, Conditions::nominal(), 400, &mut rng);
    let baseline = nominal
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / nominal.len() as f64;
    let degraded = stream(&mut pipeline, Conditions::degraded_sensor(), 400, &mut rng);
    let degraded_rate = degraded
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / degraded.len() as f64;
    assert!(
        degraded_rate > baseline,
        "degraded sensing did not raise the warning rate: {degraded_rate:.3} <= {baseline:.3}"
    );

    // The alarm threshold sits between the two measured rates, as a team
    // calibrating on validation data would place it.
    let config = DriftConfig {
        baseline_rate: baseline,
        alarm_rate: (baseline + degraded_rate) / 2.0,
        window: 100,
        ewma_alpha: 0.05,
        patience: 15,
    };
    let mut det = DriftDetector::new(config);

    // Nominal deployment: no alarm.
    det.observe_all(&nominal);
    assert_ne!(
        det.status(),
        DriftStatus::Drifting,
        "nominal traffic alarmed"
    );
    let nominal_alarms = det.alarm_count();

    // Sensor degradation episode: the alarm must fire within the episode.
    let mut fired = false;
    for v in &degraded {
        if det.observe(*v) == DriftStatus::Drifting {
            fired = true;
        }
    }
    assert!(fired, "degraded-sensor episode never alarmed");
    assert!(det.alarm_count() > nominal_alarms);
}

#[test]
fn monitor_distance_grows_under_degraded_sensing() {
    let (mut pipeline, mut rng) = pipeline(5);
    let sum_distance =
        |pipeline: &mut FrontCarPipeline, conditions: Conditions, rng: &mut StdRng| {
            let mut total = 0u64;
            let mut count = 0u64;
            for _ in 0..300 {
                let scenario = Scenario::sample(conditions, rng);
                if let Some(d) = pipeline.step(&scenario, rng).distance_to_seeds {
                    total += u64::from(d);
                    count += 1;
                }
            }
            total as f64 / count.max(1) as f64
        };
    let nominal = sum_distance(&mut pipeline, Conditions::nominal(), &mut rng);
    let degraded = sum_distance(&mut pipeline, Conditions::degraded_sensor(), &mut rng);
    // The mean Hamming distance to the training patterns is the graded
    // version of the out-of-pattern verdict; degradation should push
    // activations further from the comfort zones on average.
    assert!(
        degraded >= nominal,
        "mean distance fell under degradation: {degraded:.3} < {nominal:.3}"
    );
}
