//! End-to-end integration: data generation → training → Algorithm 1 →
//! deployment queries, across crates.

use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{evaluate, BddZone, ExactZone, Monitor, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3; // fc, relu, fc, relu <- monitored, fc

fn trained_digit_mlp(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(10, digits::DigitStyle::hard(), &mut rng);
    let mut net = mlp(&[784, 48, 24, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

#[test]
fn classifier_learns_the_synthetic_digits() {
    let (mut net, train, _) = trained_digit_mlp(0);
    let trainer = Trainer::new(TrainConfig::default());
    let acc = trainer.evaluate(&mut net, &train.samples, &train.labels);
    assert!(acc > 0.9, "train accuracy {acc}");
}

#[test]
fn soundness_no_correct_training_input_warns() {
    // The paper's central guarantee (Section IV): the comfort zone is a
    // sound over-approximation of the visited patterns, so a warning on a
    // correctly classified training input is impossible at any γ.
    let (mut net, train, _) = trained_digit_mlp(1);
    for gamma in [0u32, 1] {
        let monitor = MonitorBuilder::new(MONITORED_LAYER, gamma).build::<BddZone>(
            &mut net,
            &train.samples,
            &train.labels,
            10,
        );
        let reports = monitor.check_batch(&mut net, &train.samples);
        for (rep, &label) in reports.iter().zip(&train.labels) {
            if rep.predicted == label {
                assert_eq!(
                    rep.verdict,
                    Verdict::InPattern,
                    "gamma={gamma}: correct training input flagged"
                );
            }
        }
    }
}

#[test]
fn gamma_monotonicity_on_validation_data() {
    let (mut net, train, val) = trained_digit_mlp(2);
    let mut monitor = MonitorBuilder::new(MONITORED_LAYER, 0).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let mut prev_oop = usize::MAX;
    for gamma in 0..4 {
        monitor.enlarge_to(gamma);
        let stats = evaluate(&monitor, &mut net, &val.samples, &val.labels, 64);
        assert!(
            stats.out_of_pattern <= prev_oop,
            "gamma {gamma}: warnings grew from {prev_oop} to {}",
            stats.out_of_pattern
        );
        prev_oop = stats.out_of_pattern;
    }
}

#[test]
fn bdd_and_exact_backends_agree_end_to_end() {
    let (mut net, train, val) = trained_digit_mlp(3);
    let builder = MonitorBuilder::new(MONITORED_LAYER, 1);
    let bdd = builder.build::<BddZone>(&mut net, &train.samples, &train.labels, 10);
    let exact = builder.build::<ExactZone>(&mut net, &train.samples, &train.labels, 10);
    let ra = bdd.check_batch(&mut net, &val.samples);
    let rb = exact.check_batch(&mut net, &val.samples);
    for (a, b) in ra.iter().zip(&rb) {
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.distance_to_seeds, b.distance_to_seeds);
    }
}

#[test]
fn verdict_agrees_with_reported_distance() {
    // OutOfPattern <=> distance to seeds exceeds gamma (for in-gamma
    // verdicts the distance is at most gamma... strictly: contains <=>
    // dist <= gamma, because the zone is exactly the gamma-ball union).
    let (mut net, train, val) = trained_digit_mlp(4);
    let gamma = 1u32;
    let monitor = MonitorBuilder::new(MONITORED_LAYER, gamma).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    for rep in monitor.check_batch(&mut net, &val.samples) {
        match (rep.verdict, rep.distance_to_seeds) {
            (Verdict::InPattern, Some(d)) => assert!(d <= gamma, "in-pattern at distance {d}"),
            (Verdict::OutOfPattern, Some(d)) => {
                assert!(d > gamma, "out-of-pattern at distance {d}")
            }
            (Verdict::OutOfPattern, None) => {} // empty zone for that class
            (v, d) => panic!("inconsistent report: {v:?} with distance {d:?}"),
        }
    }
}

#[test]
fn snapshot_survives_json_roundtrip_end_to_end() {
    let (mut net, train, val) = trained_digit_mlp(5);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let json = serde_json::to_string(&monitor.snapshot()).expect("serialize");
    let snap = serde_json::from_str(&json).expect("deserialize");
    let restored = Monitor::from_snapshot(&snap).expect("restore");
    let before = monitor.check_batch(&mut net, &val.samples);
    let after = restored.check_batch(&mut net, &val.samples);
    assert_eq!(before, after);
}

#[test]
fn harder_validation_data_warns_more_than_training_data() {
    let (mut net, train, val) = trained_digit_mlp(6);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 0).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let on_train = evaluate(&monitor, &mut net, &train.samples, &train.labels, 64);
    let on_val = evaluate(&monitor, &mut net, &val.samples, &val.labels, 64);
    assert!(
        on_val.out_of_pattern_rate() >= on_train.out_of_pattern_rate(),
        "validation ({}) should warn at least as often as training ({})",
        on_val.out_of_pattern_rate(),
        on_train.out_of_pattern_rate()
    );
}
