//! Integration: joint monitoring of several ReLU layers of one trained
//! digit classifier, combined with the Any/All/Majority policies.

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, CombinePolicy, LayeredMonitor, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

// The 784-48-24-10 MLP has monitorable ReLUs after layers 1 and 3.
const SHALLOW_LAYER: usize = 1;
const DEEP_LAYER: usize = 3;

fn fixture(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(12, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 48, 24, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

fn layered(
    net: &mut Sequential,
    train: &naps::data::Dataset,
    gamma: u32,
    policy: CombinePolicy,
) -> LayeredMonitor<BddZone> {
    let shallow = MonitorBuilder::new(SHALLOW_LAYER, gamma).build::<BddZone>(
        net,
        &train.samples,
        &train.labels,
        10,
    );
    let deep = MonitorBuilder::new(DEEP_LAYER, gamma).build::<BddZone>(
        net,
        &train.samples,
        &train.labels,
        10,
    );
    LayeredMonitor::new(vec![shallow, deep], policy)
}

#[test]
fn soundness_extends_across_layers() {
    let (mut net, train, _) = fixture(31);
    let jm = layered(&mut net, &train, 0, CombinePolicy::Any);
    for (x, &y) in train.samples.iter().zip(&train.labels) {
        let rep = jm.check(&mut net, x);
        if rep.predicted == y {
            assert_eq!(
                rep.combined,
                Verdict::InPattern,
                "correct training input flagged at some layer: {:?}",
                rep.per_layer
            );
        }
    }
}

#[test]
fn policy_warning_rates_are_ordered_on_shifted_data() {
    let (mut net, train, val) = fixture(37);
    let mut rng = StdRng::seed_from_u64(38);
    let noisy = shift_dataset(&val, 1, 28, Corruption::GaussianNoise(0.4), &mut rng);

    let rate = |policy: CombinePolicy, net: &mut Sequential| -> f64 {
        let jm = layered(net, &train, 1, policy);
        let reports = jm.check_batch(net, &noisy.samples);
        reports
            .iter()
            .filter(|r| r.combined == Verdict::OutOfPattern)
            .count() as f64
            / reports.len() as f64
    };
    let any = rate(CombinePolicy::Any, &mut net);
    let maj = rate(CombinePolicy::Majority, &mut net);
    let all = rate(CombinePolicy::All, &mut net);
    assert!(
        any >= maj && maj >= all,
        "any={any:.3} maj={maj:.3} all={all:.3}"
    );
    assert!(any > 0.0, "heavy noise never flagged on any layer");
}

#[test]
fn per_layer_verdicts_match_standalone_monitors() {
    let (mut net, train, val) = fixture(41);
    let jm = layered(&mut net, &train, 1, CombinePolicy::Majority);
    let shallow_alone = MonitorBuilder::new(SHALLOW_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let deep_alone = MonitorBuilder::new(DEEP_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    for x in val.samples.iter().take(20) {
        let joint = jm.check(&mut net, x);
        let s = shallow_alone.check(&mut net, x);
        let d = deep_alone.check(&mut net, x);
        assert_eq!(joint.predicted, s.predicted);
        assert_eq!(joint.per_layer[0], s.verdict);
        assert_eq!(joint.per_layer[1], d.verdict);
    }
}

#[test]
fn enlarging_the_layered_monitor_is_monotone() {
    let (mut net, train, val) = fixture(43);
    let mut jm = layered(&mut net, &train, 0, CombinePolicy::Any);
    let before: Vec<Verdict> = jm
        .check_batch(&mut net, &val.samples)
        .into_iter()
        .map(|r| r.combined)
        .collect();
    jm.enlarge_to(2);
    let after: Vec<Verdict> = jm
        .check_batch(&mut net, &val.samples)
        .into_iter()
        .map(|r| r.combined)
        .collect();
    for (b, a) in before.iter().zip(&after) {
        if *b == Verdict::InPattern {
            assert_eq!(*a, Verdict::InPattern, "enlargement evicted a member");
        }
    }
}
