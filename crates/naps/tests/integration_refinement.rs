//! Integration: numeric abstract-domain refinements (Section V item 2)
//! layered on top of the binary monitor, across crates — the trained
//! network's monitored activations feed `IntervalZone` and `DbmZone`
//! envelopes whose verdicts refine the BDD monitor's.

use naps::data::digits;
use naps::monitor::{BddZone, DbmZone, IntervalZone, MonitorBuilder, NeuronSelection, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3;
const WIDTH: usize = 24;

fn fixture(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(12, digits::DigitStyle::hard(), &mut rng);
    let mut net = mlp(&[784, 48, WIDTH, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

/// Records per-class box and DBM envelopes of the monitored layer over
/// correctly classified training inputs (the Algorithm 1 filter).
fn numeric_envelopes(
    net: &mut Sequential,
    samples: &[Tensor],
    labels: &[usize],
    selection: &NeuronSelection,
) -> (Vec<IntervalZone>, Vec<DbmZone>) {
    let mut boxes: Vec<IntervalZone> = (0..10).map(|_| IntervalZone::empty(WIDTH)).collect();
    let mut dbms: Vec<DbmZone> = (0..10).map(|_| DbmZone::empty(WIDTH)).collect();
    for (x, &y) in samples.iter().zip(labels) {
        let batch = Tensor::from_vec(vec![1, x.len()], x.data().to_vec());
        let acts = net.forward_all(&batch, false);
        let logits = acts.last().expect("nonempty");
        let row = logits.row(0);
        let mut pred = 0;
        for (c, &v) in row.iter().enumerate() {
            if v > row[pred] {
                pred = c;
            }
        }
        if pred == y {
            let full = acts[MONITORED_LAYER + 1].row(0);
            let values: Vec<f32> = selection.indices().iter().map(|&i| full[i]).collect();
            boxes[y].insert(&values);
            dbms[y].insert(&values);
        }
    }
    (boxes, dbms)
}

#[test]
fn numeric_envelopes_are_sound_and_refine_the_box() {
    let (mut net, train, val) = fixture(19);
    let selection = NeuronSelection::all(WIDTH);
    let (boxes, dbms) = numeric_envelopes(&mut net, &train.samples, &train.labels, &selection);

    let mut checked = 0usize;
    let mut dbm_only_flags = 0usize;
    for split in [&train, &val] {
        for x in &split.samples {
            let batch = Tensor::from_vec(vec![1, x.len()], x.data().to_vec());
            let acts = net.forward_all(&batch, false);
            let logits = acts.last().expect("nonempty");
            let row = logits.row(0);
            let mut pred = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[pred] {
                    pred = c;
                }
            }
            if boxes[pred].sample_count() == 0 {
                continue;
            }
            let full = acts[MONITORED_LAYER + 1].row(0);
            let values: Vec<f32> = selection.indices().iter().map(|&i| full[i]).collect();
            // Refinement: DBM acceptance implies box acceptance.
            if dbms[pred].contains(&values, 0.0) {
                assert!(
                    boxes[pred].contains(&values, 0.0),
                    "dbm looser than box on an activation vector"
                );
            } else if boxes[pred].contains(&values, 0.0) {
                dbm_only_flags += 1;
            }
            checked += 1;
        }
    }
    assert!(checked > 50, "fixture produced too few monitored queries");
    // The hard validation style should exercise the relational constraints
    // at least once; if not, the refinement never separates from the box
    // and the test setup is too easy.
    assert!(
        dbm_only_flags > 0,
        "dbm never flagged anything the box accepted over {checked} queries"
    );
}

#[test]
fn training_activations_are_inside_their_own_numeric_envelope() {
    let (mut net, train, _) = fixture(23);
    let selection = NeuronSelection::all(WIDTH);
    let (boxes, dbms) = numeric_envelopes(&mut net, &train.samples, &train.labels, &selection);
    for (x, &y) in train.samples.iter().zip(&train.labels) {
        let batch = Tensor::from_vec(vec![1, x.len()], x.data().to_vec());
        let acts = net.forward_all(&batch, false);
        let logits = acts.last().expect("nonempty");
        let row = logits.row(0);
        let mut pred = 0;
        for (c, &v) in row.iter().enumerate() {
            if v > row[pred] {
                pred = c;
            }
        }
        if pred != y {
            continue; // misclassified inputs never shaped the envelope
        }
        let full = acts[MONITORED_LAYER + 1].row(0);
        let values: Vec<f32> = selection.indices().iter().map(|&i| full[i]).collect();
        assert!(
            boxes[y].contains(&values, 0.0),
            "box evicted a training input"
        );
        assert!(
            dbms[y].contains(&values, 0.0),
            "dbm evicted a training input"
        );
    }
}

#[test]
fn binary_and_numeric_verdicts_combine_into_a_stricter_detector() {
    let (mut net, train, val) = fixture(29);
    let selection = NeuronSelection::all(WIDTH);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1)
        .with_selection(selection.clone())
        .build::<BddZone>(&mut net, &train.samples, &train.labels, 10);
    let (_, dbms) = numeric_envelopes(&mut net, &train.samples, &train.labels, &selection);

    let mut binary_flags = 0usize;
    let mut union_flags = 0usize;
    for x in &val.samples {
        let batch = Tensor::from_vec(vec![1, x.len()], x.data().to_vec());
        let acts = net.forward_all(&batch, false);
        let logits = acts.last().expect("nonempty");
        let row = logits.row(0);
        let mut pred = 0;
        for (c, &v) in row.iter().enumerate() {
            if v > row[pred] {
                pred = c;
            }
        }
        let pattern = selection.pattern_from(acts[MONITORED_LAYER + 1].row(0));
        let bin = monitor.check_pattern(pred, &pattern) == Verdict::OutOfPattern;
        let full = acts[MONITORED_LAYER + 1].row(0);
        let values: Vec<f32> = selection.indices().iter().map(|&i| full[i]).collect();
        let dbm = !dbms[pred].contains(&values, 1.0);
        binary_flags += usize::from(bin);
        union_flags += usize::from(bin || dbm);
    }
    assert!(
        union_flags >= binary_flags,
        "the union detector cannot flag less than the binary monitor"
    );
}
