//! Concurrency integration: a deployed monitor is queried from the
//! perception loop while other threads (diagnostics, logging) hold
//! references — the monitor must be shareable for reads.

use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, MonitorBuilder, Pattern, Zone};
use naps::nn::{mlp, Adam, TrainConfig, Trainer};
use naps::tensor::Tensor;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

#[test]
fn monitor_pattern_queries_are_shareable_across_threads() {
    // Train a small model and build a monitor.
    let mut rng = StdRng::seed_from_u64(50);
    let mut net = mlp(&[4, 16, 3], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..90 {
        let c = i % 3;
        let base = c as f32 - 1.0;
        xs.push(Tensor::from_vec(
            vec![4],
            (0..4)
                .map(|k| base + 0.1 * (k as f32 + i as f32).sin())
                .collect(),
        ));
        ys.push(c);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 16,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    let monitor = Arc::new(MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, 3));

    // Fan out read-only pattern queries from several threads.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let m = Arc::clone(&monitor);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(t);
            let mut hits = 0usize;
            for _ in 0..200 {
                let bits: Vec<bool> = (0..16).map(|_| rng.gen()).collect();
                let p = Pattern::from_bools(&bits);
                for c in 0..3 {
                    if m.check_pattern(c, &p) == naps::monitor::Verdict::InPattern {
                        hits += 1;
                    }
                }
            }
            hits
        }));
    }
    for h in handles {
        let _ = h.join().expect("query thread panicked");
    }
}

#[test]
fn model_behind_rwlock_serves_monitored_checks() {
    let mut rng = StdRng::seed_from_u64(51);
    let mut net = mlp(&[2, 8, 2], &mut rng);
    let xs: Vec<Tensor> = (0..20)
        .map(|i| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            Tensor::from_vec(vec![2], vec![s, s])
        })
        .collect();
    let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
    let trainer = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 4,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
    let monitor = Arc::new(MonitorBuilder::new(1, 0).build::<BddZone>(&mut net, &xs, &ys, 2));
    let model = Arc::new(RwLock::new(net));

    let mut handles = Vec::new();
    for probe in xs.iter().take(3) {
        let m = Arc::clone(&monitor);
        let net = Arc::clone(&model);
        let probe = probe.clone();
        handles.push(std::thread::spawn(move || {
            // Forward passes mutate layer caches, so take the write lock —
            // the monitor itself stays shared.
            let mut guard = net.write();
            m.check(&mut guard, &probe)
        }));
    }
    for h in handles {
        let rep = h.join().expect("check thread panicked");
        assert!(rep.predicted < 2);
    }
}

#[test]
fn serve_engine_replaces_the_rwlock_deployment() {
    // The RwLock deployment above serialises every forward pass; the
    // naps-serve engine replicates the model per worker instead and
    // shares the monitor as immutable frozen shards — same verdicts, no
    // lock on the query path.
    let mut rng = StdRng::seed_from_u64(52);
    let mut net = mlp(&[4, 16, 3], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..90 {
        let c = i % 3;
        let base = c as f32 - 1.0;
        xs.push(Tensor::from_vec(
            vec![4],
            (0..4)
                .map(|k| base + 0.1 * (k as f32 + i as f32).sin())
                .collect(),
        ));
        ys.push(c);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 16,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    let monitor = MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, 3);

    let engine = naps::serve::MonitorEngine::new(
        &monitor,
        &net,
        naps::serve::EngineConfig {
            workers: 3,
            max_batch: 8,
            queue_capacity: 64,
        },
    )
    .expect("mlp replicates");
    let served = engine.check_batch(&xs).expect("engine is up");
    for (x, served) in xs.iter().zip(&served) {
        assert_eq!(monitor.check(&mut net, x), served.report);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.processed, xs.len() as u64);
}

#[test]
fn zone_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<BddZone>();
    assert_send::<naps::monitor::ExactZone>();
    assert_send::<naps::monitor::Monitor<BddZone>>();
    // Zone construction on a worker thread.
    let handle = std::thread::spawn(|| {
        let mut z = BddZone::empty(8);
        z.insert(&Pattern::from_bools(&[true; 8]));
        z.enlarge_to(1);
        z.seed_count()
    });
    assert_eq!(handle.join().expect("worker"), 1);
}
