//! Integration: the whole monitor family behind one generic interface.
//!
//! Every deployable monitor — [`Monitor`], [`LayeredMonitor`],
//! [`RefinedMonitor`], [`GridMonitor`] — implements `ActivationMonitor`,
//! so deployment glue can be written once.  These tests drive all four
//! through the same generic functions (no `dyn`, no per-type code) and
//! pin the trait's core contract: `check_batch` is equivalent to mapping
//! `check` over the inputs, and `out_of_pattern` reflects the combined
//! verdict.

use naps::monitor::{
    ActivationMonitor, BddZone, CombinePolicy, ExactZone, GridMonitor, LayeredMonitor,
    MonitorBuilder, MonitorOutcome, NumericDomain, RefinedMonitor, Verdict,
};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generic: batched judgement must equal per-item judgement.
fn assert_batch_matches_single<M: ActivationMonitor>(
    monitor: &M,
    net: &mut Sequential,
    inputs: &[Tensor],
) where
    M::Report: PartialEq + std::fmt::Debug,
{
    let batched = monitor.check_batch(net, inputs);
    assert_eq!(batched.len(), inputs.len(), "one report per input");
    for (i, (input, want)) in inputs.iter().zip(&batched).enumerate() {
        let got = monitor.check(net, input);
        assert_eq!(&got, want, "batch/single disagree on input {i}");
    }
    assert!(monitor.check_batch(net, &[]).is_empty());
}

/// Generic: fraction of inputs that warn, via the uniform accessor.
fn warning_rate<M: ActivationMonitor>(monitor: &M, net: &mut Sequential, inputs: &[Tensor]) -> f64 {
    let reports = monitor.check_batch(net, inputs);
    reports.iter().filter(|r| r.out_of_pattern()).count() as f64 / inputs.len().max(1) as f64
}

fn two_blob_problem(seed: u64) -> (Sequential, Vec<Tensor>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = mlp(&[2, 10, 8, 2], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..60 {
        let s = if i % 2 == 0 { 1.2f32 } else { -1.2 };
        let wiggle = (i as f32 * 0.23).sin() * 0.25;
        xs.push(Tensor::from_vec(vec![2], vec![s + wiggle, s - wiggle]));
        ys.push(i % 2);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 70,
        batch_size: 8,
        verbose: false,
    });
    trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
    (net, xs, ys)
}

fn probes(n: usize, scale: f32) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let t = i as f32 * 0.37;
            Tensor::from_vec(vec![2], vec![scale * t.sin(), scale * t.cos()])
        })
        .collect()
}

#[test]
fn plain_monitor_batch_matches_single_through_the_trait() {
    let (mut net, xs, ys) = two_blob_problem(1);
    let monitor = MonitorBuilder::new(1, 1).build::<BddZone>(&mut net, &xs, &ys, 2);
    assert_batch_matches_single(&monitor, &mut net, &xs[..16]);
    assert_batch_matches_single(&monitor, &mut net, &probes(12, 2.5));
}

#[test]
fn layered_monitor_batch_matches_single_through_the_trait() {
    let (mut net, xs, ys) = two_blob_problem(2);
    let shallow = MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
    let deep = MonitorBuilder::new(3, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
    let joint = LayeredMonitor::new(vec![shallow, deep], CombinePolicy::Majority);
    assert_batch_matches_single(&joint, &mut net, &xs[..16]);
    assert_batch_matches_single(&joint, &mut net, &probes(12, 2.5));
}

#[test]
fn refined_monitor_batch_matches_single_through_the_trait() {
    let (mut net, xs, ys) = two_blob_problem(3);
    for domain in [NumericDomain::Box, NumericDomain::Dbm] {
        let refined: RefinedMonitor<ExactZone> =
            MonitorBuilder::new(1, 1).build_refined(&mut net, &xs, &ys, 2, domain);
        assert_batch_matches_single(&refined, &mut net, &xs[..16]);
        assert_batch_matches_single(&refined, &mut net, &probes(12, 2.0));
    }
}

#[test]
fn grid_monitor_batch_matches_single_through_the_trait() {
    let mut rng = StdRng::seed_from_u64(4);
    const FEAT: usize = 4;
    let mut head = mlp(&[FEAT, 10, 3], &mut rng);
    // Per-cell traffic with different class mixes through one shared head.
    let feature = |class: usize, rng: &mut StdRng| {
        let data: Vec<f32> = (0..FEAT)
            .map(|i| match class {
                0 => 0.1 * (rng.gen::<f32>() - 0.5),
                1 => (i as f32).sin() + 0.1 * (rng.gen::<f32>() - 0.5),
                _ => -(i as f32).cos() + 0.1 * (rng.gen::<f32>() - 0.5),
            })
            .collect();
        Tensor::from_vec(vec![FEAT], data)
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..120 {
        let c = rng.gen_range(0..3);
        xs.push(feature(c, &mut rng));
        ys.push(c);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 16,
        verbose: false,
    });
    trainer.fit(&mut head, &xs, &ys, &mut Adam::new(0.02), &mut rng);
    let mixes: [&[usize]; 4] = [&[0], &[0, 1], &[1, 2], &[2]];
    let per_cell: Vec<(Vec<Tensor>, Vec<usize>)> = mixes
        .iter()
        .map(|mix| {
            let mut cx = Vec::new();
            let mut cy = Vec::new();
            for _ in 0..30 {
                let c = mix[rng.gen_range(0..mix.len())];
                cx.push(feature(c, &mut rng));
                cy.push(c);
            }
            (cx, cy)
        })
        .collect();
    let grid =
        GridMonitor::<ExactZone>::build(2, 2, &MonitorBuilder::new(1, 0), &mut head, &per_cell, 3);

    // Frames packed as single tensors: one row per cell.
    let frames: Vec<Tensor> = (0..6)
        .map(|_| {
            let mut data = Vec::with_capacity(4 * FEAT);
            for mix in &mixes {
                let c = mix[rng.gen_range(0..mix.len())];
                data.extend_from_slice(feature(c, &mut rng).data());
            }
            Tensor::from_vec(vec![4, FEAT], data)
        })
        .collect();
    assert_batch_matches_single(&grid, &mut head, &frames);

    // The packed-frame trait path must agree with the explicit
    // per-cell-slice path.
    for frame in &frames {
        let via_trait = grid.check(&mut head, frame);
        let cells: Vec<Tensor> = (0..4)
            .map(|i| Tensor::from_vec(vec![FEAT], frame.data()[i * FEAT..(i + 1) * FEAT].to_vec()))
            .collect();
        let via_frame = grid.check_frame(&mut head, &cells);
        assert_eq!(via_trait, via_frame);
    }
}

#[test]
fn out_of_pattern_accessor_tracks_verdicts_generically() {
    let (mut net, xs, ys) = two_blob_problem(5);
    let monitor = MonitorBuilder::new(1, 0).build::<BddZone>(&mut net, &xs, &ys, 2);

    // Per-report agreement between the accessor and the raw verdict.
    for x in xs.iter().take(10) {
        let rep = monitor.check(&mut net, x);
        assert_eq!(rep.out_of_pattern(), rep.verdict == Verdict::OutOfPattern);
    }

    // Generic rates: training data warns less than far-out probes.
    let train_rate = warning_rate(&monitor, &mut net, &xs);
    let wild_rate = warning_rate(&monitor, &mut net, &probes(40, 8.0));
    assert!(
        train_rate <= wild_rate,
        "training rate {train_rate} > wild rate {wild_rate}"
    );
}

#[test]
fn enlarge_to_is_monotone_for_every_monitor_kind() {
    let (mut net, xs, ys) = two_blob_problem(6);
    let inputs = probes(30, 1.8);

    // Build one of each kind, enlarge through the trait, and require the
    // warning rate not to increase (zones only grow).
    let mut plain = MonitorBuilder::new(1, 0).build::<BddZone>(&mut net, &xs, &ys, 2);
    let mut layered = LayeredMonitor::new(
        vec![
            MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2),
            MonitorBuilder::new(3, 0).build::<ExactZone>(&mut net, &xs, &ys, 2),
        ],
        CombinePolicy::Any,
    );
    let mut refined: RefinedMonitor<ExactZone> =
        MonitorBuilder::new(1, 0).build_refined(&mut net, &xs, &ys, 2, NumericDomain::Box);
    refined.set_slack(1e6); // isolate the binary side

    fn rate_before_after<M: ActivationMonitor>(
        m: &mut M,
        net: &mut Sequential,
        inputs: &[Tensor],
    ) -> (f64, f64) {
        let before = {
            let reports = m.check_batch(net, inputs);
            reports.iter().filter(|r| r.out_of_pattern()).count() as f64 / inputs.len() as f64
        };
        m.enlarge_to(3);
        let after = {
            let reports = m.check_batch(net, inputs);
            reports.iter().filter(|r| r.out_of_pattern()).count() as f64 / inputs.len() as f64
        };
        (before, after)
    }

    let (b, a) = rate_before_after(&mut plain, &mut net, &inputs);
    assert!(
        a <= b,
        "plain monitor warned more after enlarging: {b} -> {a}"
    );
    let (b, a) = rate_before_after(&mut layered, &mut net, &inputs);
    assert!(
        a <= b,
        "layered monitor warned more after enlarging: {b} -> {a}"
    );
    let (b, a) = rate_before_after(&mut refined, &mut net, &inputs);
    assert!(
        a <= b,
        "refined monitor warned more after enlarging: {b} -> {a}"
    );
}
