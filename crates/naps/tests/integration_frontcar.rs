//! Integration: the front-car case study pipeline across crates.

use naps::frontcar::{
    Conditions, FrontCarPipeline, PipelineConfig, Scenario, RARE_CLASS_SCENARIO_BUDGET,
};
use naps::monitor::{Verdict, Zone};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_pipeline(seed: u64) -> (FrontCarPipeline, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    // The budget is the named const (see its docs): large enough for the
    // ~1%-frequency class 3 to reach Algorithm 1 under the vendored RNG
    // stream.  An ad-hoc smaller number here regresses to a silently
    // degenerate fixture when the RNG is retuned.
    let pipe = FrontCarPipeline::train(
        PipelineConfig {
            hidden: [32, 16],
            train_scenarios: RARE_CLASS_SCENARIO_BUDGET,
            epochs: 15,
            gamma: 1,
        },
        &mut rng,
    );
    (pipe, rng)
}

#[test]
fn pipeline_selects_front_cars_reliably_in_distribution() {
    let (mut pipe, mut rng) = small_pipeline(30);
    let acc = pipe.accuracy(400, Conditions::nominal(), &mut rng);
    assert!(acc > 0.7, "nominal accuracy {acc}");
}

#[test]
fn monitored_decisions_carry_distances_when_monitored() {
    let (mut pipe, mut rng) = small_pipeline(31);
    for _ in 0..50 {
        let s = Scenario::sample(Conditions::nominal(), &mut rng);
        let out = pipe.step(&s, &mut rng);
        match out.verdict {
            Verdict::InPattern | Verdict::OutOfPattern => {
                assert!(
                    out.distance_to_seeds.is_some(),
                    "monitored verdict without a distance"
                );
            }
            Verdict::Unmonitored => {}
        }
    }
}

#[test]
fn every_class_has_a_zone_after_training() {
    let (pipe, _) = small_pipeline(32);
    // All 5 classes (4 slots + no-front-car) appear in nominal traffic, so
    // Algorithm 1 should have filled every zone.
    let monitored = pipe.monitor().monitored_classes();
    assert_eq!(monitored.len(), 5);
    for c in monitored {
        assert!(
            pipe.monitor().zone(c).map(|z| z.seed_count()).unwrap_or(0) > 0,
            "class {c} zone is empty: the vendored RNG stream no longer \
             surfaces this class within RARE_CLASS_SCENARIO_BUDGET \
             scenarios — retune the budget const in naps-frontcar"
        );
    }
}

#[test]
fn distribution_shift_is_visible_in_the_warning_rate() {
    let (mut pipe, mut rng) = small_pipeline(33);
    let nominal = pipe.warning_rate(400, Conditions::nominal(), &mut rng);
    let degraded = pipe.warning_rate(400, Conditions::degraded_sensor(), &mut rng);
    assert!(
        degraded >= nominal,
        "degraded sensor warns less ({degraded}) than nominal ({nominal})"
    );
}

#[test]
fn scenario_determinism_under_fixed_seed() {
    let mut a = StdRng::seed_from_u64(99);
    let mut b = StdRng::seed_from_u64(99);
    let sa = Scenario::sample(Conditions::nominal(), &mut a);
    let sb = Scenario::sample(Conditions::nominal(), &mut b);
    assert_eq!(sa, sb);
}
