//! Integration: monitor verdicts feeding the drift detector — the
//! paper's "frequent appearance of unseen patterns indicates data
//! distribution shift" turned into an online alarm.

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, DriftConfig, DriftDetector, DriftStatus, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3;

fn fixture(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(20, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 48, 24, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

/// Verdicts of a deployment stream, shuffled so the stream is i.i.d. —
/// the datasets are generated class by class, and without shuffling the
/// out-of-pattern verdicts arrive in class-correlated bursts.
fn stream_verdicts(
    monitor: &naps::monitor::Monitor<BddZone>,
    net: &mut Sequential,
    samples: &[naps::tensor::Tensor],
    seed: u64,
) -> Vec<Verdict> {
    use rand::seq::SliceRandom;
    let mut verdicts: Vec<Verdict> = monitor
        .check_batch(net, samples)
        .into_iter()
        .map(|r| r.verdict)
        .collect();
    verdicts.shuffle(&mut StdRng::seed_from_u64(seed));
    verdicts
}

#[test]
fn detector_stays_stable_in_distribution_and_alarms_under_heavy_shift() {
    let (mut net, train, val) = fixture(42);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 2).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );

    // Calibrate the baseline on the clean validation stream.
    let clean = stream_verdicts(&monitor, &mut net, &val.samples, 100);
    let baseline = clean
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / clean.len() as f64;

    let config = DriftConfig {
        baseline_rate: baseline.min(0.94),
        alarm_rate: (baseline + 0.05).max(2.0 * baseline).min(0.95),
        window: 60,
        ewma_alpha: 0.05,
        patience: 20,
    };

    // In-distribution deployment: repeat the clean stream; no alarm.
    let mut det = DriftDetector::new(config.clone());
    for _ in 0..3 {
        det.observe_all(&clean);
    }
    assert_ne!(det.status(), DriftStatus::Drifting, "clean stream alarmed");
    assert_eq!(det.alarm_count(), 0);

    // Severe corruption: the out-of-pattern rate must rise enough to trip
    // the detector within a few windows.
    let mut rng = StdRng::seed_from_u64(43);
    let noisy = shift_dataset(&val, 1, 28, Corruption::GaussianNoise(0.6), &mut rng);
    let shifted = stream_verdicts(&monitor, &mut net, &noisy.samples, 101);
    let shifted_rate = shifted
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / shifted.len() as f64;
    assert!(
        shifted_rate > config.alarm_rate,
        "corruption did not raise the rate: {shifted_rate:.3} <= {:.3}",
        config.alarm_rate
    );
    for _ in 0..3 {
        det.observe_all(&shifted);
    }
    assert_eq!(
        det.status(),
        DriftStatus::Drifting,
        "shifted stream never alarmed"
    );
    // A rate hovering near the threshold may alarm in several episodes;
    // what matters is that the shift was reported at all.
    assert!(det.alarm_count() >= 1);

    // Shipping a fixed network: reset clears the alarm history.
    det.reset();
    assert_eq!(det.status(), DriftStatus::Warmup);
    assert_eq!(det.alarm_count(), 0);
}

#[test]
fn windowed_rate_tracks_the_deployment_stream() {
    let (mut net, train, val) = fixture(7);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let verdicts = stream_verdicts(&monitor, &mut net, &val.samples, 102);
    let monitored: Vec<&Verdict> = verdicts
        .iter()
        .filter(|v| **v != Verdict::Unmonitored)
        .collect();
    let window = monitored.len().max(1);
    let mut det = DriftDetector::new(DriftConfig {
        baseline_rate: 0.0,
        alarm_rate: 0.999,
        window,
        ewma_alpha: 0.1,
        patience: 5,
    });
    det.observe_all(&verdicts);
    let expect = monitored
        .iter()
        .filter(|v| ***v == Verdict::OutOfPattern)
        .count() as f64
        / window as f64;
    assert!((det.windowed_rate() - expect).abs() < 1e-12);
    assert_eq!(det.observed(), monitored.len());
}
