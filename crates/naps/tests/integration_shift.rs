//! Integration: the monitor as a distribution-shift and novelty detector
//! (the paper's introduction and Figure 1 scooter scenario).

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::{digits, novelty};
use naps::monitor::ActivationMonitor;
use naps::monitor::{evaluate, BddZone, IntervalZone, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use naps::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3;

/// Seed of the discriminativeness-sensitive fixture below.
///
/// This value is coupled to the **vendored** `rand` stream (see
/// `vendor/rand`): under it, the γ=1 comfort zone built from 25
/// digits/class is tight enough to warn on shifted inputs.  When PR 1
/// swapped crates.io `rand` for the offline stand-in, the old seed 10
/// produced a degenerate zone covering the whole pattern space — both
/// clean and shifted warning rates were exactly zero, and the test passed
/// while testing nothing.  `heavy_corruption_raises_the_warning_rate`
/// now guards against that degeneracy explicitly; if a future RNG
/// retuning trips the guard, pick a new seed here (any one that makes
/// the monitor discriminative) rather than weakening the assertion.
const DISCRIMINATIVE_FIXTURE_SEED: u64 = 30;

fn fixture(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(12, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 48, 24, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

#[test]
fn heavy_corruption_raises_the_warning_rate() {
    let (mut net, train, val) = fixture(DISCRIMINATIVE_FIXTURE_SEED);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let mut rng = StdRng::seed_from_u64(11);
    let clean = evaluate(&monitor, &mut net, &val.samples, &val.labels, 64);
    let noisy = shift_dataset(&val, 1, 28, Corruption::GaussianNoise(0.35), &mut rng);
    let shifted = evaluate(&monitor, &mut net, &noisy.samples, &noisy.labels, 64);
    // Degeneracy guard (see DISCRIMINATIVE_FIXTURE_SEED): a comfort zone
    // that covers everything makes both rates 0.0 and the comparison
    // below vacuous.  Fail loudly instead of passing silently.
    assert!(
        shifted.out_of_pattern_rate() > 0.0,
        "degenerate fixture: the γ=1 zone admits even heavily corrupted \
         inputs, so this test is vacuous — the vendored RNG stream \
         changed; retune DISCRIMINATIVE_FIXTURE_SEED"
    );
    assert!(
        shifted.out_of_pattern_rate() > clean.out_of_pattern_rate(),
        "shifted {:.3} <= clean {:.3}",
        shifted.out_of_pattern_rate(),
        clean.out_of_pattern_rate()
    );
}

#[test]
fn novelty_inputs_warn_more_often_than_in_distribution_inputs() {
    let (mut net, train, val) = fixture(12);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let mut rng = StdRng::seed_from_u64(13);
    let warn_rate = |reports: &[naps::monitor::MonitorReport]| {
        reports
            .iter()
            .filter(|r| r.verdict == Verdict::OutOfPattern)
            .count() as f64
            / reports.len() as f64
    };
    let in_dist = monitor.check_batch(&mut net, &val.samples);
    let novelties: Vec<Tensor> = (0..60)
        .map(|i| {
            let kind = match i % 3 {
                0 => novelty::Novelty::Scooter,
                1 => novelty::Novelty::Asterisk,
                _ => novelty::Novelty::Spiral,
            };
            novelty::render_gray(kind, 28, &mut rng)
        })
        .collect();
    let novel = monitor.check_batch(&mut net, &novelties);
    assert!(
        warn_rate(&novel) > warn_rate(&in_dist),
        "novelty warn rate {:.3} <= in-distribution {:.3}",
        warn_rate(&novel),
        warn_rate(&in_dist)
    );
}

#[test]
fn interval_refinement_catches_magnitude_outliers_binary_monitor_misses() {
    // A pattern can be binary-identical while the activation magnitudes
    // are far outside anything seen in training (Section V item 2): the
    // interval envelope must flag scaled-up activations even though the
    // on/off pattern is unchanged.
    let (mut net, train, _) = fixture(14);
    let mut envelope = IntervalZone::empty(24);
    let mut sample_acts: Option<Vec<f32>> = None;
    for s in &train.samples {
        let batch = Tensor::from_vec(vec![1, s.len()], s.data().to_vec());
        let acts = net.forward_all(&batch, false);
        let row = acts[MONITORED_LAYER + 1].row(0).to_vec();
        envelope.insert(&row);
        sample_acts.get_or_insert(row);
    }
    let acts = sample_acts.expect("nonempty training set");
    // In-envelope vector passes.
    assert!(envelope.contains(&acts, 1e-4));
    // Same on/off pattern, 10x magnitude: binary pattern unchanged,
    // envelope violated.
    let scaled: Vec<f32> = acts.iter().map(|v| v * 10.0).collect();
    let p1 = naps::monitor::Pattern::from_activations(&acts);
    let p2 = naps::monitor::Pattern::from_activations(&scaled);
    assert_eq!(p1, p2, "scaling must not change the binary pattern");
    assert!(
        !envelope.contains(&scaled, 0.0),
        "envelope failed to flag a 10x activation blow-up"
    );
}

#[test]
fn static_noise_inputs_are_reliably_flagged() {
    let (mut net, train, _) = fixture(15);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    let mut rng = StdRng::seed_from_u64(16);
    let noise: Vec<Tensor> = (0..40)
        .map(|_| novelty::render_gray(novelty::Novelty::Static, 28, &mut rng))
        .collect();
    let reports = monitor.check_batch(&mut net, &noise);
    let warned = reports
        .iter()
        .filter(|r| r.verdict == Verdict::OutOfPattern)
        .count();
    // Pure noise is about as far from the training manifold as inputs
    // get; expect a majority to warn.
    assert!(
        warned * 2 > reports.len(),
        "only {warned}/40 noise inputs warned"
    );
}
