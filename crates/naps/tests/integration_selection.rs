//! Integration: gradient-based neuron selection and abstraction control
//! (Sections II and III) on a trained classifier.

use naps::data::signs::{self, STOP_SIGN_CLASS};
use naps::monitor::ActivationMonitor;
use naps::monitor::{
    choose_gamma, evaluate, BddZone, GammaPolicy, GammaSweep, MonitorBuilder, NeuronSelection,
    Verdict,
};
use naps::nn::{
    mlp, saliency_by_backward, saliency_from_output_weights, Adam, Dense, Sequential, TrainConfig,
    Trainer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3; // fc, relu, fc(84), relu <- here, fc(43)

fn fixture(seed: u64) -> (Sequential, naps::data::Dataset, naps::data::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = signs::generate(12, signs::SignStyle::clean(), &mut rng);
    let val = signs::generate(6, signs::SignStyle::hard(), &mut rng);
    let mut net = mlp(&[3 * 32 * 32, 120, 84, 43], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    (net, train, val)
}

fn stop_sign_selection(net: &Sequential) -> NeuronSelection {
    let dense = net
        .layer(net.len() - 1)
        .as_any()
        .downcast_ref::<Dense>()
        .expect("output layer is dense");
    let saliency = saliency_from_output_weights(dense, STOP_SIGN_CLASS);
    NeuronSelection::top_fraction_by_saliency(&saliency, 0.25)
}

#[test]
fn quarter_selection_monitors_21_of_84_neurons() {
    let (net, _, _) = fixture(20);
    let sel = stop_sign_selection(&net);
    assert_eq!(sel.len(), 21, "paper: 25% of 84 neurons");
    assert_eq!(sel.layer_width(), 84);
    assert!(sel.indices().iter().all(|&i| i < 84));
}

#[test]
fn selected_monitor_is_sound_on_training_data() {
    let (mut net, train, _) = fixture(21);
    let sel = stop_sign_selection(&net);
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 0)
        .with_selection(sel)
        .with_classes(vec![STOP_SIGN_CLASS])
        .build::<BddZone>(&mut net, &train.samples, &train.labels, 43);
    let reports = monitor.check_batch(&mut net, &train.samples);
    for (rep, &label) in reports.iter().zip(&train.labels) {
        if rep.predicted == STOP_SIGN_CLASS && rep.predicted == label {
            assert_eq!(rep.verdict, Verdict::InPattern);
        }
        if rep.predicted != STOP_SIGN_CLASS {
            assert_eq!(rep.verdict, Verdict::Unmonitored);
        }
    }
}

#[test]
fn fewer_monitored_neurons_coarsen_the_abstraction() {
    // Monitoring a subset of neurons lets unmonitored neurons take any
    // value (the paper's scaling argument): warnings can only decrease
    // relative to monitoring every neuron at the same γ.
    let (mut net, train, val) = fixture(22);
    let all = MonitorBuilder::new(MONITORED_LAYER, 0)
        .with_classes(vec![STOP_SIGN_CLASS])
        .build::<BddZone>(&mut net, &train.samples, &train.labels, 43);
    let sel = stop_sign_selection(&net);
    let quarter = MonitorBuilder::new(MONITORED_LAYER, 0)
        .with_selection(sel)
        .with_classes(vec![STOP_SIGN_CLASS])
        .build::<BddZone>(&mut net, &train.samples, &train.labels, 43);
    let stats_all = evaluate(&all, &mut net, &val.samples, &val.labels, 64);
    let stats_quarter = evaluate(&quarter, &mut net, &val.samples, &val.labels, 64);
    assert!(
        stats_quarter.out_of_pattern <= stats_all.out_of_pattern,
        "projection must not add warnings: {} > {}",
        stats_quarter.out_of_pattern,
        stats_all.out_of_pattern
    );
}

#[test]
fn backward_saliency_agrees_with_weight_saliency_in_ranking() {
    let (mut net, train, _) = fixture(23);
    let dense = net
        .layer(net.len() - 1)
        .as_any()
        .downcast_ref::<Dense>()
        .expect("dense");
    let by_weight = saliency_from_output_weights(dense, STOP_SIGN_CLASS);
    // Probe with a few stop-sign training images.
    let idx = train.indices_of_class(STOP_SIGN_CLASS);
    let probes = naps::nn::Trainer::make_batch(&train.samples, &idx[..4.min(idx.len())]);
    let by_backward = saliency_by_backward(&mut net, &probes, MONITORED_LAYER, STOP_SIGN_CLASS);
    assert_eq!(by_weight.len(), by_backward.len());
    // The backward route masks gradients through inactive ReLUs, so exact
    // equality is not expected — but every neuron the backward route rates
    // positive must also have nonzero weight saliency.
    for (i, (&bw, &ww)) in by_backward.iter().zip(&by_weight).enumerate() {
        if bw > 1e-6 {
            assert!(ww > 0.0, "neuron {i}: backward {bw} but weight 0");
        }
    }
}

#[test]
fn gamma_selection_policies_pick_usable_abstractions() {
    let (mut net, train, val) = fixture(24);
    let mut monitor = MonitorBuilder::new(MONITORED_LAYER, 0).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        43,
    );
    let sweep = GammaSweep::up_to(4).run(&mut monitor, &mut net, &val.samples, &val.labels);
    // Rates are monotone, so if any policy fires it returns the first
    // satisfying gamma.
    if let Some(g) = choose_gamma(&sweep, GammaPolicy::MaxOutOfPatternRate(0.5)) {
        let entry = sweep.iter().find(|s| s.gamma == g).expect("swept");
        assert!(entry.stats.out_of_pattern_rate() <= 0.5);
        if g > 0 {
            let prev = sweep.iter().find(|s| s.gamma == g - 1).expect("swept");
            assert!(
                prev.stats.out_of_pattern_rate() > 0.5,
                "not the first satisfying γ"
            );
        }
    }
}
