//! Online drift alarm: a deployed monitor feeding a [`DriftDetector`].
//!
//! The paper's introduction notes that "the frequent appearance of unseen
//! patterns provides an indicator of data distribution shift to the
//! development team; such information is helpful as it may indicate that
//! a neural network deployed on an autonomous vehicle needs to be
//! updated".  This example simulates exactly that deployment story:
//!
//! 1. train a digit classifier and build its γ = 2 monitor;
//! 2. calibrate a drift detector's baseline on the clean validation
//!    stream;
//! 3. run a long deployment stream that silently switches from clean to
//!    fog-corrupted inputs half-way;
//! 4. watch the detector move Warmup → Stable → **Drifting**, and report
//!    how many observations after the switch the alarm fired.
//!
//! Run with `cargo run --release --example drift_alarm`.
//!
//! [`DriftDetector`]: naps::monitor::DriftDetector

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, DriftConfig, DriftDetector, DriftStatus, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MONITORED_LAYER: usize = 3;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    println!("[1/4 training a digit classifier]");
    let train = digits::generate(40, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 64, 32, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    println!(
        "    train accuracy {:.1}%",
        100.0 * trainer.evaluate(&mut net, &train.samples, &train.labels)
    );

    println!("[2/4 building the γ=2 monitor and calibrating the baseline]");
    let monitor = MonitorBuilder::new(MONITORED_LAYER, 2).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );
    use rand::seq::SliceRandom;
    let mut clean_verdicts: Vec<Verdict> = monitor
        .check_batch(&mut net, &val.samples)
        .into_iter()
        .map(|r| r.verdict)
        .collect();
    // The dataset is generated class by class; shuffle so the deployment
    // stream is i.i.d. rather than class-correlated bursts.
    clean_verdicts.shuffle(&mut rng);
    let baseline = clean_verdicts
        .iter()
        .filter(|v| **v == Verdict::OutOfPattern)
        .count() as f64
        / clean_verdicts.len() as f64;
    println!("    baseline out-of-pattern rate: {:.1}%", 100.0 * baseline);

    let mut detector = DriftDetector::new(DriftConfig {
        baseline_rate: baseline.min(0.94),
        alarm_rate: (2.0 * baseline + 0.10).min(0.95),
        window: 100,
        ewma_alpha: 0.05,
        patience: 25,
    });

    println!("[3/4 deployment stream: clean first, fog after the switch]");
    let foggy = shift_dataset(&val, 1, 28, Corruption::Fog(0.6), &mut rng);
    let mut foggy_verdicts: Vec<Verdict> = monitor
        .check_batch(&mut net, &foggy.samples)
        .into_iter()
        .map(|r| r.verdict)
        .collect();
    foggy_verdicts.shuffle(&mut rng);

    let mut switch_at = None;
    let mut alarm_at = None;
    let mut step = 0usize;
    for epoch in 0..8 {
        let shifted = epoch >= 4;
        if shifted && switch_at.is_none() {
            switch_at = Some(step);
            println!("    t={step}: >>> distribution silently switches to fog <<<");
        }
        let stream = if shifted {
            &foggy_verdicts
        } else {
            &clean_verdicts
        };
        for v in stream {
            let status = detector.observe(*v);
            step += 1;
            if status == DriftStatus::Drifting && alarm_at.is_none() {
                alarm_at = Some(step);
                println!(
                    "    t={step}: ALARM — windowed rate {:.1}%, ewma {:.1}%",
                    100.0 * detector.windowed_rate(),
                    100.0 * detector.ewma_rate()
                );
            }
        }
        println!(
            "    t={step}: {:?} (window {:.1}%, ewma {:.1}%)",
            detector.status(),
            100.0 * detector.windowed_rate(),
            100.0 * detector.ewma_rate()
        );
    }

    println!("[4/4 summary]");
    match (switch_at, alarm_at) {
        (Some(s), Some(a)) => {
            println!(
                "    drift detected {} observations after the switch \
                 ({} alarms total, lifetime rate {:.1}%)",
                a.saturating_sub(s),
                detector.alarm_count(),
                100.0 * detector.lifetime_rate()
            );
        }
        (Some(_), None) => {
            println!("    no alarm raised — increase corruption or lower the alarm rate")
        }
        _ => unreachable!("switch always happens"),
    }
}
