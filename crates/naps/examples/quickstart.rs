//! Quickstart: the full Figure 1 workflow in one file.
//!
//! 1. Train a small digit classifier.
//! 2. Build a neuron activation pattern monitor from the training data
//!    (Algorithm 1) and pick γ on a validation set (Section III).
//! 3. Deploy: classify a validation digit (in pattern) and a scooter-like
//!    novelty image (out of pattern — "problematic decision!").
//!
//! Run with `cargo run --release --example quickstart`.

use naps::data::{digits, novelty};
use naps::monitor::ActivationMonitor;
use naps::monitor::{choose_gamma, BddZone, GammaPolicy, GammaSweep, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // -- Training phase ---------------------------------------------------
    println!("[1/4] training a 784-64-32-10 ReLU classifier on synthetic digits");
    let train = digits::generate(60, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(20, digits::DigitStyle::hard(), &mut rng);
    let mut net = mlp(&[784, 64, 32, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    println!(
        "      train accuracy {:.1}%, val accuracy {:.1}%",
        100.0 * trainer.evaluate(&mut net, &train.samples, &train.labels),
        100.0 * trainer.evaluate(&mut net, &val.samples, &val.labels)
    );

    // -- Monitor creation (Figure 1a, Algorithm 1) ------------------------
    println!("[2/4] recording activation patterns of the 32-neuron ReLU layer");
    let monitored_layer = 3; // fc(784->64), relu, fc(64->32), relu <- here
    let mut monitor = MonitorBuilder::new(monitored_layer, 0).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );

    // -- Abstraction control (Section III) --------------------------------
    println!("[3/4] sweeping γ on the validation set to size the comfort zone");
    let sweep = GammaSweep::up_to(4).run(&mut monitor, &mut net, &val.samples, &val.labels);
    for g in &sweep {
        println!(
            "      γ={}  out-of-pattern {:>6.2}%  warning precision {:>6.2}%",
            g.gamma,
            100.0 * g.stats.out_of_pattern_rate(),
            100.0 * g.stats.warning_precision()
        );
    }
    let gamma = choose_gamma(&sweep, GammaPolicy::MaxOutOfPatternRate(0.10)).unwrap_or(2);
    println!("      chosen γ = {gamma}");
    // Zones only grow; rebuild at the chosen γ for deployment.
    let monitor = MonitorBuilder::new(monitored_layer, gamma).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );

    // -- Deployment (Figure 1b) --------------------------------------------
    println!("[4/4] deployment-time queries");
    let familiar = &val.samples[0];
    let report = monitor.check(&mut net, familiar);
    println!(
        "      validation digit -> class {} | verdict {:?} | distance {:?}",
        report.predicted, report.verdict, report.distance_to_seeds
    );

    let scooter = novelty::render_gray(novelty::Novelty::Scooter, 28, &mut rng);
    let report = monitor.check(&mut net, &scooter);
    println!(
        "      scooter image    -> class {} | verdict {:?} | distance {:?}",
        report.predicted, report.verdict, report.distance_to_seeds
    );
    if report.verdict == Verdict::OutOfPattern {
        println!("      problematic decision! (not supported by training data)");
    }
}
