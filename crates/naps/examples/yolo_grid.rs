//! Grid-cell monitoring — the paper's Section V extension (1).
//!
//! "The technique shall be directly applicable on object detection
//! networks such as YOLO, whose underlying principle is to partition an
//! image to a finite grid, with each cell in the grid offering object
//! proposals."
//!
//! This example shows the API shape of that extension: a toy detector
//! head produces per-cell class proposals from per-cell features; each
//! grid cell gets its **own** comfort-zone monitor, assembled manually
//! with [`naps::monitor::Monitor::from_zones`] from patterns the example
//! collects itself (i.e. a custom pattern source, no `MonitorBuilder`).
//!
//! Run with `cargo run --release --example yolo_grid`.

use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, GridMonitor, Monitor, NeuronSelection, Pattern, Verdict, Zone};
use naps::nn::{mlp, Adam, TrainConfig, Trainer};
use naps::tensor::{Randn, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2×2 grid, 3 object classes per cell (empty / car / pedestrian).
const GRID: usize = 4;
const CELL_FEATURES: usize = 8;
const CLASSES: usize = 3;

/// Synthesises one cell's feature vector for a given object class.
fn cell_features(class: usize, rng: &mut StdRng) -> Tensor {
    let mut data = vec![0.0f32; CELL_FEATURES];
    for (i, v) in data.iter_mut().enumerate() {
        let centre = match class {
            0 => 0.0,
            1 => (i as f32 * 0.8).sin() * 2.0,
            _ => (i as f32 * 1.3).cos() * 2.0,
        };
        *v = centre + 0.25 * rng.randn();
    }
    Tensor::from_vec(vec![CELL_FEATURES], data)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A shared per-cell proposal head (as YOLO shares its head weights).
    println!("[training the shared per-cell proposal head]");
    let mut head = mlp(&[CELL_FEATURES, 16, CLASSES], &mut rng);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..400 {
        let class = rng.gen_range(0..CLASSES);
        xs.push(cell_features(class, &mut rng));
        ys.push(class);
    }
    let trainer = Trainer::new(TrainConfig {
        epochs: 25,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(&mut head, &xs, &ys, &mut Adam::new(0.01), &mut rng);
    println!(
        "  head accuracy {:.1}%",
        100.0 * trainer.evaluate(&mut head, &xs, &ys)
    );

    // Build one monitor per grid cell from that cell's own traffic: cells
    // see different class mixes (cell 0 = mostly road -> empty, cell 3 =
    // kerb-side -> pedestrians), so their comfort zones differ even though
    // the head is shared.
    println!("[building one comfort-zone monitor per grid cell]");
    let monitored_layer = 1; // fc, relu <- monitored, fc
    let selection = NeuronSelection::all(16);
    let cell_class_bias = [0usize, 1, 1, 2]; // dominant class per cell
    let mut monitors: Vec<Monitor<BddZone>> = Vec::new();
    for &dominant in &cell_class_bias {
        let mut zones: Vec<Option<BddZone>> =
            (0..CLASSES).map(|_| Some(BddZone::empty(16))).collect();
        let probe = Monitor::<BddZone>::from_zones(
            (0..CLASSES).map(|_| Some(BddZone::empty(16))).collect(),
            monitored_layer,
            selection.clone(),
            0,
        );
        for _ in 0..200 {
            // 70% dominant class, 30% uniform.
            let class = if rng.gen::<f32>() < 0.7 {
                dominant
            } else {
                rng.gen_range(0..CLASSES)
            };
            let x = cell_features(class, &mut rng);
            let (pred, pattern) = probe.observe(&mut head, &x);
            if pred == class {
                zones[class].as_mut().expect("zone").insert(&pattern);
            }
        }
        for z in zones.iter_mut().flatten() {
            z.enlarge_to(1);
        }
        monitors.push(Monitor::from_zones(
            zones,
            monitored_layer,
            selection.clone(),
            1,
        ));
    }

    // Deployment: per-cell proposals with per-cell verdicts.
    println!("[deployment: one frame of per-cell proposals]");
    let frame_classes = [0usize, 1, 2, 2];
    for cell in 0..GRID {
        let x = cell_features(frame_classes[cell], &mut rng);
        let report = monitors[cell].check(&mut head, &x);
        println!(
            "  cell {cell}: proposal class {} | {:?}",
            report.predicted, report.verdict
        );
    }

    // An out-of-distribution blob in cell 0 should trip that cell's
    // monitor without affecting the others.
    let weird = Tensor::from_vec(vec![CELL_FEATURES], vec![9.0; CELL_FEATURES]);
    let report = monitors[0].check(&mut head, &weird);
    println!(
        "  cell 0 with an unseen object: class {} | {:?}",
        report.predicted, report.verdict
    );
    if report.verdict == Verdict::OutOfPattern {
        println!("  -> the cell-local monitor flags the unfamiliar proposal.");
    }

    // Direct pattern-level query (the lowest-level API).
    let pattern = Pattern::from_activations(&[1.0; 16]);
    println!(
        "  raw all-ones pattern in cell 0, class 0: {:?}",
        monitors[0].check_pattern(0, &pattern)
    );

    // The same arrangement through the first-class grid API: wrap the
    // per-cell monitors in a GridMonitor and judge whole frames at once.
    println!("[the same grid through naps::monitor::GridMonitor]");
    let grid = GridMonitor::from_cells(2, 2, monitors);
    let frame: Vec<Tensor> = frame_classes
        .iter()
        .map(|&c| cell_features(c, &mut rng))
        .collect();
    let report = grid.check_frame(&mut head, &frame);
    println!(
        "  frame verdicts: {:?} | warning rate {:.0}%",
        report.cells.iter().map(|r| r.verdict).collect::<Vec<_>>(),
        100.0 * report.warning_rate()
    );
    let weird_frame = vec![
        Tensor::from_vec(vec![CELL_FEATURES], vec![9.0; CELL_FEATURES]),
        frame[1].clone(),
        frame[2].clone(),
        frame[3].clone(),
    ];
    let report = grid.check_frame(&mut head, &weird_frame);
    println!(
        "  frame with an alien object in cell 0: warning cells {:?}",
        report.out_of_pattern_cells
    );
}
