//! Distribution-shift detection: the monitor as a drift indicator.
//!
//! The paper's introduction argues that "the frequent appearance of unseen
//! patterns provides an indicator of data distribution shift to the
//! development team".  This example quantifies that: a digit classifier's
//! monitor is exposed to increasingly corrupted deployment data and the
//! out-of-pattern rate is reported per severity, alongside an
//! [`naps::monitor::IntervalZone`] numeric refinement (Section V item 2).
//!
//! Run with `cargo run --release --example distribution_shift`.

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::digits;
use naps::monitor::{evaluate, BddZone, IntervalZone, MonitorBuilder};
use naps::nn::{mlp, Adam, ObservationPlan, TrainConfig, Trainer};
use naps::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    println!("[training a digit classifier]");
    let train = digits::generate(60, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(25, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 64, 32, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );

    let monitored_layer = 3;
    let monitor = MonitorBuilder::new(monitored_layer, 1).build::<BddZone>(
        &mut net,
        &train.samples,
        &train.labels,
        10,
    );

    // Numeric refinement: record the real-valued envelope of the monitored
    // activations over the training set.  The observation plan keeps only
    // the monitored layer's activations from each forward pass.
    let plan = ObservationPlan::single(monitored_layer);
    let mut envelope = IntervalZone::empty(32);
    for s in &train.samples {
        let batch = Tensor::from_vec(vec![1, s.len()], s.data().to_vec());
        let (observed, _) = net.forward_observe_plan(&batch, &plan, false);
        envelope.insert(observed[0].row(0));
    }

    println!("[exposing the monitor to shifted deployment distributions]");
    let shifts: [(&str, Corruption); 5] = [
        ("clean", Corruption::GaussianNoise(0.0)),
        ("noise σ=0.1", Corruption::GaussianNoise(0.1)),
        ("noise σ=0.25", Corruption::GaussianNoise(0.25)),
        ("occlusion 10px", Corruption::Occlusion(10)),
        ("fog 0.5", Corruption::Fog(0.5)),
    ];
    println!(
        "  {:<16} {:>14} {:>14} {:>18}",
        "shift", "miscls", "oop rate", "interval violations"
    );
    for (name, corruption) in shifts {
        let shifted = shift_dataset(&val, 1, 28, corruption, &mut rng);
        let stats = evaluate(&monitor, &mut net, &shifted.samples, &shifted.labels, 64);
        // Interval-zone violations on the same data.
        let mut violations = 0usize;
        for s in &shifted.samples {
            let batch = Tensor::from_vec(vec![1, s.len()], s.data().to_vec());
            let (observed, _) = net.forward_observe_plan(&batch, &plan, false);
            if !envelope.contains(observed[0].row(0), 0.5) {
                violations += 1;
            }
        }
        println!(
            "  {:<16} {:>13.1}% {:>13.1}% {:>17.1}%",
            name,
            100.0 * stats.misclassification_rate(),
            100.0 * stats.out_of_pattern_rate(),
            100.0 * violations as f64 / shifted.len() as f64
        );
    }
    println!("\nrising out-of-pattern rates flag the shift before labels exist.");
}
