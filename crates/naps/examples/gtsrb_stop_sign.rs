//! Single-class monitoring with gradient-based neuron selection — the
//! paper's GTSRB configuration in miniature.
//!
//! An MLP classifies the 43 synthetic sign classes; only the stop sign
//! (class 14) is monitored, on the 25 % most decision-relevant neurons of
//! its 84-wide penultimate ReLU layer (saliency = |output weight|, the
//! special case of Section II).
//!
//! Run with `cargo run --release --example gtsrb_stop_sign`.

use naps::data::corrupt::{apply, Corruption};
use naps::data::signs::{self, STOP_SIGN_CLASS};
use naps::monitor::{
    evaluate_with_mode, BddZone, EvalMode, GammaSweep, MonitorBuilder, NeuronSelection, Zone,
};
use naps::nn::{mlp, saliency_from_output_weights, Adam, Dense, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(14);

    println!("[training a 3072-160-84-43 sign classifier]");
    let train = signs::generate(25, signs::SignStyle::clean(), &mut rng);
    let mut val = signs::generate(6, signs::SignStyle::hard(), &mut rng);
    // The single-class monitor needs a rich stop-sign pool: add extra hard
    // stop signs, an eighth of them corrupted (occlusion / fog), modelling
    // the difficult captures real benchmarks contain.
    for i in 0..80 {
        let img = signs::render(STOP_SIGN_CLASS, signs::SignStyle::hard(), &mut rng);
        let img = match i % 8 {
            0 => apply(&img, 3, 32, Corruption::Occlusion(12), &mut rng),
            1 => apply(&img, 3, 32, Corruption::Fog(0.5), &mut rng),
            _ => img,
        };
        val.push(img, STOP_SIGN_CLASS);
    }
    let mut net = mlp(&[3 * 32 * 32, 160, 84, 43], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    println!(
        "  train {:.1}% / val {:.1}%",
        100.0 * trainer.evaluate(&mut net, &train.samples, &train.labels),
        100.0 * trainer.evaluate(&mut net, &val.samples, &val.labels)
    );

    // Gradient saliency toward the stop-sign logit: the monitored layer
    // feeds the linear output layer, so ∂n_c/∂n_i = W[i, c].
    let out_layer = net.len() - 1;
    let dense = net
        .layer(out_layer)
        .as_any()
        .downcast_ref::<Dense>()
        .expect("output layer is dense");
    let saliency = saliency_from_output_weights(dense, STOP_SIGN_CLASS);
    let selection = NeuronSelection::top_fraction_by_saliency(&saliency, 0.25);
    println!(
        "[monitoring {} of 84 neurons for class {STOP_SIGN_CLASS} (stop sign)]",
        selection.len()
    );

    let monitored_layer = 3; // fc, relu, fc(84), relu <- monitored
    let mut monitor = MonitorBuilder::new(monitored_layer, 0)
        .with_selection(selection)
        .with_classes(vec![STOP_SIGN_CLASS])
        .build::<BddZone>(&mut net, &train.samples, &train.labels, 43);

    if let Some(zone) = monitor.zone(STOP_SIGN_CLASS) {
        println!(
            "  stop-sign zone: {} visited patterns over {} monitored neurons",
            zone.seed_count(),
            zone.width()
        );
    }
    println!("[γ sweep over stop-sign validation data (class-conditioned, as in the paper)]");
    let sweep = GammaSweep::up_to(3).with_mode(EvalMode::ByLabel).run(
        &mut monitor,
        &mut net,
        &val.samples,
        &val.labels,
    );
    println!("  γ   #oop/#total           precision");
    for g in &sweep {
        println!(
            "  {}   {:>5}/{:<5} ({:>6.2}%)   {:>6.2}%",
            g.gamma,
            g.stats.out_of_pattern,
            g.stats.total,
            100.0 * g.stats.out_of_pattern_rate(),
            100.0 * g.stats.warning_precision()
        );
    }

    // Cross-check: a single final evaluation at the last γ.
    let final_stats = evaluate_with_mode(
        &monitor,
        &mut net,
        &val.samples,
        &val.labels,
        64,
        EvalMode::ByLabel,
    );
    println!("[final] {final_stats}");
}
