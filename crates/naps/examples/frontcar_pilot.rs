//! The highway-pilot case study (paper Section III, Figure 3): a neural
//! front-car selector embedded between classical perception and the
//! control unit, supervised by an activation-pattern monitor.
//!
//! Run with `cargo run --release --example frontcar_pilot`.

use naps::frontcar::{Conditions, FrontCarPipeline, PipelineConfig, Scenario};
use naps::monitor::Verdict;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    println!("[training the front-car selection network on nominal traffic]");
    let mut pipe = FrontCarPipeline::train(
        PipelineConfig {
            train_scenarios: 1500,
            ..PipelineConfig::default()
        },
        &mut rng,
    );
    println!(
        "  nominal accuracy: {:.1}%",
        100.0 * pipe.accuracy(400, Conditions::nominal(), &mut rng)
    );

    println!("\n[a few live pipeline steps]");
    for i in 0..6 {
        let scenario = Scenario::sample(Conditions::nominal(), &mut rng);
        let out = pipe.step(&scenario, &mut rng);
        let flag = match out.verdict {
            Verdict::OutOfPattern => " <-- monitor: decision not supported by training!",
            _ => "",
        };
        println!(
            "  step {i}: {} vehicles | selected slot {} (truth {}) | {:?}{flag}",
            scenario.vehicles.len(),
            out.selected,
            out.ground_truth,
            out.verdict,
        );
    }

    println!("\n[warning rates across deployment conditions]");
    let suites = [
        ("nominal        ", Conditions::nominal()),
        ("heavy rain     ", Conditions::heavy_rain()),
        ("dense cut-ins  ", Conditions::dense_cutins()),
        ("degraded sensor", Conditions::degraded_sensor()),
    ];
    for (name, c) in suites {
        let acc = pipe.accuracy(400, c, &mut rng);
        let warn = pipe.warning_rate(400, c, &mut rng);
        println!(
            "  {name}  accuracy {:>5.1}%   warnings {:>5.1}%",
            100.0 * acc,
            100.0 * warn
        );
    }
    println!("\nfrequent warnings under shifted conditions tell the team the");
    println!("deployed network is operating outside its training distribution.");
}
