//! Deployment round-trip: ship a trained network **and** its activation
//! pattern monitor as two JSON artifacts, restore them in a fresh process,
//! and verify the restored pair reproduces every verdict.
//!
//! This is the workflow the paper implies for certification: the monitor
//! is built once in engineering time, frozen, and deployed next to the
//! network on the vehicle.
//!
//! Run with `cargo run --release --example monitor_deployment`.

use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, Monitor, MonitorBuilder, MonitorSnapshot};
use naps::nn::{mlp, Adam, ModelSnapshot, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);

    // Engineering time: train and build.
    println!("[engineering] training and building the monitor");
    let train = digits::generate(40, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(15, digits::DigitStyle::hard(), &mut rng);
    let mut net = mlp(&[784, 64, 32, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );
    let monitor =
        MonitorBuilder::new(3, 1).build::<BddZone>(&mut net, &train.samples, &train.labels, 10);

    // Freeze both artifacts.
    let dir = std::env::temp_dir().join("naps_deployment_demo");
    std::fs::create_dir_all(&dir)?;
    let model_path = dir.join("model.json");
    let monitor_path = dir.join("monitor.json");
    std::fs::write(
        &model_path,
        serde_json::to_string(&ModelSnapshot::capture(&net)?)?,
    )?;
    std::fs::write(&monitor_path, serde_json::to_string(&monitor.snapshot())?)?;
    println!(
        "[engineering] wrote {} ({} bytes) and {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len(),
        monitor_path.display(),
        std::fs::metadata(&monitor_path)?.len()
    );

    // Deployment: a "fresh process" restores both.
    println!("[deployment] restoring model + monitor from disk");
    let model_snap: ModelSnapshot = serde_json::from_str(&std::fs::read_to_string(&model_path)?)?;
    let monitor_snap: MonitorSnapshot =
        serde_json::from_str(&std::fs::read_to_string(&monitor_path)?)?;
    let mut deployed_net = model_snap.restore();
    let deployed_monitor = Monitor::from_snapshot(&monitor_snap)?;

    // Verify the deployed pair agrees with the engineering pair.
    let mut agreements = 0usize;
    for x in &val.samples {
        let a = monitor.check(&mut net, x);
        let b = deployed_monitor.check(&mut deployed_net, x);
        assert_eq!(a, b, "deployed verdict diverged");
        agreements += 1;
    }
    println!(
        "[deployment] {agreements}/{} validation verdicts identical after the round-trip",
        val.samples.len()
    );
    println!(
        "[deployment] monitor: γ={}, {} monitored classes, {} monitored neurons",
        deployed_monitor.gamma(),
        deployed_monitor.monitored_classes().len(),
        deployed_monitor.selection().len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
