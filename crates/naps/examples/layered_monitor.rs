//! Joint monitoring of several ReLU layers.
//!
//! The paper monitors one close-to-output layer; Section II notes any
//! ReLU layer qualifies.  This example builds monitors on **two** layers
//! of a digit classifier — the wide early ReLU (coarse features) and the
//! narrow late ReLU (class-level features) — and compares the combining
//! policies on clean and corrupted data:
//!
//! * `Any`   — warn if either layer is unfamiliar (sensitive),
//! * `Majority` — warn when most layers agree,
//! * `All`   — warn only when every layer is unfamiliar (precise).
//!
//! Run with `cargo run --release --example layered_monitor`.

use naps::data::corrupt::{shift_dataset, Corruption};
use naps::data::digits;
use naps::monitor::ActivationMonitor;
use naps::monitor::{BddZone, CombinePolicy, LayeredMonitor, MonitorBuilder, Verdict};
use naps::nn::{mlp, Adam, Sequential, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHALLOW_LAYER: usize = 1; // ReLU after the 64-wide dense layer
const DEEP_LAYER: usize = 3; // ReLU after the 32-wide dense layer

fn warning_rate(
    jm: &LayeredMonitor<BddZone>,
    net: &mut Sequential,
    samples: &[naps::tensor::Tensor],
) -> f64 {
    let reports = jm.check_batch(net, samples);
    reports
        .iter()
        .filter(|r| r.combined == Verdict::OutOfPattern)
        .count() as f64
        / reports.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(23);

    println!("[training a digit classifier with two monitorable ReLU layers]");
    let train = digits::generate(40, digits::DigitStyle::clean(), &mut rng);
    let val = digits::generate(20, digits::DigitStyle::clean(), &mut rng);
    let mut net = mlp(&[784, 64, 32, 10], &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        verbose: false,
    });
    trainer.fit(
        &mut net,
        &train.samples,
        &train.labels,
        &mut Adam::new(2e-3),
        &mut rng,
    );

    println!("[building per-layer monitors (γ = 1)]");
    let build = |net: &mut Sequential, layer: usize| {
        MonitorBuilder::new(layer, 1).build::<BddZone>(net, &train.samples, &train.labels, 10)
    };
    let shallow = build(&mut net, SHALLOW_LAYER);
    let deep = build(&mut net, DEEP_LAYER);
    println!(
        "    layer {SHALLOW_LAYER}: {} seeds over 64 neurons, layer {DEEP_LAYER}: {} seeds over 32 neurons",
        shallow.seed_counts().iter().flatten().sum::<usize>(),
        deep.seed_counts().iter().flatten().sum::<usize>()
    );

    println!("[comparing combining policies on clean vs corrupted validation data]");
    let mut rng2 = StdRng::seed_from_u64(24);
    let noisy = shift_dataset(&val, 1, 28, Corruption::GaussianNoise(0.4), &mut rng2);

    println!("    {:<10} {:>12} {:>12}", "policy", "clean", "noise 0.4");
    for (name, policy) in [
        ("any", CombinePolicy::Any),
        ("majority", CombinePolicy::Majority),
        ("all", CombinePolicy::All),
    ] {
        let jm = LayeredMonitor::new(
            vec![build(&mut net, SHALLOW_LAYER), build(&mut net, DEEP_LAYER)],
            policy,
        );
        let clean_rate = warning_rate(&jm, &mut net, &val.samples);
        let noisy_rate = warning_rate(&jm, &mut net, &noisy.samples);
        println!(
            "    {:<10} {:>11.1}% {:>11.1}%",
            name,
            100.0 * clean_rate,
            100.0 * noisy_rate
        );
    }

    // Show one per-layer report so the structure is visible.
    let jm = LayeredMonitor::new(vec![shallow, deep], CombinePolicy::Any);
    let report = jm.check(&mut net, &noisy.samples[0]);
    println!(
        "[sample report] predicted {}, per-layer {:?}, combined {:?}",
        report.predicted, report.per_layer, report.combined
    );
    println!(
        "(expected: 'any' warns most and 'all' least on both columns; every \
         policy warns more under noise)"
    );
}
