//! # naps — runtime monitoring of neuron activation patterns
//!
//! Umbrella crate re-exporting the full `naps` workspace, a Rust
//! reproduction of *Runtime Monitoring Neuron Activation Patterns*
//! (Cheng, Nührenberg, Yasuoka; DATE 2019, arXiv:1809.06573).
//!
//! After training a ReLU classifier, a [`monitor::Monitor`] records the
//! binary on/off activation patterns of a close-to-output layer for all
//! correctly classified training inputs, enlarges each class's pattern set
//! by a Hamming-distance budget `γ` (the *γ-comfort zone*), and stores the
//! result in a binary decision diagram.  At inference time the monitor
//! checks — in time linear in the number of monitored neurons — whether the
//! current input's pattern lies inside the comfort zone of the predicted
//! class, raising an *out-of-pattern* warning otherwise.
//!
//! ## Crates
//!
//! | Module alias | Crate | Contents |
//! |---|---|---|
//! | [`bdd`] | `naps-bdd` | ROBDD manager with Hamming-ball dilation |
//! | [`tensor`] | `naps-tensor` | dense f32 tensors, matmul, im2col, pooling |
//! | [`nn`] | `naps-nn` | trainable layers, optimizers, activation taps, saliency |
//! | [`data`] | `naps-data` | procedural MNIST-like / GTSRB-like datasets, shifts |
//! | [`monitor`] | `naps-core` | the paper's contribution: comfort zones + monitors |
//! | [`frontcar`] | `naps-frontcar` | highway front-car selection case study |
//! | [`serve`] | `naps-serve` | parallel monitoring engine: frozen shards + work-stealing worker pool |
//!
//! The monitor family — [`monitor::Monitor`], [`monitor::LayeredMonitor`],
//! [`monitor::RefinedMonitor`], [`monitor::GridMonitor`] — is driven
//! through the shared [`monitor::ActivationMonitor`] trait (`check`,
//! `check_batch`, `enlarge_to`); every report type answers
//! [`monitor::MonitorOutcome::out_of_pattern`] uniformly.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end Figure 1 workflow:
//! train → build monitor → query in deployment → flag a novelty input.

pub use naps_bdd as bdd;
pub use naps_core as monitor;
pub use naps_data as data;
pub use naps_frontcar as frontcar;
pub use naps_nn as nn;
pub use naps_serve as serve;
pub use naps_tensor as tensor;
