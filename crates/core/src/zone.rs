//! Comfort-zone storage backends (Definition 2, `Z^γ_c`).
//!
//! [`BddZone`] is the paper's representation: patterns live in a BDD, the
//! γ-enlargement is existential quantification, and the membership query is
//! linear in the number of monitored neurons.  [`ExactZone`] is the obvious
//! explicit alternative — a hash set of seed patterns with per-seed
//! Hamming checks — kept as a semantic reference and as the baseline the
//! benchmarks compare against.

use crate::pattern::Pattern;
use naps_bdd::{Bdd, BddSnapshot, NodeId};
use std::collections::HashSet;

/// Storage for one class's γ-comfort zone.
///
/// Lifecycle: create with [`Zone::empty`], [`Zone::insert`] every visited
/// pattern (Algorithm 1 lines 4–8), then [`Zone::enlarge_to`] the target
/// `γ` (lines 9–14).  `enlarge_to` may be called repeatedly with growing
/// `γ` — e.g. by the abstraction sweep of Section III — and is monotone:
/// the stored set only grows.
pub trait Zone: std::fmt::Debug + Send + Sync {
    /// An empty zone over `width`-neuron patterns.
    fn empty(width: usize) -> Self
    where
        Self: Sized;

    /// Pattern width (number of monitored neurons).
    fn width(&self) -> usize;

    /// Adds a visited pattern to the seed set `Z^0_c`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the zone width.
    fn insert(&mut self, pattern: &Pattern);

    /// Enlarges the zone to Hamming radius `gamma` around the seeds.
    ///
    /// # Panics
    ///
    /// May panic if called with a `gamma` smaller than a previously
    /// requested one (zones only grow).
    fn enlarge_to(&mut self, gamma: u32);

    /// Current radius γ.
    fn gamma(&self) -> u32;

    /// Membership query: is `pattern` inside `Z^γ_c`?
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the zone width.
    fn contains(&self, pattern: &Pattern) -> bool;

    /// Minimum Hamming distance from `pattern` to the **seed** set
    /// `Z^0_c`, or `None` if no pattern was inserted.  `Some(0)` means the
    /// exact pattern was visited in training.
    fn distance_to_seeds(&self, pattern: &Pattern) -> Option<u32>;

    /// Minimum Hamming distance from `pattern` to the **enlarged** zone
    /// `Z^γ_c`, but only when it is at most `budget` — `None` when the
    /// zone is empty or further than the budget.  `Some(0)` iff
    /// [`Zone::contains`] holds.  This is the graded monitor's query:
    /// implementations prune the search at the budget instead of
    /// computing the full distance.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from the zone width.
    fn distance_to_zone_within(&self, pattern: &Pattern, budget: u32) -> Option<u32>;

    /// Number of distinct seed patterns inserted.  Implementations whose
    /// counting can exceed `usize` (e.g. diagram-based counting over very
    /// wide patterns) saturate at `usize::MAX` instead of wrapping.
    fn seed_count(&self) -> usize;

    /// Merges another zone's **seed set** into this one (set union), then
    /// restores this zone's γ-enlargement.  Supports building monitors
    /// over data shards and combining them (e.g. fleet-wide pattern
    /// collection).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    fn absorb(&mut self, other: &Self)
    where
        Self: Sized;
}

/// BDD-backed comfort zone (the paper's representation).
#[derive(Debug)]
pub struct BddZone {
    bdd: Bdd,
    seeds: NodeId,
    zone: NodeId,
    gamma: u32,
}

impl BddZone {
    /// Decision-diagram node count of the enlarged zone (a size metric for
    /// the benchmarks).
    pub fn node_count(&self) -> usize {
        self.bdd.node_count(self.zone)
    }

    /// Number of patterns contained in the enlarged zone.
    pub fn pattern_count(&self) -> f64 {
        self.bdd.sat_count(self.zone)
    }

    /// Serializable snapshot of the **seed** set plus γ; restoring
    /// re-dilates, which is cheaper than storing the enlarged diagram.
    pub fn snapshot(&self) -> (BddSnapshot, u32) {
        (BddSnapshot::capture(&self.bdd, self.seeds), self.gamma)
    }

    /// Serializable snapshot of the **enlarged** zone `Z^γ_c` itself.
    ///
    /// Unlike [`BddZone::snapshot`] — which stores only the seed set and
    /// re-dilates on restore — this captures the dilated diagram, so a
    /// serving layer can answer membership queries directly on the
    /// immutable snapshot ([`BddSnapshot::eval`]) with no manager, no
    /// re-dilation and no locking.  `naps-serve` freezes one of these per
    /// class and shares it across worker threads behind an `Arc`.
    pub fn zone_snapshot(&self) -> BddSnapshot {
        BddSnapshot::capture(&self.bdd, self.zone)
    }

    /// Snapshot of the **seed** set `Z^0_c` alone (the first component of
    /// [`BddZone::snapshot`]), used for frozen distance-to-seeds queries.
    pub fn seed_snapshot(&self) -> BddSnapshot {
        BddSnapshot::capture(&self.bdd, self.seeds)
    }

    /// Restores a zone from a snapshot produced by [`BddZone::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns the underlying [`naps_bdd::BddError`] if the snapshot is
    /// corrupt or has a different width.
    pub fn from_snapshot(snapshot: &BddSnapshot, gamma: u32) -> Result<Self, naps_bdd::BddError> {
        let mut bdd = Bdd::new(snapshot.num_vars());
        let seeds = snapshot.restore(&mut bdd)?;
        let zone = bdd.dilate(seeds, gamma);
        Ok(BddZone {
            bdd,
            seeds,
            zone,
            gamma,
        })
    }
}

impl Zone for BddZone {
    fn empty(width: usize) -> Self {
        let bdd = Bdd::new(width);
        let zero = bdd.zero();
        BddZone {
            bdd,
            seeds: zero,
            zone: zero,
            gamma: 0,
        }
    }

    fn width(&self) -> usize {
        self.bdd.num_vars()
    }

    fn insert(&mut self, pattern: &Pattern) {
        assert_eq!(pattern.len(), self.width(), "pattern width mismatch");
        let cube = self.bdd.cube_from_bools(&pattern.to_bools());
        self.seeds = self.bdd.or(self.seeds, cube);
        // Keep the enlarged zone consistent with the current gamma: new
        // seeds are dilated on insertion (cheap for gamma established
        // later; builders insert first and enlarge once).
        if self.gamma == 0 {
            self.zone = self.seeds;
        } else {
            let ball = self.bdd.dilate(cube, self.gamma);
            self.zone = self.bdd.or(self.zone, ball);
        }
    }

    fn enlarge_to(&mut self, gamma: u32) {
        assert!(
            gamma >= self.gamma,
            "zones only grow: current gamma {} > requested {gamma}",
            self.gamma
        );
        let extra = gamma - self.gamma;
        if extra > 0 {
            self.zone = self.bdd.dilate(self.zone, extra);
            self.gamma = gamma;
        }
    }

    fn gamma(&self) -> u32 {
        self.gamma
    }

    fn contains(&self, pattern: &Pattern) -> bool {
        assert_eq!(pattern.len(), self.width(), "pattern width mismatch");
        self.bdd.eval(self.zone, &pattern.to_bools())
    }

    fn distance_to_seeds(&self, pattern: &Pattern) -> Option<u32> {
        self.bdd
            .min_hamming_distance(self.seeds, &pattern.to_bools())
    }

    fn distance_to_zone_within(&self, pattern: &Pattern, budget: u32) -> Option<u32> {
        assert_eq!(pattern.len(), self.width(), "pattern width mismatch");
        self.bdd
            .min_hamming_distance_within(self.zone, &pattern.to_bools(), budget)
    }

    /// Counted on the diagram via [`naps_bdd::Bdd::sat_count`], which
    /// returns `f64`; counts at or above `usize::MAX` (reachable only for
    /// astronomically large seed sets, or any non-empty set over > 1023
    /// neurons where the count itself overflows to infinity) **saturate**
    /// to `usize::MAX` rather than truncating, and counts above `2^53`
    /// are subject to `f64` rounding.
    fn seed_count(&self) -> usize {
        let count = self.bdd.sat_count(self.seeds);
        if count >= usize::MAX as f64 {
            usize::MAX
        } else {
            count as usize
        }
    }

    fn absorb(&mut self, other: &Self) {
        assert_eq!(self.width(), other.width(), "pattern width mismatch");
        // Transplant the other zone's seed diagram into this manager, then
        // re-establish the gamma-ball around the union.
        let (snap, _) = other.snapshot();
        let other_seeds = snap
            .restore(&mut self.bdd)
            // naps-lint: allow(typed_errors, "the snapshot was taken from a live zone by the line above; restore of a just-taken snapshot cannot be malformed")
            .expect("snapshot from a live zone is well-formed");
        self.seeds = self.bdd.or(self.seeds, other_seeds);
        let ball = self.bdd.dilate(other_seeds, self.gamma);
        self.zone = self.bdd.or(self.zone, ball);
    }
}

impl BddZone {
    /// Minimum Hamming distance from `pattern` to the **enlarged** zone
    /// `Z^γ_c` without a budget — the full memoised sweep, kept as the
    /// reference [`Zone::distance_to_zone_within`] is verified and
    /// benchmarked against.  `Some(0)` ⇔ [`Zone::contains`].
    pub fn distance_to_zone(&self, pattern: &Pattern) -> Option<u32> {
        assert_eq!(pattern.len(), self.width(), "pattern width mismatch");
        self.bdd
            .min_hamming_distance(self.zone, &pattern.to_bools())
    }

    /// Fraction of the full pattern space `{0,1}^d` covered by the
    /// enlarged zone — the quantitative "coarseness of abstraction" of
    /// Figure 2 (α1 ≈ 0, α3 ≈ 1).
    ///
    /// Computed as a normalized measure directly on the diagram
    /// ([`naps_bdd::Bdd::sat_fraction`]), never as
    /// `pattern_count() / 2^d`: the quotient returned `0.0` for every
    /// width-0 zone (even one containing the empty pattern, where the
    /// zone covers the whole space) and silently divided by `inf` —
    /// reporting 0 coverage — for widths above 1023, where `2^d`
    /// overflows `f64`.
    pub fn volume_fraction(&self) -> f64 {
        self.bdd.sat_fraction(self.zone)
    }

    /// Garbage-collects the underlying manager: only the seed set and the
    /// enlarged zone survive.  Construction and γ sweeps leave many dead
    /// intermediate diagrams behind; compacting a finished zone typically
    /// shrinks its arena by an order of magnitude before deployment.
    pub fn compact(&mut self) {
        let (fresh, roots) = self.bdd.compact(&[self.seeds, self.zone]);
        self.bdd = fresh;
        self.seeds = roots[0];
        self.zone = roots[1];
    }

    /// Total nodes allocated in the manager (live + garbage); compare
    /// before/after [`BddZone::compact`].
    pub fn allocated_nodes(&self) -> usize {
        self.bdd.stats().allocated_nodes
    }

    /// Size of the enlarged zone when the monitored neurons are reordered
    /// by `perm` (`perm[neuron] = position`, see
    /// [`naps_bdd::Bdd::permute`]) — a what-if measurement for the
    /// ordering heuristics of [`crate::order_by_bias`] and
    /// [`crate::order_by_saliency`].  The zone itself is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..width`.
    pub fn node_count_under(&self, perm: &[u32]) -> usize {
        let (fresh, roots) = self.bdd.permute(&[self.zone], perm);
        fresh.node_count(roots[0])
    }

    /// Like [`BddZone::node_count_under`], but lets greedy sifting
    /// (see [`naps_bdd::Bdd::sift`]) search for the order; returns the
    /// best size found and the corresponding permutation.
    pub fn sifted_node_count(&self, max_passes: usize) -> (usize, Vec<u32>) {
        let (fresh, roots, perm) = self.bdd.sift(&[self.zone], max_passes);
        (fresh.node_count(roots[0]), perm)
    }
}

/// Explicit-set comfort zone: seeds in a hash set, membership by scanning
/// seed distances.  Exact but O(#seeds) per query — the baseline that
/// motivates the BDD.
#[derive(Debug, Clone)]
pub struct ExactZone {
    width: usize,
    seeds: HashSet<Pattern>,
    gamma: u32,
}

impl Zone for ExactZone {
    fn empty(width: usize) -> Self {
        ExactZone {
            width,
            seeds: HashSet::new(),
            gamma: 0,
        }
    }

    fn width(&self) -> usize {
        self.width
    }

    fn insert(&mut self, pattern: &Pattern) {
        assert_eq!(pattern.len(), self.width, "pattern width mismatch");
        self.seeds.insert(pattern.clone());
    }

    fn enlarge_to(&mut self, gamma: u32) {
        assert!(
            gamma >= self.gamma,
            "zones only grow: current gamma {} > requested {gamma}",
            self.gamma
        );
        self.gamma = gamma;
    }

    fn gamma(&self) -> u32 {
        self.gamma
    }

    fn contains(&self, pattern: &Pattern) -> bool {
        assert_eq!(pattern.len(), self.width, "pattern width mismatch");
        // Fast path: exact membership.
        if self.seeds.contains(pattern) {
            return true;
        }
        self.seeds.iter().any(|s| s.hamming(pattern) <= self.gamma)
    }

    fn distance_to_seeds(&self, pattern: &Pattern) -> Option<u32> {
        self.seeds.iter().map(|s| s.hamming(pattern)).min()
    }

    /// The enlarged zone is a union of radius-γ balls around the seeds,
    /// so the distance to it is `max(0, distance_to_seeds − γ)`.
    fn distance_to_zone_within(&self, pattern: &Pattern, budget: u32) -> Option<u32> {
        assert_eq!(pattern.len(), self.width, "pattern width mismatch");
        self.seeds
            .iter()
            .map(|s| s.hamming(pattern).saturating_sub(self.gamma))
            .min()
            .filter(|&d| d <= budget)
    }

    fn seed_count(&self) -> usize {
        self.seeds.len()
    }

    fn absorb(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "pattern width mismatch");
        self.seeds.extend(other.seeds.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: &[u8]) -> Pattern {
        Pattern::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    fn backend_contract<Z: Zone>() {
        let mut z = Z::empty(5);
        assert_eq!(z.width(), 5);
        assert_eq!(z.seed_count(), 0);
        assert!(!z.contains(&p(&[0, 0, 0, 0, 0])));
        assert_eq!(z.distance_to_seeds(&p(&[0, 0, 0, 0, 0])), None);

        z.insert(&p(&[1, 0, 1, 0, 1]));
        z.insert(&p(&[0, 0, 0, 0, 0]));
        z.insert(&p(&[1, 0, 1, 0, 1])); // duplicate
        assert_eq!(z.seed_count(), 2);

        // γ = 0: exact membership only.
        assert!(z.contains(&p(&[1, 0, 1, 0, 1])));
        assert!(!z.contains(&p(&[1, 1, 1, 0, 1])));
        assert_eq!(z.distance_to_seeds(&p(&[1, 1, 1, 0, 1])), Some(1));

        // γ = 1: radius-one ball.
        z.enlarge_to(1);
        assert_eq!(z.gamma(), 1);
        assert!(z.contains(&p(&[1, 1, 1, 0, 1])));
        assert!(!z.contains(&p(&[1, 1, 1, 1, 1])));

        // γ = 2 reached incrementally.
        z.enlarge_to(2);
        assert!(z.contains(&p(&[1, 1, 1, 1, 1])));
        // Distance to seeds is unaffected by enlargement.
        assert_eq!(z.distance_to_seeds(&p(&[1, 1, 1, 0, 1])), Some(1));
    }

    #[test]
    fn bdd_zone_satisfies_contract() {
        backend_contract::<BddZone>();
    }

    #[test]
    fn exact_zone_satisfies_contract() {
        backend_contract::<ExactZone>();
    }

    #[test]
    fn backends_agree_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        for gamma in 0..3u32 {
            let mut b = BddZone::empty(8);
            let mut e = ExactZone::empty(8);
            for _ in 0..12 {
                let bits: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
                let pat = Pattern::from_bools(&bits);
                b.insert(&pat);
                e.insert(&pat);
            }
            b.enlarge_to(gamma);
            e.enlarge_to(gamma);
            for _ in 0..100 {
                let bits: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
                let probe = Pattern::from_bools(&bits);
                assert_eq!(
                    b.contains(&probe),
                    e.contains(&probe),
                    "gamma={gamma} probe={probe}"
                );
                assert_eq!(b.distance_to_seeds(&probe), e.distance_to_seeds(&probe));
            }
        }
    }

    fn zone_distance_contract<Z: Zone>() {
        let mut z = Z::empty(5);
        assert_eq!(z.distance_to_zone_within(&p(&[0, 0, 0, 0, 0]), 5), None);
        z.insert(&p(&[1, 1, 0, 0, 0]));
        z.insert(&p(&[0, 0, 0, 1, 1]));
        z.enlarge_to(1);
        // Inside the enlarged zone: distance 0, regardless of budget.
        assert_eq!(z.distance_to_zone_within(&p(&[1, 1, 0, 0, 1]), 0), Some(0));
        // One flip outside the zone (two from the nearest seed).
        let probe = p(&[1, 1, 1, 0, 1]);
        assert!(!z.contains(&probe));
        assert_eq!(z.distance_to_zone_within(&probe, 1), Some(1));
        assert_eq!(z.distance_to_zone_within(&probe, 0), None, "beyond budget");
        // Distance to the zone is seed distance minus gamma, floored at 0.
        let far = p(&[1, 0, 1, 0, 1]);
        let d_seeds = z.distance_to_seeds(&far).unwrap();
        assert_eq!(
            z.distance_to_zone_within(&far, 5),
            Some(d_seeds.saturating_sub(1))
        );
    }

    #[test]
    fn bdd_zone_bounded_zone_distance() {
        zone_distance_contract::<BddZone>();
    }

    #[test]
    fn exact_zone_bounded_zone_distance() {
        zone_distance_contract::<ExactZone>();
    }

    #[test]
    fn backends_agree_on_bounded_zone_distance() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for gamma in 0..3u32 {
            let mut b = BddZone::empty(8);
            let mut e = ExactZone::empty(8);
            for _ in 0..10 {
                let bits: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
                let pat = Pattern::from_bools(&bits);
                b.insert(&pat);
                e.insert(&pat);
            }
            b.enlarge_to(gamma);
            e.enlarge_to(gamma);
            for _ in 0..100 {
                let bits: Vec<bool> = (0..8).map(|_| rng.gen()).collect();
                let probe = Pattern::from_bools(&bits);
                for budget in 0..5u32 {
                    assert_eq!(
                        b.distance_to_zone_within(&probe, budget),
                        e.distance_to_zone_within(&probe, budget),
                        "gamma={gamma} budget={budget} probe={probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn insert_after_enlarge_keeps_zone_consistent() {
        let mut z = BddZone::empty(4);
        z.insert(&p(&[0, 0, 0, 0]));
        z.enlarge_to(1);
        z.insert(&p(&[1, 1, 1, 1]));
        // The late seed must also be dilated.
        assert!(z.contains(&p(&[1, 1, 1, 0])));
        assert!(z.contains(&p(&[0, 1, 0, 0])));
        assert!(!z.contains(&p(&[1, 1, 0, 0])));
    }

    #[test]
    fn bdd_zone_counts() {
        let mut z = BddZone::empty(6);
        z.insert(&p(&[1, 0, 0, 0, 0, 0]));
        z.enlarge_to(1);
        assert_eq!(z.pattern_count(), 7.0); // 1 + 6 flips
        assert!(z.node_count() > 0);
    }

    #[test]
    fn frozen_zone_snapshots_answer_like_the_live_zone() {
        let mut z = BddZone::empty(6);
        z.insert(&p(&[1, 0, 1, 0, 1, 0]));
        z.insert(&p(&[0, 1, 1, 0, 0, 1]));
        z.enlarge_to(2);
        let zone_snap = z.zone_snapshot();
        let seed_snap = z.seed_snapshot();
        for m in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let probe = Pattern::from_bools(&bits);
            assert_eq!(zone_snap.eval(&bits), z.contains(&probe), "zone at {m}");
            assert_eq!(
                seed_snap.min_hamming_distance(&bits),
                z.distance_to_seeds(&probe),
                "distance at {m}"
            );
        }
    }

    #[test]
    fn bdd_zone_snapshot_roundtrip() {
        let mut z = BddZone::empty(5);
        z.insert(&p(&[1, 0, 1, 0, 1]));
        z.insert(&p(&[0, 1, 0, 1, 0]));
        z.enlarge_to(1);
        let (snap, gamma) = z.snapshot();
        let restored = BddZone::from_snapshot(&snap, gamma).expect("restore");
        assert_eq!(restored.gamma(), 1);
        assert_eq!(restored.seed_count(), 2);
        // Membership identical on all 32 patterns.
        for m in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let probe = Pattern::from_bools(&bits);
            assert_eq!(z.contains(&probe), restored.contains(&probe));
        }
    }

    fn absorb_contract<Z: Zone>() {
        let mut a = Z::empty(5);
        a.insert(&p(&[1, 0, 0, 0, 0]));
        a.enlarge_to(1);
        let mut b = Z::empty(5);
        b.insert(&p(&[0, 0, 0, 0, 1]));
        a.absorb(&b);
        assert_eq!(a.seed_count(), 2);
        // Both seeds present, both gamma-dilated in the merged zone.
        assert!(a.contains(&p(&[1, 0, 0, 0, 0])));
        assert!(a.contains(&p(&[0, 0, 0, 0, 1])));
        assert!(
            a.contains(&p(&[0, 1, 0, 0, 1])),
            "absorbed seed not dilated"
        );
        assert!(!a.contains(&p(&[1, 1, 0, 0, 1])));
        // Distances reflect the union of seeds.
        assert_eq!(a.distance_to_seeds(&p(&[0, 0, 0, 0, 1])), Some(0));
    }

    #[test]
    fn bdd_zone_absorb_merges_seed_sets() {
        absorb_contract::<BddZone>();
    }

    #[test]
    fn exact_zone_absorb_merges_seed_sets() {
        absorb_contract::<ExactZone>();
    }

    #[test]
    fn compact_preserves_zone_and_frees_nodes() {
        let mut z = BddZone::empty(10);
        // Generate construction garbage: incremental dilation.
        for i in 0..30u64 {
            let bits: Vec<u8> = (0..10).map(|b| ((i >> (b % 6)) & 1) as u8).collect();
            z.insert(&p(&bits));
        }
        z.enlarge_to(1);
        z.enlarge_to(2);
        let before = z.allocated_nodes();
        let probes: Vec<Pattern> = (0..40u64)
            .map(|i| {
                let bits: Vec<u8> = (0..10).map(|b| ((i >> (b % 7)) & 1) as u8).collect();
                p(&bits)
            })
            .collect();
        let verdicts: Vec<bool> = probes.iter().map(|q| z.contains(q)).collect();
        let distances: Vec<Option<u32>> = probes.iter().map(|q| z.distance_to_seeds(q)).collect();
        z.compact();
        assert!(z.allocated_nodes() < before, "no shrinkage");
        for ((q, &v), d) in probes.iter().zip(&verdicts).zip(&distances) {
            assert_eq!(z.contains(q), v);
            assert_eq!(&z.distance_to_seeds(q), d);
        }
        assert_eq!(z.gamma(), 2);
    }

    #[test]
    fn volume_fraction_tracks_dilation() {
        let mut z = BddZone::empty(6);
        z.insert(&p(&[0, 0, 0, 0, 0, 0]));
        assert!((z.volume_fraction() - 1.0 / 64.0).abs() < 1e-12);
        z.enlarge_to(1);
        assert!((z.volume_fraction() - 7.0 / 64.0).abs() < 1e-12);
        z.enlarge_to(6);
        assert!((z.volume_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume_fraction_of_width_zero_zone() {
        // {0,1}^0 has exactly one pattern (the empty one).  A zone that
        // contains it covers the whole space; an empty zone covers none.
        let mut z = BddZone::empty(0);
        assert_eq!(z.volume_fraction(), 0.0);
        z.insert(&Pattern::from_bools(&[]));
        assert_eq!(z.volume_fraction(), 1.0);
        assert_eq!(z.seed_count(), 1);
        assert!(z.contains(&Pattern::from_bools(&[])));
    }

    #[test]
    fn volume_fraction_survives_huge_widths() {
        // 2^1200 overflows f64; the fraction must stay exact, not
        // collapse to 0 (finite/inf) or NaN (inf/inf).
        let mut z = BddZone::empty(1200);
        assert_eq!(z.volume_fraction(), 0.0);
        z.zone = z.bdd.one(); // full space, directly (inserting 2^1200 seeds is not an option)
        assert_eq!(z.volume_fraction(), 1.0);
        let v0 = z.bdd.var(0);
        z.zone = v0; // half space
        assert_eq!(z.volume_fraction(), 0.5);
    }

    #[test]
    fn seed_count_saturates_instead_of_wrapping() {
        // A full seed space over 80 neurons counts 2^80 > usize::MAX;
        // the old `as usize` cast reported a nonsense number.
        let mut z = BddZone::empty(80);
        z.seeds = z.bdd.one();
        assert_eq!(z.seed_count(), usize::MAX);
        // Beyond 1023 vars sat_count is infinite; still saturates.
        let mut w = BddZone::empty(1200);
        w.seeds = w.bdd.one();
        assert_eq!(w.seed_count(), usize::MAX);
        // Small counts are still exact.
        let mut s = BddZone::empty(8);
        s.insert(&p(&[1, 0, 1, 0, 1, 0, 1, 0]));
        s.insert(&p(&[0, 1, 0, 1, 0, 1, 0, 1]));
        assert_eq!(s.seed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "zones only grow")]
    fn shrinking_gamma_panics() {
        let mut z = ExactZone::empty(3);
        z.enlarge_to(2);
        z.enlarge_to(1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut z = BddZone::empty(3);
        z.insert(&p(&[1, 0]));
    }
}
