//! Evaluation statistics — the columns of the paper's Table II.

use crate::monitor::{Monitor, Verdict};
use crate::zone::Zone;
use naps_nn::Sequential;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Counts and derived rates from running a monitor over a labelled set.
///
/// Only samples whose **predicted** class is monitored enter `total` —
/// that is the deployment-faithful reading of the paper's single-class
/// GTSRB experiment, where the monitor is consulted exactly when the
/// network claims to see the monitored class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Samples whose predicted class is monitored.
    pub total: usize,
    /// Of `total`: samples predicted differently from their label.
    pub misclassified: usize,
    /// Of `total`: samples whose pattern fell outside the comfort zone.
    pub out_of_pattern: usize,
    /// Of `out_of_pattern`: samples that were also misclassified.
    pub out_of_pattern_and_misclassified: usize,
    /// Samples skipped because their predicted class has no zone.
    pub unmonitored: usize,
}

impl MonitorStats {
    /// `misclassified / total` — the "misclassification rate" column.
    pub fn misclassification_rate(&self) -> f64 {
        ratio(self.misclassified, self.total)
    }

    /// `out_of_pattern / total` — the paper's
    /// `#out-of-pattern images / #total images` column.
    pub fn out_of_pattern_rate(&self) -> f64 {
        ratio(self.out_of_pattern, self.total)
    }

    /// `out_of_pattern_and_misclassified / out_of_pattern` — the paper's
    /// `#out-of-pattern misclassified images / #out-of-pattern images`
    /// column: how often a warning coincides with an actual error.
    pub fn warning_precision(&self) -> f64 {
        ratio(self.out_of_pattern_and_misclassified, self.out_of_pattern)
    }

    /// Correctly classified samples that still warned, over all correctly
    /// classified samples — the false-positive rate the abstract refers to
    /// ("a small false-positive rate").
    pub fn false_positive_rate(&self) -> f64 {
        let correct = self.total - self.misclassified;
        let fp = self.out_of_pattern - self.out_of_pattern_and_misclassified;
        ratio(fp, correct)
    }

    /// Misclassified samples caught by a warning, over all misclassified
    /// samples (recall of the warning signal).
    pub fn warning_recall(&self) -> f64 {
        ratio(self.out_of_pattern_and_misclassified, self.misclassified)
    }

    /// Merges two disjoint evaluations.
    pub fn merge(&self, other: &MonitorStats) -> MonitorStats {
        MonitorStats {
            total: self.total + other.total,
            misclassified: self.misclassified + other.misclassified,
            out_of_pattern: self.out_of_pattern + other.out_of_pattern,
            out_of_pattern_and_misclassified: self.out_of_pattern_and_misclassified
                + other.out_of_pattern_and_misclassified,
            unmonitored: self.unmonitored + other.unmonitored,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Which comfort zone a sample is checked against during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Deployment-faithful: check against the zone of the **predicted**
    /// class (the monitor of Figure 1b); samples whose prediction is
    /// unmonitored are skipped.
    #[default]
    ByPrediction,
    /// Class-conditioned: check against the zone of the **ground-truth**
    /// label — the paper's single-class GTSRB evaluation, where the
    /// stop-sign monitor is assessed on all stop-sign validation images
    /// (misclassified ones included); samples whose label is unmonitored
    /// are skipped.
    ByLabel,
}

/// Runs `monitor` over a labelled evaluation set and tallies Table II
/// statistics, checking each sample against the zone of its predicted
/// class ([`EvalMode::ByPrediction`]).
///
/// # Panics
///
/// Panics if `samples.len() != labels.len()`.
pub fn evaluate<Z: Zone>(
    monitor: &Monitor<Z>,
    model: &mut Sequential,
    samples: &[Tensor],
    labels: &[usize],
    batch_size: usize,
) -> MonitorStats {
    evaluate_with_mode(
        monitor,
        model,
        samples,
        labels,
        batch_size,
        EvalMode::ByPrediction,
    )
}

/// Like [`evaluate`] but with an explicit [`EvalMode`].
///
/// # Panics
///
/// Panics if `samples.len() != labels.len()`.
pub fn evaluate_with_mode<Z: Zone>(
    monitor: &Monitor<Z>,
    model: &mut Sequential,
    samples: &[Tensor],
    labels: &[usize],
    batch_size: usize,
    mode: EvalMode,
) -> MonitorStats {
    assert_eq!(samples.len(), labels.len(), "one label per sample");
    let mut stats = MonitorStats::default();
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let batch: Vec<Tensor> = chunk.iter().map(|&i| samples[i].clone()).collect();
        let observed = monitor.observe_batch(model, &batch);
        for (&i, (predicted, pattern)) in chunk.iter().zip(&observed) {
            let zone_class = match mode {
                EvalMode::ByPrediction => *predicted,
                EvalMode::ByLabel => labels[i],
            };
            match monitor.check_pattern(zone_class, pattern) {
                Verdict::Unmonitored => stats.unmonitored += 1,
                verdict => {
                    stats.total += 1;
                    let mis = *predicted != labels[i];
                    if mis {
                        stats.misclassified += 1;
                    }
                    if verdict == Verdict::OutOfPattern {
                        stats.out_of_pattern += 1;
                        if mis {
                            stats.out_of_pattern_and_misclassified += 1;
                        }
                    }
                }
            }
        }
    }
    stats
}

impl std::fmt::Display for MonitorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {} | miscls {:.2}% | out-of-pattern {:.2}% | precision {:.2}% | fpr {:.2}%",
            self.total,
            100.0 * self.misclassification_rate(),
            100.0 * self.out_of_pattern_rate(),
            100.0 * self.warning_precision(),
            100.0 * self.false_positive_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MonitorBuilder;
    use crate::zone::ExactZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rates_compute_from_counts() {
        let s = MonitorStats {
            total: 200,
            misclassified: 10,
            out_of_pattern: 20,
            out_of_pattern_and_misclassified: 8,
            unmonitored: 5,
        };
        assert!((s.misclassification_rate() - 0.05).abs() < 1e-12);
        assert!((s.out_of_pattern_rate() - 0.10).abs() < 1e-12);
        assert!((s.warning_precision() - 0.40).abs() < 1e-12);
        assert!((s.false_positive_rate() - 12.0 / 190.0).abs() < 1e-12);
        assert!((s.warning_recall() - 0.80).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = MonitorStats::default();
        assert_eq!(s.misclassification_rate(), 0.0);
        assert_eq!(s.warning_precision(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = MonitorStats {
            total: 10,
            misclassified: 1,
            out_of_pattern: 2,
            out_of_pattern_and_misclassified: 1,
            unmonitored: 0,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.total, 20);
        assert_eq!(m.out_of_pattern, 4);
    }

    #[test]
    fn evaluate_on_training_set_has_no_warnings_at_gamma0() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 8, 2], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let s = if i % 2 == 0 { 1.5f32 } else { -1.5 };
            xs.push(Tensor::from_vec(
                vec![2],
                vec![s + 0.1 * (i as f32).sin(), s],
            ));
            ys.push(i % 2);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 8,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
        let monitor = MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
        let stats = evaluate(&monitor, &mut net, &xs, &ys, 16);
        // Every correctly classified training sample is in pattern, so all
        // warnings (if any) coincide with misclassifications.
        assert_eq!(
            stats.out_of_pattern, stats.out_of_pattern_and_misclassified,
            "a correct training sample warned: {stats}"
        );
        assert_eq!(stats.total + stats.unmonitored, 30);
    }

    #[test]
    fn by_label_mode_counts_misclassified_monitored_samples() {
        // A single-class monitor evaluated by label keeps misclassified
        // samples of the monitored class in `total` (they are skipped as
        // Unmonitored in by-prediction mode when predicted elsewhere).
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = mlp(&[2, 8, 2], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let s = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            xs.push(Tensor::from_vec(
                vec![2],
                vec![s, s + 0.05 * i as f32 % 0.3],
            ));
            ys.push(i % 2);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 8,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
        let monitor = MonitorBuilder::new(1, 0)
            .with_classes(vec![0])
            .build::<ExactZone>(&mut net, &xs, &ys, 2);
        let by_label =
            super::evaluate_with_mode(&monitor, &mut net, &xs, &ys, 16, super::EvalMode::ByLabel);
        // All class-0 samples are monitored by label.
        assert_eq!(by_label.total, 20);
        assert_eq!(by_label.unmonitored, 20);
        let by_pred = super::evaluate_with_mode(
            &monitor,
            &mut net,
            &xs,
            &ys,
            16,
            super::EvalMode::ByPrediction,
        );
        // In by-prediction mode the totals follow the predictions instead.
        assert_eq!(by_pred.total + by_pred.unmonitored, 40);
    }

    #[test]
    fn display_is_humane() {
        let s = MonitorStats {
            total: 4,
            misclassified: 1,
            out_of_pattern: 1,
            out_of_pattern_and_misclassified: 1,
            unmonitored: 0,
        };
        let line = s.to_string();
        assert!(line.contains("total 4"));
        assert!(line.contains('%'));
    }
}
