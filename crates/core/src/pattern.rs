//! Neuron activation patterns (Definition 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary neuron activation pattern `pat(f^(l)(in)) ∈ {0,1}^d`.
///
/// Bit `i` is `1` iff neuron `i`'s ReLU output is strictly positive
/// (`prelu(x) = 1 ⇔ x > 0`, Definition 1).  Stored as packed 64-bit words.
///
/// # Example
///
/// ```
/// use naps_core::Pattern;
///
/// let p = Pattern::from_activations(&[0.3, -1.0, 0.0, 2.5]);
/// assert_eq!(p.to_string(), "1001");
/// assert_eq!(p.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    words: Vec<u64>,
    len: usize,
}

impl Pattern {
    /// An all-zero pattern of `len` neurons.
    pub fn zeros(len: usize) -> Self {
        Pattern {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a pattern from explicit bits.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut p = Pattern::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.set(i, true);
            }
        }
        p
    }

    /// Applies `prelu` to raw neuron outputs: bit `i` is set iff
    /// `values[i] > 0`.
    pub fn from_activations(values: &[f32]) -> Self {
        let mut p = Pattern::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v > 0.0 {
                p.set(i, true);
            }
        }
        p
    }

    /// Like [`Pattern::from_activations`] but over a neuron subset: bit `j`
    /// reflects `values[indices[j]]`.  This is how gradient-selected
    /// neurons are monitored (Section II).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_selected_activations(values: &[f32], indices: &[usize]) -> Self {
        let mut p = Pattern::zeros(indices.len());
        for (j, &i) in indices.iter().enumerate() {
            assert!(i < values.len(), "neuron index {i} out of range");
            if values[i] > 0.0 {
                p.set(j, true);
            }
        }
        p
    }

    /// In-place counterpart of [`Pattern::from_selected_activations`]:
    /// refills this pattern from `values[indices]`, reusing the word
    /// buffer when the width already matches (the steady-state serving
    /// case — no allocation then).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn refill_from_selected_activations(&mut self, values: &[f32], indices: &[usize]) {
        if self.len != indices.len() {
            *self = Pattern::from_selected_activations(values, indices);
            return;
        }
        for w in &mut self.words {
            *w = 0;
        }
        for (j, &i) in indices.iter().enumerate() {
            assert!(i < values.len(), "neuron index {i} out of range");
            if values[i] > 0.0 {
                self.words[j / 64] |= 1 << (j % 64);
            }
        }
    }

    /// Number of monitored neurons.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for the width-0 pattern.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range");
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of active (1) neurons.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance `H(p, p')` between two equal-width patterns.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn hamming(&self, other: &Pattern) -> u32 {
        assert_eq!(self.len, other.len, "pattern widths differ");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// The pattern as a boolean vector (for BDD encoding).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The packed 64-bit words backing the pattern: bit `i` lives at
    /// `words()[i / 64] >> (i % 64)`, and bits at or above `len` are
    /// always zero.  This is the zero-copy form compiled zone evaluators
    /// consume on the serving hot path.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Display for Pattern {
    /// Renders as a `0`/`1` string, most significant neuron first bit 0
    /// leftmost (e.g. `"1001"`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Pattern {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Pattern::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_threshold_is_strictly_positive() {
        // Definition 1: prelu(0) = 0.
        let p = Pattern::from_activations(&[0.0, -0.0, 1e-9, -3.0]);
        assert!(!p.get(0));
        assert!(!p.get(1));
        assert!(p.get(2));
        assert!(!p.get(3));
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut p = Pattern::zeros(130);
        p.set(0, true);
        p.set(63, true);
        p.set(64, true);
        p.set(129, true);
        assert!(p.get(0) && p.get(63) && p.get(64) && p.get(129));
        assert_eq!(p.count_ones(), 4);
        p.set(64, false);
        assert!(!p.get(64));
        assert_eq!(p.count_ones(), 3);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let a = Pattern::from_bools(&[true, false, true, false]);
        let b = Pattern::from_bools(&[false, false, true, true]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn hamming_rejects_width_mismatch() {
        let a = Pattern::zeros(3);
        let b = Pattern::zeros(4);
        let _ = a.hamming(&b);
    }

    #[test]
    fn selection_projects_and_reindexes() {
        let vals = [1.0, -1.0, 2.0, -2.0, 3.0];
        let p = Pattern::from_selected_activations(&vals, &[1, 4]);
        assert_eq!(p.len(), 2);
        assert!(!p.get(0)); // neuron 1 inactive
        assert!(p.get(1)); // neuron 4 active
    }

    #[test]
    fn display_and_to_bools_agree() {
        let p = Pattern::from_bools(&[true, false, false, true]);
        assert_eq!(p.to_string(), "1001");
        assert_eq!(p.to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn collect_from_bool_iterator() {
        let p: Pattern = [true, true, false].into_iter().collect();
        assert_eq!(p.to_string(), "110");
    }

    #[test]
    fn patterns_hash_as_values() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Pattern::from_bools(&[true, false]));
        assert!(s.contains(&Pattern::from_bools(&[true, false])));
        assert!(!s.contains(&Pattern::from_bools(&[false, true])));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Pattern::from_bools(&[true, false, true]);
        let json = serde_json::to_string(&p).expect("serialize");
        let q: Pattern = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, q);
    }
}
