//! Runtime neuron activation pattern monitors — the primary contribution of
//! *Runtime Monitoring Neuron Activation Patterns* (Cheng, Nührenberg,
//! Yasuoka; DATE 2019, arXiv:1809.06573).
//!
//! # The idea
//!
//! After training a ReLU classifier, feed the training data through the
//! network once more and record, for a chosen close-to-output layer, the
//! **binary on/off pattern** of its neurons (Definition 1: neuron `i` is
//! `1` iff its ReLU output is positive) for every **correctly classified**
//! training input.  Per class `c`, the set of visited patterns — enlarged
//! by every pattern within Hamming distance `γ` — is the *γ-comfort zone*
//! `Z^γ_c` (Definition 2), stored in a BDD.  In operation, a classification
//! decision is trusted only if the input's pattern lies inside the comfort
//! zone of the predicted class; otherwise the monitor raises an
//! **out-of-pattern** warning: the decision is not supported by prior
//! similarities in training.
//!
//! # Map of the crate
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`ActivationMonitor`], [`MonitorOutcome`] | the family's shared query interface (`check` / `check_batch` / `out_of_pattern`) |
//! | [`Pattern`] | Definition 1, `pat(f^(l)(in))` |
//! | [`Zone`], [`BddZone`], [`ExactZone`] | Definition 2, `Z^γ_c` (BDD-backed as in the paper, plus an explicit-set reference/baseline) |
//! | [`MonitorBuilder`] | Algorithm 1 |
//! | [`Monitor`] | Definition 3 + the deployment-time query of Figure 1 |
//! | [`NeuronSelection`] | gradient-based neuron selection (Section II) |
//! | [`GammaSweep`], [`choose_gamma`] | controlling the abstraction (Section III, Figure 2) |
//! | [`GradedReport`], [`GradedQuery`], [`Triage`] | graded distance verdicts: how far out, which class is nearest (extension) |
//! | [`MonitorStats`] | the Table II columns |
//! | [`IntervalZone`], [`DbmZone`], [`RefinedMonitor`] | Section V item (2): numeric-domain refinement (box and difference-bound matrix) |
//! | [`DriftDetector`] | Section I: out-of-pattern rate as a distribution-shift indicator |
//! | [`LayeredMonitor`] | joint monitoring of several ReLU layers (extension) |
//! | [`GridMonitor`] | Section V item (1): per-grid-cell monitors for YOLO-style heads |
//! | [`order_by_bias`], [`order_by_saliency`] | BDD variable-ordering heuristics (extension) |
//!
//! # Quickstart
//!
//! ```
//! use naps_core::{ActivationMonitor, BddZone, MonitorBuilder, Verdict};
//! use naps_nn::{mlp, Adam, TrainConfig, Trainer};
//! use naps_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A toy 2-class problem.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = mlp(&[2, 8, 2], &mut rng);
//! let xs: Vec<Tensor> = (0..20)
//!     .map(|i| {
//!         let s = if i % 2 == 0 { 1.0 } else { -1.0 };
//!         Tensor::from_vec(vec![2], vec![s, s])
//!     })
//!     .collect();
//! let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
//! let trainer = Trainer::new(TrainConfig { epochs: 50, batch_size: 4, verbose: false });
//! trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
//!
//! // Build the monitor on the ReLU output (layer 1), γ = 0.
//! let monitor = MonitorBuilder::new(1, 0)
//!     .build::<BddZone>(&mut net, &xs, &ys, 2);
//! let report = monitor.check(&mut net, &xs[0]);
//! assert_eq!(report.verdict, Verdict::InPattern);
//! ```

mod abstraction;
mod activation;
pub mod batch;
mod builder;
mod dbm;
mod drift;
mod error;
pub mod graded;
mod grid;
mod interval;
mod monitor;
mod multilayer;
mod ordering;
mod pattern;
pub mod prepared;
mod refined;
mod selection;
mod stats;
mod zone;

pub use abstraction::{choose_gamma, GammaPolicy, GammaStats, GammaSweep};
pub use activation::{ActivationMonitor, MonitorOutcome};
pub use builder::MonitorBuilder;
pub use dbm::DbmZone;
pub use drift::{DriftConfig, DriftDetector, DriftStatus};
pub use error::MonitorError;
pub use graded::{GradedQuery, GradedReport, NearestZone, Triage};
pub use grid::{GridMonitor, GridReport};
pub use interval::IntervalZone;
pub use monitor::{Monitor, MonitorReport, MonitorSnapshot, Verdict};
pub use multilayer::{
    validate_monitor_family, CombinePolicy, LayeredGradedReport, LayeredMonitor, LayeredReport,
};
pub use ordering::{order_by_bias, order_by_saliency};
pub use pattern::Pattern;
pub use refined::{NumericDomain, RefinedMonitor, RefinedReport};
pub use selection::NeuronSelection;
pub use stats::{evaluate, evaluate_with_mode, EvalMode, MonitorStats};
pub use zone::{BddZone, ExactZone, Zone};
