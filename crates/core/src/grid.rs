//! Grid-cell monitoring — the paper's Section V extension (1).
//!
//! Object detectors in the YOLO family partition the image into a grid
//! and emit per-cell proposals from a **shared** head.  The paper notes
//! the monitoring technique "shall be directly applicable" there: give
//! every grid cell its own comfort-zone monitor, because cells see
//! different traffic (a sky cell rarely contains pedestrians) even when
//! the head weights are shared.  [`GridMonitor`] packages that idea: a
//! rows × cols arrangement of [`Monitor`]s over one shared head, queried
//! cell-wise in a single call.

use crate::activation::{ActivationMonitor, MonitorOutcome};
use crate::batch::{forward_observe_plan, pack_batch, ObservationPlan, ObservedBatch};
use crate::builder::MonitorBuilder;
use crate::monitor::{Monitor, MonitorReport, Verdict};
use crate::zone::{BddZone, Zone};
use naps_nn::Sequential;
use naps_tensor::Tensor;

/// Outcome of checking one full grid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridReport {
    /// One report per cell, row-major.
    pub cells: Vec<MonitorReport>,
    /// Indices (row-major) of the cells that raised an out-of-pattern
    /// warning.
    pub out_of_pattern_cells: Vec<usize>,
}

impl GridReport {
    /// Fraction of monitored (non-[`Verdict::Unmonitored`]) cells that
    /// warned.
    pub fn warning_rate(&self) -> f64 {
        let monitored = self
            .cells
            .iter()
            .filter(|r| r.verdict != Verdict::Unmonitored)
            .count();
        if monitored == 0 {
            return 0.0;
        }
        self.out_of_pattern_cells.len() as f64 / monitored as f64
    }
}

impl MonitorOutcome for GridReport {
    fn out_of_pattern(&self) -> bool {
        !self.out_of_pattern_cells.is_empty()
    }
}

/// A rows × cols grid of per-cell comfort-zone monitors over one shared
/// proposal head.
///
/// All cells monitor the same layer of the same head with the same
/// neuron selection — what differs is each cell's pattern set, built
/// from that cell's own traffic.
#[derive(Debug)]
pub struct GridMonitor<Z: Zone = BddZone> {
    cells: Vec<Monitor<Z>>,
    rows: usize,
    cols: usize,
}

impl<Z: Zone> GridMonitor<Z> {
    /// Assembles a grid from per-cell monitors (row-major order).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != rows * cols`, the grid is empty, or the
    /// cells disagree on layer, selection or class count.
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<Monitor<Z>>) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert_eq!(cells.len(), rows * cols, "one monitor per grid cell");
        let first = &cells[0];
        for m in &cells[1..] {
            assert_eq!(m.layer(), first.layer(), "cells monitor different layers");
            assert_eq!(
                m.selection(),
                first.selection(),
                "cells monitor different neuron selections"
            );
            assert_eq!(
                m.num_classes(),
                first.num_classes(),
                "cells disagree on the number of classes"
            );
        }
        GridMonitor { cells, rows, cols }
    }

    /// Builds the whole grid by running Algorithm 1 once per cell on that
    /// cell's own training traffic (`per_cell_data[r * cols + c]`, each a
    /// `(samples, labels)` pair through the shared `head`).
    ///
    /// # Panics
    ///
    /// Panics if `per_cell_data.len() != rows * cols` or any cell's data
    /// is empty (see [`MonitorBuilder::build`]).
    pub fn build(
        rows: usize,
        cols: usize,
        builder: &MonitorBuilder,
        head: &mut Sequential,
        per_cell_data: &[(Vec<Tensor>, Vec<usize>)],
        num_classes: usize,
    ) -> Self {
        assert_eq!(
            per_cell_data.len(),
            rows * cols,
            "one (samples, labels) pair per grid cell"
        );
        let cells = per_cell_data
            .iter()
            .map(|(xs, ys)| builder.build::<Z>(head, xs, ys, num_classes))
            .collect();
        GridMonitor::from_cells(rows, cols, cells)
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The monitor of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn cell(&self, row: usize, col: usize) -> &Monitor<Z> {
        assert!(row < self.rows && col < self.cols, "cell outside the grid");
        &self.cells[row * self.cols + col]
    }

    /// Checks one frame: `cell_inputs[r * cols + c]` is the feature
    /// vector the shared head sees for that cell.  The whole frame runs
    /// through the shared head in **one** forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `cell_inputs.len() != rows * cols` or the cell inputs
    /// have inconsistent widths.
    pub fn check_frame(&self, head: &mut Sequential, cell_inputs: &[Tensor]) -> GridReport {
        assert_eq!(
            cell_inputs.len(),
            self.rows * self.cols,
            "one input per grid cell"
        );
        self.judge_packed(head, &pack_batch(cell_inputs))
    }

    /// Judges a packed `[cells, feat]` frame: one forward pass through the
    /// shared head, then row `i` is judged against cell `i`'s zones.  All
    /// cells share layer and selection (checked in
    /// [`GridMonitor::from_cells`]), so the pass can be shared.
    fn judge_packed(&self, head: &mut Sequential, batch: &Tensor) -> GridReport {
        let ObservedBatch {
            predicted: predictions,
            observed,
        } = forward_observe_plan(head, batch, &ObservationPlan::single(self.cells[0].layer()));
        let monitored = &observed[0];
        let selection = self.cells[0].selection();
        let cells: Vec<MonitorReport> = predictions
            .into_iter()
            .enumerate()
            .map(|(i, predicted)| {
                let pattern = selection.pattern_from(monitored.row(i));
                let cell = &self.cells[i];
                let verdict = cell.check_pattern(predicted, &pattern);
                let distance_to_seeds = cell
                    .zone(predicted)
                    .and_then(|z| z.distance_to_seeds(&pattern));
                MonitorReport {
                    predicted,
                    verdict,
                    distance_to_seeds,
                }
            })
            .collect();
        let out_of_pattern_cells = cells
            .iter()
            .enumerate()
            .filter(|(_, r)| r.verdict == Verdict::OutOfPattern)
            .map(|(i, _)| i)
            .collect();
        GridReport {
            cells,
            out_of_pattern_cells,
        }
    }
}

impl<Z: Zone> ActivationMonitor for GridMonitor<Z> {
    type Report = GridReport;

    /// Checks one full frame packed into a single tensor: row `r * cols +
    /// c` of a `[rows * cols, features]` tensor (or the equivalent flat
    /// layout) is the feature vector the shared head sees for that cell.
    /// Use [`GridMonitor::check_frame`] when the per-cell inputs are
    /// already separate tensors.
    ///
    /// # Panics
    ///
    /// Panics if the input's length is not a multiple of the cell count.
    fn check(&self, model: &mut Sequential, input: &Tensor) -> GridReport {
        let cells = self.rows * self.cols;
        assert_eq!(
            input.len() % cells,
            0,
            "frame length {} is not divisible by the {cells} grid cells",
            input.len()
        );
        let feat = input.len() / cells;
        let batch = Tensor::from_vec(vec![cells, feat], input.data().to_vec());
        self.judge_packed(model, &batch)
    }

    /// Grows every cell's zones to radius `gamma`.
    fn enlarge_to(&mut self, gamma: u32) {
        for m in &mut self.cells {
            m.enlarge_to(gamma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ExactZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const FEATURES: usize = 6;
    const CLASSES: usize = 3;

    fn features(class: usize, rng: &mut StdRng) -> Tensor {
        let data: Vec<f32> = (0..FEATURES)
            .map(|i| {
                let centre = match class {
                    0 => 0.0,
                    1 => (i as f32 * 0.9).sin() * 2.0,
                    _ => (i as f32 * 1.4).cos() * 2.0,
                };
                centre + 0.2 * (rng.gen::<f32>() - 0.5)
            })
            .collect();
        Tensor::from_vec(vec![FEATURES], data)
    }

    type CellTraffic = Vec<(Vec<Tensor>, Vec<usize>)>;

    /// A shared head plus per-cell traffic with different class mixes.
    fn fixture() -> (Sequential, CellTraffic) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut head = mlp(&[FEATURES, 12, CLASSES], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..150 {
            let c = rng.gen_range(0..CLASSES);
            xs.push(features(c, &mut rng));
            ys.push(c);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 16,
            verbose: false,
        });
        trainer.fit(&mut head, &xs, &ys, &mut Adam::new(0.02), &mut rng);

        // Four cells with different mixes: cell 0 only class 0, cell 3
        // only class 2, cells 1-2 mixed.
        let mixes: [&[usize]; 4] = [&[0], &[0, 1], &[1, 2], &[2]];
        let per_cell = mixes
            .iter()
            .map(|mix| {
                let mut cx = Vec::new();
                let mut cy = Vec::new();
                for _ in 0..40 {
                    let c = mix[rng.gen_range(0..mix.len())];
                    cx.push(features(c, &mut rng));
                    cy.push(c);
                }
                (cx, cy)
            })
            .collect();
        (head, per_cell)
    }

    #[test]
    fn per_cell_training_traffic_is_in_pattern() {
        let (mut head, per_cell) = fixture();
        let grid = GridMonitor::<ExactZone>::build(
            2,
            2,
            &MonitorBuilder::new(1, 0),
            &mut head,
            &per_cell,
            CLASSES,
        );
        assert_eq!(grid.rows(), 2);
        assert_eq!(grid.cols(), 2);
        // Frame made of each cell's own training inputs: no warnings for
        // correctly predicted cells.
        let frame: Vec<Tensor> = per_cell.iter().map(|(xs, _)| xs[0].clone()).collect();
        let report = grid.check_frame(&mut head, &frame);
        for (i, cell) in report.cells.iter().enumerate() {
            let (_, ys) = &per_cell[i];
            if cell.predicted == ys[0] {
                assert_eq!(cell.verdict, Verdict::InPattern, "cell {i}");
            }
        }
    }

    #[test]
    fn foreign_traffic_trips_a_specialised_cell() {
        let (mut head, per_cell) = fixture();
        let grid = GridMonitor::<ExactZone>::build(
            2,
            2,
            &MonitorBuilder::new(1, 0),
            &mut head,
            &per_cell,
            CLASSES,
        );
        // Cell 0 has only ever seen class 0; feed it class-2 features.
        let mut rng = StdRng::seed_from_u64(99);
        let mut warned = 0;
        for _ in 0..20 {
            let alien = features(2, &mut rng);
            let frame = vec![
                alien,
                per_cell[1].0[0].clone(),
                per_cell[2].0[0].clone(),
                per_cell[3].0[0].clone(),
            ];
            let report = grid.check_frame(&mut head, &frame);
            // Either cell 0 warns (unseen pattern) or its class-2 zone is
            // unmonitored-empty; both are "not supported by training".
            if report.out_of_pattern_cells.contains(&0)
                || report.cells[0].verdict == Verdict::OutOfPattern
            {
                warned += 1;
            }
        }
        assert!(warned > 10, "specialised cell warned only {warned}/20");
    }

    #[test]
    fn warning_rate_counts_monitored_cells_only() {
        let report = GridReport {
            cells: vec![
                MonitorReport {
                    predicted: 0,
                    verdict: Verdict::OutOfPattern,
                    distance_to_seeds: Some(3),
                },
                MonitorReport {
                    predicted: 1,
                    verdict: Verdict::Unmonitored,
                    distance_to_seeds: None,
                },
                MonitorReport {
                    predicted: 0,
                    verdict: Verdict::InPattern,
                    distance_to_seeds: Some(0),
                },
            ],
            out_of_pattern_cells: vec![0],
        };
        assert!((report.warning_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn enlarge_propagates_to_every_cell() {
        let (mut head, per_cell) = fixture();
        let mut grid = GridMonitor::<ExactZone>::build(
            2,
            2,
            &MonitorBuilder::new(1, 0),
            &mut head,
            &per_cell,
            CLASSES,
        );
        grid.enlarge_to(2);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(grid.cell(r, c).gamma(), 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one monitor per grid cell")]
    fn wrong_cell_count_is_rejected() {
        let cells: Vec<Monitor<ExactZone>> = Vec::new();
        let _ = GridMonitor::from_cells(1, 2, cells);
    }

    #[test]
    #[should_panic(expected = "one input per grid cell")]
    fn wrong_frame_size_is_rejected() {
        let (mut head, per_cell) = fixture();
        let grid = GridMonitor::<ExactZone>::build(
            2,
            2,
            &MonitorBuilder::new(1, 0),
            &mut head,
            &per_cell,
            CLASSES,
        );
        let _ = grid.check_frame(&mut head, &[]);
    }
}
