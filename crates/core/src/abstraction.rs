//! Controlling the coarseness of abstraction (Section III, Figure 2).
//!
//! An abstraction that admits only the literally visited patterns warns on
//! nearly everything (`α1`, no generalization); one that admits the whole
//! pattern space never warns (`α3`, over-generalization).  The paper's
//! recipe: on a validation set with the deployment distribution, gradually
//! increase γ and keep the largest abstraction for which an out-of-pattern
//! event still likely coincides with a misclassification.

use crate::activation::ActivationMonitor;
use crate::monitor::Monitor;
use crate::stats::{evaluate_with_mode, EvalMode, MonitorStats};
use crate::zone::Zone;
use naps_nn::Sequential;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Statistics of one γ value in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaStats {
    /// The Hamming budget.
    pub gamma: u32,
    /// Validation statistics of the monitor at this γ.
    pub stats: MonitorStats,
}

/// Sweeps γ from the monitor's current value up to `max_gamma`
/// (inclusive), evaluating on a validation set at every step.
///
/// Enlargement is incremental (zones only grow), so the sweep costs one
/// dilation plus one evaluation pass per γ — this is how Table II's rows
/// and Figure 2's spectrum are produced.
#[derive(Debug, Clone)]
pub struct GammaSweep {
    /// Largest γ to evaluate.
    pub max_gamma: u32,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Which zone each validation sample is checked against (see
    /// [`EvalMode`]).
    pub mode: EvalMode,
}

impl Default for GammaSweep {
    fn default() -> Self {
        GammaSweep {
            max_gamma: 3,
            batch_size: 64,
            mode: EvalMode::ByPrediction,
        }
    }
}

impl GammaSweep {
    /// A sweep up to `max_gamma`.
    pub fn up_to(max_gamma: u32) -> Self {
        GammaSweep {
            max_gamma,
            ..Default::default()
        }
    }

    /// Selects the evaluation mode (e.g. [`EvalMode::ByLabel`] for the
    /// paper's single-class GTSRB setting).
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the sweep, mutating `monitor` (its γ ends at `max_gamma`).
    ///
    /// # Panics
    ///
    /// Panics if the monitor's current γ exceeds `max_gamma`, or on
    /// sample/label length mismatch.
    pub fn run<Z: Zone>(
        &self,
        monitor: &mut Monitor<Z>,
        model: &mut Sequential,
        samples: &[Tensor],
        labels: &[usize],
    ) -> Vec<GammaStats> {
        assert!(
            monitor.gamma() <= self.max_gamma,
            "monitor gamma {} already exceeds sweep max {}",
            monitor.gamma(),
            self.max_gamma
        );
        let mut out = Vec::new();
        for gamma in monitor.gamma()..=self.max_gamma {
            monitor.enlarge_to(gamma);
            let stats =
                evaluate_with_mode(monitor, model, samples, labels, self.batch_size, self.mode);
            out.push(GammaStats { gamma, stats });
        }
        out
    }
}

/// How to pick γ from a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaPolicy {
    /// Smallest γ whose out-of-pattern rate does not exceed the bound —
    /// "the monitor should be largely silent in distribution".
    MaxOutOfPatternRate(f64),
    /// Smallest γ whose warning precision (misclassified-within-warned)
    /// reaches the bound while warnings still occur — "whenever it
    /// signals, misclassification is likely".
    MinWarningPrecision(f64),
    /// Smallest γ whose false-positive rate (correct-but-warned over
    /// correct) is below the bound.
    MaxFalsePositiveRate(f64),
}

/// Applies a [`GammaPolicy`] to sweep results, returning the chosen γ, or
/// `None` when no γ satisfies the policy.
pub fn choose_gamma(sweep: &[GammaStats], policy: GammaPolicy) -> Option<u32> {
    sweep
        .iter()
        .find(|g| match policy {
            GammaPolicy::MaxOutOfPatternRate(bound) => g.stats.out_of_pattern_rate() <= bound,
            GammaPolicy::MinWarningPrecision(bound) => {
                g.stats.out_of_pattern > 0 && g.stats.warning_precision() >= bound
            }
            GammaPolicy::MaxFalsePositiveRate(bound) => g.stats.false_positive_rate() <= bound,
        })
        .map(|g| g.gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MonitorBuilder;
    use crate::zone::BddZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use naps_tensor::{Randn, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_problem(n: usize, noise: f32, rng: &mut StdRng) -> (Vec<Tensor>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let s = if c == 0 { 1.0f32 } else { -1.0 };
            xs.push(Tensor::from_vec(
                vec![4],
                (0..4).map(|_| s + noise * rng.randn()).collect(),
            ));
            ys.push(c);
        }
        (xs, ys)
    }

    fn sweep_fixture() -> Vec<GammaStats> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = mlp(&[4, 12, 2], &mut rng);
        let (xs, ys) = noisy_problem(80, 0.3, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 16,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.03), &mut rng);
        let mut monitor = MonitorBuilder::new(1, 0).build::<BddZone>(&mut net, &xs, &ys, 2);
        let (vx, vy) = noisy_problem(60, 0.6, &mut rng);
        GammaSweep::up_to(4).run(&mut monitor, &mut net, &vx, &vy)
    }

    #[test]
    fn sweep_covers_requested_gammas() {
        let sweep = sweep_fixture();
        let gammas: Vec<u32> = sweep.iter().map(|g| g.gamma).collect();
        assert_eq!(gammas, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn out_of_pattern_rate_is_monotone_decreasing_in_gamma() {
        // Figure 2: larger abstraction -> fewer out-of-pattern events.
        let sweep = sweep_fixture();
        for w in sweep.windows(2) {
            assert!(
                w[1].stats.out_of_pattern <= w[0].stats.out_of_pattern,
                "gamma {} -> {}: warnings grew",
                w[0].gamma,
                w[1].gamma
            );
        }
    }

    #[test]
    fn policies_pick_first_satisfying_gamma() {
        let mk = |gamma, total, mis, oop, oopmis| GammaStats {
            gamma,
            stats: MonitorStats {
                total,
                misclassified: mis,
                out_of_pattern: oop,
                out_of_pattern_and_misclassified: oopmis,
                unmonitored: 0,
            },
        };
        let sweep = vec![
            mk(0, 100, 5, 40, 5), // rate .40, precision .125
            mk(1, 100, 5, 15, 4), // rate .15, precision .266
            mk(2, 100, 5, 6, 3),  // rate .06, precision .50
            mk(3, 100, 5, 2, 2),  // rate .02, precision 1.0
        ];
        assert_eq!(
            choose_gamma(&sweep, GammaPolicy::MaxOutOfPatternRate(0.10)),
            Some(2)
        );
        assert_eq!(
            choose_gamma(&sweep, GammaPolicy::MinWarningPrecision(0.5)),
            Some(2)
        );
        assert_eq!(
            choose_gamma(&sweep, GammaPolicy::MaxFalsePositiveRate(0.01)),
            Some(3)
        );
        assert_eq!(
            choose_gamma(&sweep, GammaPolicy::MaxOutOfPatternRate(0.001)),
            None
        );
    }

    #[test]
    fn precision_policy_requires_live_warnings() {
        // A fully saturated abstraction (0 warnings) must not be selected
        // by the precision policy even though 0/0 could read as vacuous.
        let sweep = vec![GammaStats {
            gamma: 5,
            stats: MonitorStats {
                total: 100,
                misclassified: 3,
                out_of_pattern: 0,
                out_of_pattern_and_misclassified: 0,
                unmonitored: 0,
            },
        }];
        assert_eq!(
            choose_gamma(&sweep, GammaPolicy::MinWarningPrecision(0.2)),
            None
        );
    }
}
