//! Numeric interval refinement — the paper's Section V item (2) sketches
//! refining the binary abstraction with numeric abstract domains (they
//! mention difference-bound matrices).  `IntervalZone` implements the box
//! (per-neuron interval) fragment of that idea: alongside the binary
//! pattern, record each monitored neuron's observed value range over the
//! training set, and flag inputs whose activation magnitudes leave the
//! observed envelope even when the on/off pattern is familiar.

use serde::{Deserialize, Serialize};

/// Per-neuron min/max envelope of real-valued activations.
///
/// # Example
///
/// ```
/// use naps_core::IntervalZone;
///
/// let mut zone = IntervalZone::empty(2);
/// zone.insert(&[0.5, 1.0]);
/// zone.insert(&[0.7, 0.2]);
/// assert!(zone.contains(&[0.6, 0.5], 0.0));
/// assert!(!zone.contains(&[2.0, 0.5], 0.0));   // neuron 0 out of range
/// assert!(zone.contains(&[0.75, 0.5], 0.1));   // slack admits it
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalZone {
    lo: Vec<f32>,
    hi: Vec<f32>,
    count: usize,
}

impl IntervalZone {
    /// An empty envelope over `width` neurons.
    pub fn empty(width: usize) -> Self {
        IntervalZone {
            lo: vec![f32::INFINITY; width],
            hi: vec![f32::NEG_INFINITY; width],
            count: 0,
        }
    }

    /// Number of monitored neurons.
    pub fn width(&self) -> usize {
        self.lo.len()
    }

    /// Number of activation vectors recorded.
    pub fn sample_count(&self) -> usize {
        self.count
    }

    /// Extends the envelope with one activation vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width` or any value is non-finite — a
    /// NaN activation would silently pass every comparison and poison
    /// the envelope.
    pub fn insert(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "activation values must be finite"
        );
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(values) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
        self.count += 1;
    }

    /// Membership with symmetric slack: every neuron must satisfy
    /// `lo - slack <= v <= hi + slack`.  An empty zone contains nothing.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width`.
    pub fn contains(&self, values: &[f32], slack: f32) -> bool {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        if self.count == 0 {
            return false;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(values)
            .all(|((&lo, &hi), &v)| v >= lo - slack && v <= hi + slack)
    }

    /// Largest per-neuron violation of the envelope (0 when inside) — a
    /// numeric "distance" analogous to the Hamming distance of the binary
    /// monitor.  `None` for an empty zone.
    pub fn violation(&self, values: &[f32]) -> Option<f32> {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        if self.count == 0 {
            return None;
        }
        let mut worst = 0.0f32;
        for ((&lo, &hi), &v) in self.lo.iter().zip(&self.hi).zip(values) {
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            if d > worst {
                worst = d;
            }
        }
        Some(worst)
    }

    /// The envelope of neuron `i` as `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width` or the zone is empty.
    pub fn bounds(&self, i: usize) -> (f32, f32) {
        assert!(self.count > 0, "empty interval zone has no bounds");
        (self.lo[i], self.hi[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_zone_contains_nothing() {
        let z = IntervalZone::empty(3);
        assert!(!z.contains(&[0.0, 0.0, 0.0], 100.0));
        assert_eq!(z.violation(&[0.0, 0.0, 0.0]), None);
    }

    #[test]
    fn envelope_grows_with_insertions() {
        let mut z = IntervalZone::empty(2);
        z.insert(&[1.0, -1.0]);
        assert!(z.contains(&[1.0, -1.0], 0.0));
        assert!(!z.contains(&[2.0, -1.0], 0.0));
        z.insert(&[2.5, 0.0]);
        assert!(z.contains(&[2.0, -0.5], 0.0));
        assert_eq!(z.bounds(0), (1.0, 2.5));
        assert_eq!(z.sample_count(), 2);
    }

    #[test]
    fn violation_measures_worst_neuron() {
        let mut z = IntervalZone::empty(2);
        z.insert(&[0.0, 0.0]);
        z.insert(&[1.0, 1.0]);
        assert_eq!(z.violation(&[0.5, 0.5]), Some(0.0));
        assert_eq!(z.violation(&[2.0, 0.5]), Some(1.0));
        assert_eq!(z.violation(&[-0.5, 3.0]), Some(2.0));
    }

    #[test]
    fn slack_relaxes_membership_symmetrically() {
        let mut z = IntervalZone::empty(1);
        z.insert(&[1.0]);
        assert!(!z.contains(&[1.2], 0.1));
        assert!(z.contains(&[1.2], 0.2));
        assert!(z.contains(&[0.8], 0.2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_is_checked() {
        let mut z = IntervalZone::empty(2);
        z.insert(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_insert_is_rejected() {
        let mut z = IntervalZone::empty(1);
        z.insert(&[f32::NAN]);
    }
}
