//! Difference-bound-matrix refinement — the numeric abstract domain the
//! paper's Section V item (2) names explicitly ("tools such as difference
//! bound matrices") as a way to capture a more refined representation of
//! the visited activation patterns than the binary on/off abstraction.
//!
//! A [`DbmZone`] tracks, over the monitored neurons' real-valued (pre- or
//! post-ReLU) activations `v_1 … v_d`, the tightest constraints of the
//! forms `v_i ≤ c`, `-v_i ≤ c` and `v_i - v_j ≤ c` satisfied by **every**
//! recorded training activation vector.  Compared to the per-neuron box of
//! [`crate::IntervalZone`], the relational `v_i - v_j` constraints also
//! bound how neurons co-vary, so the zone is never looser and usually
//! strictly tighter.
//!
//! The representation is the classical DBM of Dill / Miné: an
//! `(d+1) × (d+1)` matrix `m` over a pseudo-variable `v_0 = 0`, where
//! `m[i][j]` is an upper bound on `v_i - v_j` (`f32::INFINITY` when
//! unconstrained).  The zone built by [`DbmZone::insert`] is the domain
//! join of point zones and is canonical by construction; zones assembled
//! from raw constraints via [`DbmZone::from_bounds`] are canonicalised
//! with a Floyd–Warshall [`DbmZone::close`] pass.

use serde::{Deserialize, Serialize};

/// A difference-bound-matrix envelope over `d` monitored neurons.
///
/// Membership is `O(d²)` per query, against the `O(d)` BDD walk of the
/// binary monitor — the refinement trades query cost for a strictly
/// tighter abstraction (see the `refinement` ablation experiment).
///
/// # Example
///
/// ```
/// use naps_core::DbmZone;
///
/// let mut zone = DbmZone::empty(2);
/// zone.insert(&[1.0, 0.5]);
/// zone.insert(&[2.0, 1.5]);
/// // Both samples satisfy v0 - v1 == 0.5, so the relational constraint
/// // rejects a vector the per-neuron box would accept:
/// assert!(zone.contains(&[1.5, 1.0], 0.0));
/// assert!(!zone.contains(&[1.0, 1.5], 0.0)); // v0 - v1 = -0.5 unseen
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbmZone {
    /// Row-major `(dim)²` matrix with `dim = width + 1`; index 0 is the
    /// zero pseudo-variable, neuron `i` lives at index `i + 1`.
    bounds: Vec<f32>,
    dim: usize,
    count: usize,
}

impl DbmZone {
    /// An empty zone over `width` neurons (contains nothing until the
    /// first [`DbmZone::insert`]).
    pub fn empty(width: usize) -> Self {
        let dim = width + 1;
        let mut bounds = vec![f32::NEG_INFINITY; dim * dim];
        for i in 0..dim {
            bounds[i * dim + i] = 0.0;
        }
        DbmZone {
            bounds,
            dim,
            count: 0,
        }
    }

    /// Builds a zone directly from a bound matrix: `bounds[i][j]` is the
    /// upper bound on `v_i - v_j` with `v_0 = 0` at index 0 (use
    /// `f32::INFINITY` for "unconstrained").  The matrix is canonicalised
    /// with a closure pass; the result is marked non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not `(width + 1)²` entries long, or if the
    /// constraint system is inconsistent (a negative cycle, e.g.
    /// `v_1 ≤ 0 ∧ -v_1 ≤ -1`).
    pub fn from_bounds(width: usize, bounds: Vec<f32>) -> Self {
        let dim = width + 1;
        assert_eq!(
            bounds.len(),
            dim * dim,
            "bound matrix must be (width + 1)^2 entries"
        );
        let mut zone = DbmZone {
            bounds,
            dim,
            count: 1,
        };
        zone.close();
        assert!(
            zone.is_consistent(),
            "inconsistent difference-bound constraints"
        );
        zone
    }

    /// Number of monitored neurons.
    pub fn width(&self) -> usize {
        self.dim - 1
    }

    /// Number of activation vectors recorded via [`DbmZone::insert`].
    pub fn sample_count(&self) -> usize {
        self.count
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.bounds[i * self.dim + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        &mut self.bounds[i * self.dim + j]
    }

    /// The tightest recorded upper bound on `v_i - v_j` (neuron indices,
    /// 0-based).  `f32::INFINITY` before any insertion.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn difference_bound(&self, i: usize, j: usize) -> f32 {
        assert!(
            i < self.width() && j < self.width(),
            "neuron index out of range"
        );
        self.at(i + 1, j + 1)
    }

    /// The recorded range of neuron `i` as `(lo, hi)` — the box projection
    /// of the DBM.  `(-∞, +∞)` before any insertion.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn range(&self, i: usize) -> (f32, f32) {
        assert!(i < self.width(), "neuron index out of range");
        // v_i - v_0 <= hi  and  v_0 - v_i <= -lo.
        (-self.at(0, i + 1), self.at(i + 1, 0))
    }

    /// Joins one activation vector into the zone: every bound becomes the
    /// maximum of its current value and the sample's difference.  The join
    /// of canonical DBMs is canonical, so no closure pass is needed.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width` or any value is non-finite — a
    /// NaN activation would silently satisfy every `<` comparison and
    /// poison the envelope.
    pub fn insert(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "activation values must be finite"
        );
        let dim = self.dim;
        for i in 0..dim {
            let vi = if i == 0 { 0.0 } else { values[i - 1] };
            for j in 0..dim {
                if i == j {
                    continue;
                }
                let vj = if j == 0 { 0.0 } else { values[j - 1] };
                let d = vi - vj;
                let cur = self.at_mut(i, j);
                if d > *cur {
                    *cur = d;
                }
            }
        }
        self.count += 1;
    }

    /// Membership with symmetric slack: every constraint is relaxed to
    /// `v_i - v_j ≤ m[i][j] + slack`.  An empty zone contains nothing.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width`.
    pub fn contains(&self, values: &[f32], slack: f32) -> bool {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        if self.count == 0 {
            return false;
        }
        let dim = self.dim;
        for i in 0..dim {
            let vi = if i == 0 { 0.0 } else { values[i - 1] };
            for j in 0..dim {
                if i == j {
                    continue;
                }
                let vj = if j == 0 { 0.0 } else { values[j - 1] };
                if vi - vj > self.at(i, j) + slack {
                    return false;
                }
            }
        }
        true
    }

    /// Largest constraint violation (0 when inside) — the numeric
    /// counterpart of the binary monitor's Hamming distance, and exactly
    /// the smallest `slack` that would make [`DbmZone::contains`] accept.
    /// `None` for an empty zone.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width`.
    pub fn violation(&self, values: &[f32]) -> Option<f32> {
        assert_eq!(values.len(), self.width(), "activation width mismatch");
        if self.count == 0 {
            return None;
        }
        let dim = self.dim;
        let mut worst = 0.0f32;
        for i in 0..dim {
            let vi = if i == 0 { 0.0 } else { values[i - 1] };
            for j in 0..dim {
                if i == j {
                    continue;
                }
                let vj = if j == 0 { 0.0 } else { values[j - 1] };
                let excess = (vi - vj) - self.at(i, j);
                if excess > worst {
                    worst = excess;
                }
            }
        }
        Some(worst)
    }

    /// Floyd–Warshall shortest-path closure: tightens every bound through
    /// every intermediate variable, producing the canonical form.  Zones
    /// grown purely by [`DbmZone::insert`] are already canonical; this is
    /// needed after [`DbmZone::from_bounds`] or manual edits.
    pub fn close(&mut self) {
        let dim = self.dim;
        for k in 0..dim {
            for i in 0..dim {
                let ik = self.at(i, k);
                if ik == f32::INFINITY {
                    continue;
                }
                for j in 0..dim {
                    let kj = self.at(k, j);
                    if kj == f32::INFINITY {
                        continue;
                    }
                    let via = ik + kj;
                    let cur = self.at_mut(i, j);
                    if via < *cur {
                        *cur = via;
                    }
                }
            }
        }
    }

    /// `true` when the constraint system admits at least one point (no
    /// negative cycle: every diagonal entry is ≥ 0 after closure).
    pub fn is_consistent(&self) -> bool {
        (0..self.dim).all(|i| self.at(i, i) >= 0.0)
    }

    /// `true` when every point of `other` satisfies this zone's
    /// constraints, i.e. `other ⊆ self`.  Both zones must be canonical
    /// (insert-built zones are).  An empty zone is included in anything;
    /// nothing but an empty zone is included in an empty zone.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn includes(&self, other: &DbmZone) -> bool {
        assert_eq!(self.width(), other.width(), "zone width mismatch");
        if other.count == 0 {
            return true;
        }
        if self.count == 0 {
            return false;
        }
        self.bounds
            .iter()
            .zip(&other.bounds)
            .all(|(mine, theirs)| *theirs <= *mine)
    }

    /// Domain join: the tightest DBM containing both zones (pointwise
    /// bound maximum).  The result is canonical when both inputs are.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn join(&mut self, other: &DbmZone) {
        assert_eq!(self.width(), other.width(), "zone width mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (mine, &theirs) in self.bounds.iter_mut().zip(&other.bounds) {
            if theirs > *mine {
                *mine = theirs;
            }
        }
        self.count += other.count;
    }

    /// Standard DBM widening: bounds that grew from `self` to `newer`
    /// jump to `+∞`, guaranteeing termination of a fixpoint iteration —
    /// useful when a deployed refinement keeps learning online and must
    /// stabilise.  `self` should be the older iterate.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn widen(&mut self, newer: &DbmZone) {
        assert_eq!(self.width(), newer.width(), "zone width mismatch");
        if newer.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = newer.clone();
            return;
        }
        for (mine, &theirs) in self.bounds.iter_mut().zip(&newer.bounds) {
            if theirs > *mine {
                *mine = f32::INFINITY;
            }
        }
        self.count += newer.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalZone;

    #[test]
    fn empty_zone_contains_nothing() {
        let z = DbmZone::empty(3);
        assert!(!z.contains(&[0.0, 0.0, 0.0], 1e6));
        assert_eq!(z.violation(&[0.0, 0.0, 0.0]), None);
        assert_eq!(z.sample_count(), 0);
    }

    #[test]
    fn inserted_samples_are_members() {
        let mut z = DbmZone::empty(3);
        let samples = [[1.0f32, -0.5, 2.0], [0.5, 0.0, 1.5], [2.0, -1.0, 3.0]];
        for s in &samples {
            z.insert(s);
        }
        for s in &samples {
            assert!(z.contains(s, 0.0), "training sample rejected: {s:?}");
            assert_eq!(z.violation(s), Some(0.0));
        }
    }

    #[test]
    fn relational_constraints_reject_what_the_box_accepts() {
        let mut dbm = DbmZone::empty(2);
        let mut boxz = IntervalZone::empty(2);
        // All samples satisfy v0 - v1 = 0.5 exactly.
        for base in [0.0f32, 1.0, 2.0] {
            dbm.insert(&[base + 0.5, base]);
            boxz.insert(&[base + 0.5, base]);
        }
        // Inside the box (each coordinate in range) but violating the
        // relation.
        let probe = [0.5f32, 2.0];
        assert!(boxz.contains(&probe, 0.0));
        assert!(!dbm.contains(&probe, 0.0));
    }

    #[test]
    fn dbm_membership_implies_box_membership() {
        // The DBM is a refinement: it never accepts a vector the box
        // rejects (given the same training data).
        let mut dbm = DbmZone::empty(3);
        let mut boxz = IntervalZone::empty(3);
        let samples = [
            [0.1f32, 1.0, -2.0],
            [0.4, 0.2, -1.0],
            [-0.3, 2.0, 0.0],
            [0.0, 0.5, -0.5],
        ];
        for s in &samples {
            dbm.insert(s);
            boxz.insert(s);
        }
        for trial in 0..200 {
            let t = trial as f32;
            let probe = [
                (t * 0.37).sin() * 2.0,
                (t * 0.11).cos() * 3.0,
                (t * 0.73).sin() * 4.0 - 1.0,
            ];
            if dbm.contains(&probe, 0.0) {
                assert!(
                    boxz.contains(&probe, 0.0),
                    "dbm looser than box at {probe:?}"
                );
            }
        }
    }

    #[test]
    fn range_is_the_box_projection() {
        let mut z = DbmZone::empty(2);
        z.insert(&[1.0, -2.0]);
        z.insert(&[3.0, 0.0]);
        assert_eq!(z.range(0), (1.0, 3.0));
        assert_eq!(z.range(1), (-2.0, 0.0));
        assert_eq!(z.difference_bound(0, 1), 3.0);
    }

    #[test]
    fn violation_is_minimal_admitting_slack() {
        let mut z = DbmZone::empty(2);
        z.insert(&[0.0, 0.0]);
        z.insert(&[1.0, 1.0]);
        let probe = [2.0f32, 0.0]; // v0 - v1 = 2, seen at most 1
        let v = z.violation(&probe).expect("non-empty");
        assert!(v > 0.0);
        assert!(!z.contains(&probe, v - 1e-4));
        assert!(z.contains(&probe, v + 1e-4));
    }

    #[test]
    fn slack_relaxes_membership() {
        let mut z = DbmZone::empty(1);
        z.insert(&[1.0]);
        assert!(!z.contains(&[1.5], 0.2));
        assert!(z.contains(&[1.5], 0.6));
        assert!(z.contains(&[0.6], 0.6));
    }

    #[test]
    fn from_bounds_closes_transitive_constraints() {
        // v1 <= 1, v2 - v1 <= 1  =>  v2 <= 2 after closure.
        let w = 2;
        let dim = w + 1;
        let mut b = vec![f32::INFINITY; dim * dim];
        for i in 0..dim {
            b[i * dim + i] = 0.0;
        }
        b[dim] = 1.0; // v1 - v0 <= 1
        b[2 * dim + 1] = 1.0; // v2 - v1 <= 1
        let z = DbmZone::from_bounds(w, b);
        assert_eq!(z.range(1).1, 2.0);
        assert!(z.contains(&[1.0, 2.0], 0.0));
        assert!(!z.contains(&[1.0, 2.5], 0.0));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn from_bounds_rejects_negative_cycle() {
        let w = 1;
        let dim = w + 1;
        let mut b = vec![f32::INFINITY; dim * dim];
        for i in 0..dim {
            b[i * dim + i] = 0.0;
        }
        b[dim] = 0.0; // v1 <= 0
        b[1] = -1.0; // -v1 <= -1  =>  v1 >= 1: contradiction
        let _ = DbmZone::from_bounds(w, b);
    }

    #[test]
    fn close_is_idempotent() {
        let mut z = DbmZone::empty(3);
        for s in [[1.0f32, 2.0, 3.0], [0.0, 1.0, -1.0], [2.0, 2.0, 2.0]] {
            z.insert(&s);
        }
        let before = z.clone();
        z.close();
        assert_eq!(z, before, "insert-built zones are already canonical");
        z.close();
        assert_eq!(z, before);
    }

    #[test]
    fn join_is_an_upper_bound_of_both() {
        let mut a = DbmZone::empty(2);
        a.insert(&[0.0, 0.0]);
        a.insert(&[1.0, 0.5]);
        let mut b = DbmZone::empty(2);
        b.insert(&[-1.0, 2.0]);
        let mut j = a.clone();
        j.join(&b);
        assert!(j.includes(&a));
        assert!(j.includes(&b));
        assert!(j.contains(&[1.0, 0.5], 0.0));
        assert!(j.contains(&[-1.0, 2.0], 0.0));
    }

    #[test]
    fn join_with_empty_is_identity_both_ways() {
        let mut a = DbmZone::empty(2);
        a.insert(&[1.0, 2.0]);
        let e = DbmZone::empty(2);
        let mut a2 = a.clone();
        a2.join(&e);
        assert_eq!(a2, a);
        let mut e2 = e.clone();
        e2.join(&a);
        assert!(e2.contains(&[1.0, 2.0], 0.0));
    }

    #[test]
    fn includes_is_reflexive_and_ordered() {
        let mut small = DbmZone::empty(2);
        small.insert(&[0.0, 0.0]);
        let mut big = small.clone();
        big.insert(&[5.0, -5.0]);
        assert!(small.includes(&small));
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
        // Empty-zone corner cases.
        let empty = DbmZone::empty(2);
        assert!(small.includes(&empty));
        assert!(!empty.includes(&small));
        assert!(empty.includes(&empty));
    }

    #[test]
    fn widen_jumps_growing_bounds_to_infinity() {
        let mut old = DbmZone::empty(1);
        old.insert(&[1.0]);
        let mut newer = old.clone();
        newer.insert(&[2.0]); // upper bound grew 1.0 -> 2.0
        old.widen(&newer);
        assert_eq!(old.range(0).1, f32::INFINITY);
        // The lower bound did not move, so it stays finite.
        assert_eq!(old.range(0).0, 1.0);
        // Widening is stable: widening with an included zone changes nothing.
        let snapshot = old.clone();
        let newer2 = newer.clone();
        old.widen(&newer2);
        assert_eq!(old.bounds, snapshot.bounds);
    }

    #[test]
    fn serde_roundtrip() {
        let mut z = DbmZone::empty(2);
        z.insert(&[1.5, -0.5]);
        z.insert(&[2.0, 0.0]);
        let json = serde_json::to_string(&z).expect("serialize");
        let back: DbmZone = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(z, back);
        assert!(back.contains(&[1.75, -0.25], 0.0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_is_checked() {
        let mut z = DbmZone::empty(2);
        z.insert(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_insert_is_rejected() {
        let mut z = DbmZone::empty(1);
        z.insert(&[f32::INFINITY]);
    }
}
