//! The reusable, allocation-free front half of layered batch checking.
//!
//! [`observe_layered_batch`](crate::batch::observe_layered_batch)
//! allocates a fresh batch tensor, fresh observed tensors, and one
//! [`Pattern`] per row per tap on every call.  A [`PreparedObserver`]
//! owns all of that storage and refills it in place: after warm-up to
//! the high-water batch size, a steady-state micro-batch performs zero
//! heap allocations between request intake and judging.  Results are
//! bit-identical to the allocating path (pinned by the equivalence tests
//! and the `forward` eval gate); this file is deny-listed under the
//! analyzer's `hot_path_alloc` rule so allocating calls cannot creep
//! back in unwaived.

use crate::batch::{pack_batch_into, ForwardScratch, ObservedBatch, PreparedModel};
use crate::pattern::Pattern;
use crate::selection::NeuronSelection;
use naps_tensor::Tensor;

/// Reusable storage for the layered observation front half: one packed
/// batch tensor, one forward scratch, one [`ObservedBatch`], and the
/// per-row `(predicted, patterns)` rows — all refilled in place.  Engine
/// workers own one `PreparedObserver` across micro-batches.
#[derive(Debug, Default)]
pub struct PreparedObserver {
    batch: Tensor,
    forward: ForwardScratch,
    out: ObservedBatch,
    /// Row storage, high-water sized; each call returns a prefix of it.
    rows: Vec<(usize, Vec<Pattern>)>,
}

impl PreparedObserver {
    /// An empty observer; storage grows to its high-water shape on first
    /// use and is then reused allocation-free.
    pub fn new() -> Self {
        Self::default()
    }

    /// The allocation-free counterpart of
    /// [`observe_layered_batch`](crate::batch::observe_layered_batch):
    /// packs `inputs`, runs the prepared forward pass, refills per-row
    /// patterns in place, and returns the live rows as
    /// `(predicted, one pattern per tap)`.
    ///
    /// # Panics
    ///
    /// Panics if a tap's layer is not in the prepared model's plan.
    pub fn observe<'a>(
        &mut self,
        model: &PreparedModel,
        inputs: &[Tensor],
        taps: impl Iterator<Item = (usize, &'a NeuronSelection)> + Clone,
    ) -> &[(usize, Vec<Pattern>)] {
        if inputs.is_empty() {
            return &[];
        }
        pack_batch_into(inputs, &mut self.batch);
        self.out.refill(model, &self.batch, &mut self.forward);
        let n = inputs.len();
        while self.rows.len() < n {
            // naps-lint: allow(hot_path_alloc, "warm-up only: row storage grows until the high-water batch size, never in steady state")
            self.rows.push((0, Vec::new()));
        }
        let plan = model.plan();
        for (r, row) in self.rows[..n].iter_mut().enumerate() {
            row.0 = self.out.predicted[r];
            let mut taps_seen = 0;
            // naps-lint: allow(hot_path_alloc, "clones the cheap taps iterator handle to re-walk it per row, not activation data")
            for (t, (layer, selection)) in taps.clone().enumerate() {
                // naps-lint: allow(typed_errors, "taps was derived from this same plan, so every tapped layer has a position in it")
                let slot = plan.position(layer).expect("planned layer");
                if row.1.len() <= t {
                    // Warm-up (or a tap-count change at publish): size
                    // this row's pattern storage once.
                    row.1.push(Pattern::zeros(selection.len()));
                }
                selection.pattern_into(self.out.observed[slot].row(r), &mut row.1[t]);
                taps_seen = t + 1;
            }
            row.1.truncate(taps_seen);
        }
        &self.rows[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{observe_layered_batch, ObservationPlan};
    use naps_nn::Layer;
    use naps_nn::{Dense, ModelSnapshot, Relu, Sequential};

    fn model() -> Sequential {
        let dense = |inw: usize, outw: usize, seed: f32| {
            Dense::from_parts(
                Tensor::from_vec(
                    vec![inw, outw],
                    (0..inw * outw)
                        .map(|i| ((i as f32 + seed) * 0.43).sin())
                        .collect(),
                ),
                Tensor::from_vec(
                    vec![outw],
                    (0..outw)
                        .map(|i| ((i as f32 + seed) * 0.17).cos())
                        .collect(),
                ),
            )
        };
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(dense(3, 5, 0.0)),
            Box::new(Relu::new()),
            Box::new(dense(5, 4, 9.0)),
            Box::new(Relu::new()),
            Box::new(dense(4, 2, 4.0)),
        ];
        Sequential::new(layers)
    }

    fn probes(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|p| {
                Tensor::from_vec(
                    vec![3],
                    (0..3).map(|i| ((p * 3 + i) as f32 * 0.29).sin()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn observer_matches_allocating_path() {
        let mut live = model();
        let snap = ModelSnapshot::capture(&live).expect("MLP captures");
        let plan = ObservationPlan::new(vec![1, 3]);
        let prepared = snap.prepare(&plan);
        let sel1 = NeuronSelection::all(5);
        let sel3 = NeuronSelection::from_indices(vec![0, 2], 4);
        let taps = [(1usize, &sel1), (3usize, &sel3)];
        let mut obs = PreparedObserver::new();
        // Varying batch sizes exercise warm-up, reuse, and shrinking.
        for n in [4usize, 1, 3] {
            let inputs = probes(n);
            let want = observe_layered_batch(&mut live, &inputs, &plan, taps.iter().copied());
            let got = obs.observe(&prepared, &inputs, taps.iter().copied());
            assert_eq!(got, &want[..], "batch size {n}");
        }
    }

    #[test]
    fn empty_inputs_yield_no_rows() {
        let snap = ModelSnapshot::capture(&model()).expect("captures");
        let plan = ObservationPlan::new(vec![1]);
        let prepared = snap.prepare(&plan);
        let sel = NeuronSelection::all(5);
        let mut obs = PreparedObserver::new();
        assert!(obs
            .observe(&prepared, &[], [(1usize, &sel)].iter().copied())
            .is_empty());
    }
}
