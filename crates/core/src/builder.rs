//! Monitor construction — Algorithm 1 of the paper.

use crate::batch::{forward_observe_plan, ObservationPlan, ObservedBatch};
use crate::monitor::Monitor;
use crate::selection::NeuronSelection;
use crate::zone::Zone;
use naps_nn::Sequential;
use naps_tensor::Tensor;

/// Builds a [`Monitor`] from a trained network and its training set,
/// following Algorithm 1:
///
/// 1. initialise one empty zone per monitored class (lines 1–3);
/// 2. for every training input whose prediction matches its ground-truth
///    label, record the activation pattern of the monitored layer into the
///    class's zone (lines 4–8);
/// 3. enlarge every zone to Hamming radius γ via existential
///    quantification (lines 9–14).
///
/// # Example
///
/// ```
/// use naps_core::{ExactZone, MonitorBuilder};
/// use naps_nn::mlp;
/// use naps_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = mlp(&[2, 6, 2], &mut rng);
/// let xs = vec![Tensor::from_vec(vec![2], vec![1.0, 1.0])];
/// let ys = vec![0];
/// let monitor = MonitorBuilder::new(1, 1).build::<ExactZone>(&mut net, &xs, &ys, 2);
/// assert_eq!(monitor.gamma(), 1);
/// assert_eq!(monitor.num_classes(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MonitorBuilder {
    layer: usize,
    gamma: u32,
    selection: Option<NeuronSelection>,
    classes: Option<Vec<usize>>,
    batch_size: usize,
}

impl MonitorBuilder {
    /// A builder monitoring the output of `layer` with Hamming budget
    /// `gamma`, watching all neurons and all classes.
    pub fn new(layer: usize, gamma: u32) -> Self {
        MonitorBuilder {
            layer,
            gamma,
            selection: None,
            classes: None,
            batch_size: 64,
        }
    }

    /// Restricts monitoring to a neuron subset (gradient selection,
    /// Section II).
    pub fn with_selection(mut self, selection: NeuronSelection) -> Self {
        self.selection = Some(selection);
        self
    }

    /// Restricts monitoring to the given classes (e.g. only the stop sign,
    /// `c = 14`, in the paper's GTSRB experiment).
    pub fn with_classes(mut self, classes: Vec<usize>) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Batch size used when replaying the training set.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Runs Algorithm 1: replays `(samples, labels)` through `model` and
    /// assembles the per-class comfort zones.
    ///
    /// The monitored layer's width is discovered from the first forward
    /// pass; if no [`NeuronSelection`] was supplied, all of its neurons are
    /// monitored.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != labels.len()`, the training set is
    /// empty, a label is `>= num_classes`, or the monitored layer index is
    /// out of range.
    pub fn build<Z: Zone>(
        &self,
        model: &mut Sequential,
        samples: &[Tensor],
        labels: &[usize],
        num_classes: usize,
    ) -> Monitor<Z> {
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        assert!(!samples.is_empty(), "empty training set");
        assert!(self.layer < model.len(), "monitored layer out of range");

        // Discover the monitored layer width from a first forward pass.
        let plan = ObservationPlan::single(self.layer);
        let first = Tensor::from_vec(vec![1, samples[0].len()], samples[0].data().to_vec());
        let (first_obs, _) = model.forward_observe_plan(&first, &plan, false);
        let layer_width = first_obs[0].shape()[1];
        let selection = self
            .selection
            .clone()
            .unwrap_or_else(|| NeuronSelection::all(layer_width));
        assert_eq!(
            selection.layer_width(),
            layer_width,
            "selection layer width does not match monitored layer"
        );

        let monitored_class =
            |c: usize| -> bool { self.classes.as_ref().is_none_or(|cs| cs.contains(&c)) };

        // Lines 1-3: empty zones for monitored classes.
        let mut zones: Vec<Option<Z>> = (0..num_classes)
            .map(|c| monitored_class(c).then(|| Z::empty(selection.len())))
            .collect();

        // Lines 4-8: record visited patterns of correctly classified
        // training inputs.
        let indices: Vec<usize> = (0..samples.len()).collect();
        for chunk in indices.chunks(self.batch_size) {
            let feat = samples[chunk[0]].len();
            let mut data = Vec::with_capacity(chunk.len() * feat);
            for &i in chunk {
                data.extend_from_slice(samples[i].data());
            }
            let batch = Tensor::from_vec(vec![chunk.len(), feat], data);
            let ObservedBatch {
                predicted,
                observed,
            } = forward_observe_plan(model, &batch, &plan);
            let monitored = &observed[0];
            for (r, &i) in chunk.iter().enumerate() {
                let label = labels[i];
                assert!(
                    label < num_classes,
                    "label {label} out of range for {num_classes} classes"
                );
                if predicted[r] == label {
                    if let Some(zone) = zones[label].as_mut() {
                        zone.insert(&selection.pattern_from(monitored.row(r)));
                    }
                }
            }
        }

        // Lines 9-14: gamma-enlargement via existential quantification.
        for z in zones.iter_mut().flatten() {
            z.enlarge_to(self.gamma);
        }
        Monitor::from_zones(zones, self.layer, selection, self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ActivationMonitor;
    use crate::monitor::Verdict;
    use crate::zone::{BddZone, ExactZone};
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_three_class() -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = mlp(&[2, 10, 3], &mut rng);
        let centers = [(2.0f32, 0.0f32), (-2.0, 0.0), (0.0, 2.5)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..25 {
                let a = k as f32 * 0.25;
                xs.push(Tensor::from_vec(
                    vec![2],
                    vec![cx + 0.25 * a.sin(), cy + 0.25 * a.cos()],
                ));
                ys.push(c);
            }
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 16,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.03), &mut rng);
        (net, xs, ys)
    }

    #[test]
    fn algorithm1_soundness_over_training_set() {
        let (mut net, xs, ys) = trained_three_class();
        let monitor = MonitorBuilder::new(1, 0).build::<BddZone>(&mut net, &xs, &ys, 3);
        for (x, &y) in xs.iter().zip(&ys) {
            let rep = monitor.check(&mut net, x);
            if rep.predicted == y {
                assert_eq!(
                    rep.verdict,
                    Verdict::InPattern,
                    "correctly classified training input flagged"
                );
            }
        }
    }

    #[test]
    fn backends_build_equivalent_monitors() {
        let (mut net, xs, ys) = trained_three_class();
        let b = MonitorBuilder::new(1, 1);
        let m_bdd = b.build::<BddZone>(&mut net, &xs, &ys, 3);
        let m_exact = b.build::<ExactZone>(&mut net, &xs, &ys, 3);
        for x in xs.iter() {
            let ra = m_bdd.check(&mut net, x);
            let rb = m_exact.check(&mut net, x);
            assert_eq!(ra.predicted, rb.predicted);
            assert_eq!(ra.verdict, rb.verdict);
            assert_eq!(ra.distance_to_seeds, rb.distance_to_seeds);
        }
    }

    #[test]
    fn class_restriction_leaves_other_classes_unmonitored() {
        let (mut net, xs, ys) = trained_three_class();
        let monitor = MonitorBuilder::new(1, 0)
            .with_classes(vec![1])
            .build::<ExactZone>(&mut net, &xs, &ys, 3);
        assert_eq!(monitor.monitored_classes(), vec![1]);
        let mut saw = [false; 3];
        for x in &xs {
            let rep = monitor.check(&mut net, x);
            saw[rep.predicted] = true;
            if rep.predicted != 1 {
                assert_eq!(rep.verdict, Verdict::Unmonitored);
            }
        }
        assert!(saw[1]);
    }

    #[test]
    fn misclassified_training_inputs_are_not_recorded() {
        // Craft a "network" that always predicts class 0: an identity-free
        // single Dense with fixed weights.
        use naps_nn::{Dense, Relu};
        let w1 = naps_tensor::Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]);
        let hidden = Dense::from_parts(w1, naps_tensor::Tensor::zeros(vec![2]));
        let w2 = naps_tensor::Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 1.0, 0.0]);
        let out = Dense::from_parts(w2, naps_tensor::Tensor::zeros(vec![2]));
        let mut net = Sequential::new(vec![Box::new(hidden), Box::new(Relu::new()), Box::new(out)]);
        let xs = vec![
            Tensor::from_vec(vec![1], vec![1.0]),
            Tensor::from_vec(vec![1], vec![2.0]),
        ];
        let ys = vec![0usize, 1]; // second sample will be misclassified as 0
        let monitor = MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
        assert_eq!(monitor.zone(0).expect("zone").seed_count(), 1);
        assert_eq!(monitor.zone(1).expect("zone").seed_count(), 0);
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let (mut net, xs, ys) = trained_three_class();
        let m1 = MonitorBuilder::new(1, 1)
            .with_batch_size(1)
            .build::<ExactZone>(&mut net, &xs, &ys, 3);
        let m64 = MonitorBuilder::new(1, 1)
            .with_batch_size(64)
            .build::<ExactZone>(&mut net, &xs, &ys, 3);
        for c in 0..3 {
            assert_eq!(
                m1.zone(c).map(|z| z.seed_count()),
                m64.zone(c).map(|z| z.seed_count())
            );
        }
    }

    #[test]
    #[should_panic(expected = "monitored layer out of range")]
    fn bad_layer_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 4, 2], &mut rng);
        let xs = vec![Tensor::zeros(vec![2])];
        let _ = MonitorBuilder::new(9, 0).build::<ExactZone>(&mut net, &xs, &[0], 2);
    }
}
