//! The shared interface of the monitor family.
//!
//! The crate ships four deployable monitors — [`crate::Monitor`] (one
//! layer, Definition 3), [`crate::LayeredMonitor`] (several layers),
//! [`crate::RefinedMonitor`] (binary + numeric envelopes) and
//! [`crate::GridMonitor`] (per-grid-cell zones for YOLO-style heads) —
//! that historically exposed four ad-hoc query APIs.  [`ActivationMonitor`]
//! unifies them: one `check` / `check_batch` pair with an associated
//! report type, and [`MonitorOutcome`] gives every report a uniform
//! *did-it-warn* accessor so deployment glue (rate counters, drift
//! detectors, alarm plumbing) can be written once, generically.
//!
//! ```
//! use naps_core::{ActivationMonitor, MonitorOutcome};
//! use naps_nn::Sequential;
//! use naps_tensor::Tensor;
//!
//! /// Works with every monitor in the family.
//! fn warning_rate<M: ActivationMonitor>(
//!     monitor: &M,
//!     model: &mut Sequential,
//!     inputs: &[Tensor],
//! ) -> f64 {
//!     let reports = monitor.check_batch(model, inputs);
//!     if reports.is_empty() {
//!         return 0.0;
//!     }
//!     let warned = reports.iter().filter(|r| r.out_of_pattern()).count();
//!     warned as f64 / reports.len() as f64
//! }
//! # let _ = warning_rate::<naps_core::Monitor>;
//! ```

use crate::graded::{GradedQuery, GradedReport};
use naps_nn::Sequential;
use naps_tensor::Tensor;

/// Uniform view of a monitor report: did this query raise the paper's
/// *out-of-pattern* warning?
pub trait MonitorOutcome {
    /// `true` iff the monitor's (combined) verdict warns that the
    /// decision is not supported by prior similarities in training.
    /// Unmonitored outcomes are **not** warnings.
    fn out_of_pattern(&self) -> bool;
}

/// A runtime neuron-activation-pattern monitor: judges network decisions
/// against comfort zones built from training-time activations.
///
/// Implementors define the per-input [`ActivationMonitor::check`]; the
/// provided [`ActivationMonitor::check_batch`] loops over it, and
/// implementations with a cheaper batched path (one forward pass for the
/// whole batch) override it.  `check_batch` must be equivalent to mapping
/// `check` over the inputs.
///
/// # Thread safety
///
/// Every monitor in the crate — [`crate::Monitor`],
/// [`crate::LayeredMonitor`], [`crate::RefinedMonitor`],
/// [`crate::GridMonitor`] — is `Send + Sync` (for `Send + Sync` zone
/// backends, which both [`crate::BddZone`] and [`crate::ExactZone`] are):
/// the query path takes `&self`, holds no caches and no interior
/// mutability, so one monitor behind an `Arc` serves any number of
/// threads concurrently.  This is load-bearing for `naps-serve`'s
/// parallel `MonitorEngine` and is pinned by compile-time assertions in
/// the crate's tests.
///
/// The **model** is the non-shareable half: [`naps_nn::Layer::forward`]
/// caches activations for backprop, so `check`/`check_batch` take
/// `&mut Sequential`.  Concurrent checkers must either replicate the
/// model (one replica per thread — what `naps-serve` does, via
/// [`naps_nn::ModelSnapshot`]) or serialise forward passes behind a lock.
pub trait ActivationMonitor {
    /// What one query returns.
    type Report: MonitorOutcome;

    /// Runs the network on one input and judges its decision — the
    /// deployment-time flow of the paper's Figure 1(b).
    fn check(&self, model: &mut Sequential, input: &Tensor) -> Self::Report;

    /// Judges a batch of inputs.  Equivalent to `check` on each input;
    /// implementations override this when they can share one forward
    /// pass across the batch.
    fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<Self::Report> {
        inputs.iter().map(|x| self.check(model, x)).collect()
    }

    /// Graded counterpart of [`ActivationMonitor::check`]: instead of
    /// the binary in/out-of-pattern verdict, report **how far** the
    /// observed activation pattern is from the predicted class's
    /// enlarged comfort zone and **which other classes'** zones are
    /// nearest, within the query's distance budget (see
    /// [`GradedReport`] for the full payload and
    /// [`crate::Triage`] for the derived classification:
    /// distance 0 to another class ⇒ misclassification candidate,
    /// beyond the budget everywhere ⇒ novelty).
    ///
    /// Returns `None` for monitors without a per-class Hamming-zone
    /// distance path — the provided default.  [`crate::Monitor`]
    /// overrides it with the real graded query (budget-bounded
    /// early-exit DP over the zone diagrams), and
    /// [`crate::RefinedMonitor`] grades through its underlying binary
    /// monitor.  When implemented, the embedded
    /// [`GradedReport::report`] must be bit-identical to what
    /// [`ActivationMonitor::check`] returns for the same input.
    fn check_graded(
        &self,
        model: &mut Sequential,
        input: &Tensor,
        query: GradedQuery,
    ) -> Option<GradedReport> {
        let _ = (model, input, query);
        None
    }

    /// Grows every comfort zone to Hamming radius `gamma` (Section III's
    /// gradual enlargement).  Monotone: enlarging never evicts a pattern.
    fn enlarge_to(&mut self, gamma: u32);
}
