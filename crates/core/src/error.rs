//! Error type for monitor construction and persistence.

use std::error::Error;
use std::fmt;

/// Errors raised by monitor construction and snapshot restoration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MonitorError {
    /// A snapshot's pattern width differs from the receiving configuration.
    WidthMismatch {
        /// Width recorded in the snapshot.
        expected: usize,
        /// Width implied by the current configuration.
        actual: usize,
    },
    /// A serialized BDD zone failed to restore.
    Bdd(naps_bdd::BddError),
    /// The monitor was built over zero correctly-classified samples for a
    /// monitored class, so its comfort zone is empty and every query would
    /// warn.
    EmptyZone {
        /// The class whose zone is empty.
        class: usize,
    },
    /// A layered-monitor family was assembled with no monitors at all:
    /// there is nothing to observe, and no meaningful combined verdict.
    EmptyMonitorFamily,
    /// Monitors wrapped into one layered family disagree on the number of
    /// classes (the classifier's output width): they were not built over
    /// one network, and a predicted class could be out of range for some
    /// of them.
    ClassCountMismatch {
        /// Class count of the first monitor in the family.
        expected: usize,
        /// The disagreeing monitor's class count.
        actual: usize,
    },
    /// An online-enrichment request targeted a class with no comfort zone
    /// (out of range, or deliberately unmonitored): there is nothing to
    /// enrich, and silently dropping confirmed patterns would lose
    /// operator feedback.
    UnmonitoredClass {
        /// The class the enrichment was addressed to.
        class: usize,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::WidthMismatch { expected, actual } => write!(
                f,
                "snapshot pattern width {expected} does not match configuration width {actual}"
            ),
            MonitorError::Bdd(e) => write!(f, "bdd snapshot error: {e}"),
            MonitorError::EmptyZone { class } => {
                write!(f, "comfort zone for class {class} is empty")
            }
            MonitorError::EmptyMonitorFamily => {
                write!(f, "layered monitor needs at least one monitor")
            }
            MonitorError::ClassCountMismatch { expected, actual } => write!(
                f,
                "monitors disagree on the number of classes ({expected} vs {actual})"
            ),
            MonitorError::UnmonitoredClass { class } => {
                write!(f, "class {class} has no comfort zone to enrich")
            }
        }
    }
}

impl Error for MonitorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MonitorError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<naps_bdd::BddError> for MonitorError {
    fn from(e: naps_bdd::BddError) -> Self {
        MonitorError::Bdd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MonitorError::EmptyZone { class: 14 };
        assert!(e.to_string().contains("14"));
    }

    #[test]
    fn bdd_errors_convert() {
        let e: MonitorError = naps_bdd::BddError::VarCountMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(matches!(e, MonitorError::Bdd(_)));
        assert!(Error::source(&e).is_some());
    }
}
