//! Graded distance verdicts: *how far* out of pattern, and *whose*
//! pattern is nearest.
//!
//! The paper's monitor answers a binary question — is the activation
//! pattern inside the γ-enlarged comfort zone of the predicted class —
//! yet the Hamming-distance machinery it is built on already computes
//! the quantitative signal operators act on.  A [`GradedReport`] turns
//! every query into a rankable, actionable event:
//!
//! * the **bounded distance** from the observed pattern to the predicted
//!   class's enlarged zone `Z^γ_c` (0 ⇔ the binary verdict is
//!   in-pattern),
//! * a **ranked top-k** of the nearest *other* classes' zones within a
//!   configurable budget — distance 0 to another class means the pattern
//!   sits inside that class's comfort zone: a **misclassification
//!   candidate**,
//! * a [`Triage`] tag: beyond the budget from *every* monitored zone is
//!   a **novelty** (nothing in training was ever close), anything else
//!   out-of-pattern is a near-miss worth ranking by distance.
//!
//! Distances are computed with the budget-bounded early-exit DP
//! ([`naps_bdd::Bdd::min_hamming_distance_within`] /
//! [`naps_bdd::BddSnapshot::min_hamming_distance_within`]), so the hot
//! path never sweeps a whole diagram for a pattern that is far away.

use crate::activation::MonitorOutcome;
use crate::monitor::{MonitorReport, Verdict};

/// Parameters of a graded query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradedQuery {
    /// Largest zone distance the query resolves.  Distances above the
    /// budget are reported as "beyond" (`None` / absent from the
    /// ranking), which is what lets the bounded DP prune.  A practical
    /// choice is `γ + 2`: one or two flips beyond the comfort zone is
    /// still attributable, anything further is novelty.
    pub budget: u32,
    /// How many nearest other-class zones to keep in the ranking.
    pub top_k: usize,
}

impl GradedQuery {
    /// A query resolving distances up to `budget`, keeping the `top_k`
    /// nearest other classes.
    pub fn new(budget: u32, top_k: usize) -> Self {
        GradedQuery { budget, top_k }
    }
}

impl Default for GradedQuery {
    /// Budget 2, top-3 ranking.
    fn default() -> Self {
        GradedQuery {
            budget: 2,
            top_k: 3,
        }
    }
}

/// One entry of the nearest-zone ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearestZone {
    /// The class whose enlarged zone is this close.
    pub class: usize,
    /// Hamming distance from the observed pattern to that zone
    /// (0 = the pattern is inside it).
    pub distance: u32,
}

/// Operator-facing triage of a graded verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triage {
    /// The pattern is inside the predicted class's comfort zone — the
    /// binary in-pattern verdict.
    InPattern,
    /// Out of the predicted class's zone, but within the budget of it or
    /// of some other class's zone: a near-miss, rankable by distance.
    OutOfPattern,
    /// Out of the predicted class's zone **and** inside another class's
    /// zone (distance 0): the activation pattern was visited in training
    /// — by a different class.  The strongest graded signal that the
    /// network's decision, not the input, is the anomaly.
    MisclassificationCandidate,
    /// Beyond the budget from **every** monitored class's zone: nothing
    /// the network was trained on ever produced a nearby pattern.
    Novelty,
    /// The predicted class has no comfort zone; no grading is possible
    /// for it (the ranking over other classes is still reported).
    Unmonitored,
}

/// Full graded report of one monitored classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradedReport {
    /// The binary report (predicted class, verdict, seed distance) —
    /// bit-identical to what [`crate::ActivationMonitor::check`]
    /// returns for the same input.
    pub report: MonitorReport,
    /// Bounded Hamming distance from the observed pattern to the
    /// predicted class's **enlarged** zone `Z^γ_c`: `Some(0)` iff the
    /// binary verdict is in-pattern, `None` when the class is
    /// unmonitored or the distance exceeds the budget.
    pub distance_to_zone: Option<u32>,
    /// Nearest *other* classes whose zones are within the budget, ranked
    /// by `(distance, class)` ascending and truncated to
    /// [`GradedQuery::top_k`].
    pub nearest: Vec<NearestZone>,
    /// The query that produced this report (needed to interpret `None`
    /// and an empty ranking).
    pub query: GradedQuery,
    /// The triage classification (see [`Triage`]).
    pub triage: Triage,
}

impl MonitorOutcome for GradedReport {
    fn out_of_pattern(&self) -> bool {
        self.report.out_of_pattern()
    }
}

/// Assembles a [`GradedReport`] from raw bounded distances.
///
/// This is the **single** ranking/triage implementation shared by the
/// sequential monitor and `naps-serve`'s frozen path: both compute the
/// same distances (pinned by property tests in `naps-bdd`) and feed them
/// here, so graded verdicts are bit-identical across deployments by
/// construction.  `others` holds every *other* monitored class within
/// the budget, in any order; triage is decided **before** the ranking is
/// truncated to `top_k`, so a small `top_k` can never turn a near-miss
/// into a novelty.
pub fn grade(
    report: MonitorReport,
    distance_to_zone: Option<u32>,
    mut others: Vec<NearestZone>,
    query: GradedQuery,
) -> GradedReport {
    others.sort_unstable_by_key(|n| (n.distance, n.class));
    let triage = match report.verdict {
        Verdict::Unmonitored => Triage::Unmonitored,
        Verdict::InPattern => Triage::InPattern,
        Verdict::OutOfPattern => {
            if others.first().is_some_and(|n| n.distance == 0) {
                Triage::MisclassificationCandidate
            } else if distance_to_zone.is_none() && others.is_empty() {
                Triage::Novelty
            } else {
                Triage::OutOfPattern
            }
        }
    };
    others.truncate(query.top_k);
    GradedReport {
        report,
        distance_to_zone,
        nearest: others,
        query,
        triage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(verdict: Verdict) -> MonitorReport {
        MonitorReport {
            predicted: 1,
            verdict,
            distance_to_seeds: Some(3),
        }
    }

    fn near(class: usize, distance: u32) -> NearestZone {
        NearestZone { class, distance }
    }

    #[test]
    fn grade_ranks_by_distance_then_class() {
        let g = grade(
            binary(Verdict::OutOfPattern),
            Some(2),
            vec![near(4, 1), near(0, 2), near(2, 1)],
            GradedQuery::new(4, 3),
        );
        assert_eq!(g.nearest, vec![near(2, 1), near(4, 1), near(0, 2)]);
        assert_eq!(g.triage, Triage::OutOfPattern);
    }

    #[test]
    fn zero_distance_to_another_class_is_misclassification() {
        let g = grade(
            binary(Verdict::OutOfPattern),
            Some(1),
            vec![near(3, 0), near(0, 1)],
            GradedQuery::new(2, 2),
        );
        assert_eq!(g.triage, Triage::MisclassificationCandidate);
        assert_eq!(g.nearest[0], near(3, 0));
    }

    #[test]
    fn beyond_budget_everywhere_is_novelty() {
        let g = grade(
            binary(Verdict::OutOfPattern),
            None,
            vec![],
            GradedQuery::new(2, 3),
        );
        assert_eq!(g.triage, Triage::Novelty);
        assert!(g.nearest.is_empty());
    }

    #[test]
    fn triage_is_decided_before_truncation() {
        // top_k = 0 still distinguishes a near-miss from a novelty.
        let g = grade(
            binary(Verdict::OutOfPattern),
            None,
            vec![near(0, 2)],
            GradedQuery::new(2, 0),
        );
        assert_eq!(g.triage, Triage::OutOfPattern);
        assert!(g.nearest.is_empty(), "ranking truncated to top_k");
        // ... and a zero-distance hit still reads as misclassification.
        let g = grade(
            binary(Verdict::OutOfPattern),
            None,
            vec![near(0, 0)],
            GradedQuery::new(2, 0),
        );
        assert_eq!(g.triage, Triage::MisclassificationCandidate);
    }

    #[test]
    fn in_pattern_and_unmonitored_take_precedence() {
        let g = grade(
            binary(Verdict::InPattern),
            Some(0),
            vec![near(0, 0)],
            GradedQuery::default(),
        );
        assert_eq!(g.triage, Triage::InPattern);
        let g = grade(
            binary(Verdict::Unmonitored),
            None,
            vec![near(0, 1)],
            GradedQuery::default(),
        );
        assert_eq!(g.triage, Triage::Unmonitored);
    }
}
