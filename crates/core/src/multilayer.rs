//! Joint monitoring of several layers.
//!
//! The paper monitors a single close-to-output layer, and notes (Section
//! II) that any ReLU layer qualifies.  A natural hardening is to monitor
//! **several** layers at once and combine the per-layer verdicts: deeper
//! layers encode higher-level features, earlier layers coarser ones, and
//! an input can be familiar to one abstraction level yet alien to another.
//! [`LayeredMonitor`] wraps any number of [`Monitor`]s over the same
//! network and evaluates them with a **single forward pass** per query
//! that, via [`ObservationPlan`], retains **only** the monitored layers'
//! activations — adding a monitored layer costs one extra pattern lookup,
//! never an extra forward pass or an unobserved layer's allocation.

use crate::activation::{ActivationMonitor, MonitorOutcome};
use crate::batch::{observe_layered_batch, ObservationPlan};
use crate::error::MonitorError;
use crate::graded::{GradedQuery, GradedReport};
use crate::monitor::{Monitor, Verdict};
use crate::pattern::Pattern;
use crate::zone::{BddZone, Zone};
use naps_nn::Sequential;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Validates a layered monitor family from its per-monitor class counts
/// — the **single** validation shared by the live [`LayeredMonitor`] and
/// `naps-serve`'s frozen layered family.
///
/// # Errors
///
/// [`MonitorError::EmptyMonitorFamily`] on an empty family;
/// [`MonitorError::ClassCountMismatch`] when the monitors disagree on
/// the number of classes — the classifier's output width — which means
/// they were not built over one network.
pub fn validate_monitor_family(
    class_counts: impl IntoIterator<Item = usize>,
) -> Result<(), MonitorError> {
    let mut counts = class_counts.into_iter();
    let Some(expected) = counts.next() else {
        return Err(MonitorError::EmptyMonitorFamily);
    };
    if let Some(actual) = counts.find(|&c| c != expected) {
        return Err(MonitorError::ClassCountMismatch { expected, actual });
    }
    Ok(())
}

/// How per-layer verdicts are combined into one.
///
/// [`Verdict::Unmonitored`] layers (the predicted class has no zone
/// there) abstain; the policy is applied to the remaining verdicts.  If
/// every layer abstains the combined verdict is `Unmonitored` — an
/// abstention, never a warning (pinned by the exhaustive policy tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombinePolicy {
    /// Warn when **any** monitored layer is out of pattern — maximal
    /// sensitivity (union of warnings), at the cost of a higher false
    /// positive rate.
    Any,
    /// Warn only when **every** monitored layer is out of pattern —
    /// maximal precision.
    All,
    /// Warn when a **strict** majority of the non-abstaining layers are
    /// out of pattern.  Tie-break: an exact tie (e.g. 2 layers judged, 1
    /// out) does **not** warn — `Majority` resolves doubt toward the
    /// network, so it always warns at most as often as `Any` and at
    /// least as often as `All`.
    Majority,
}

impl CombinePolicy {
    /// Folds per-layer verdicts into one.
    ///
    /// `Unmonitored` entries abstain and are excluded from the count; if
    /// every entry abstains (or `verdicts` is empty) the result is
    /// `Unmonitored`.  `Majority` requires a *strict* majority of the
    /// judged layers — exact ties stay `InPattern` (see the variant
    /// docs).
    pub fn combine(self, verdicts: &[Verdict]) -> Verdict {
        let (mut out, mut judged) = (0usize, 0usize);
        for v in verdicts {
            match v {
                Verdict::OutOfPattern => {
                    out += 1;
                    judged += 1;
                }
                Verdict::InPattern => judged += 1,
                Verdict::Unmonitored => {}
            }
        }
        if judged == 0 {
            return Verdict::Unmonitored;
        }
        let warn = match self {
            CombinePolicy::Any => out > 0,
            CombinePolicy::All => out == judged,
            CombinePolicy::Majority => 2 * out > judged,
        };
        if warn {
            Verdict::OutOfPattern
        } else {
            Verdict::InPattern
        }
    }
}

/// Report of one jointly monitored classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredReport {
    /// The network's decision.
    pub predicted: usize,
    /// One verdict per wrapped monitor, in construction order.
    pub per_layer: Vec<Verdict>,
    /// The policy-combined verdict.
    pub combined: Verdict,
}

impl MonitorOutcome for LayeredReport {
    fn out_of_pattern(&self) -> bool {
        self.combined == Verdict::OutOfPattern
    }
}

/// Graded report of one jointly monitored classification: the layered
/// counterpart of [`GradedReport`], carrying one full graded ranking per
/// wrapped monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredGradedReport {
    /// The network's decision.
    pub predicted: usize,
    /// One graded report per wrapped monitor, in construction order.
    /// Entry `i` is bit-identical to
    /// [`Monitor::check_graded_pattern`] on monitor `i`'s observed
    /// pattern.
    pub per_layer: Vec<GradedReport>,
    /// The policy-combined **binary** verdict over the embedded per-layer
    /// reports — identical to [`LayeredReport::combined`] for the same
    /// input.
    pub combined: Verdict,
}

impl MonitorOutcome for LayeredGradedReport {
    fn out_of_pattern(&self) -> bool {
        self.combined == Verdict::OutOfPattern
    }
}

/// Several [`Monitor`]s over one network, queried with a single forward
/// pass and combined by a [`CombinePolicy`].
///
/// # Example
///
/// ```
/// use naps_core::{ActivationMonitor, CombinePolicy, ExactZone, LayeredMonitor, MonitorBuilder};
/// use naps_nn::mlp;
/// use naps_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = mlp(&[2, 6, 6, 2], &mut rng);
/// let xs = vec![Tensor::from_vec(vec![2], vec![1.0, 1.0])];
/// let ys = vec![0];
/// let shallow = MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
/// let deep = MonitorBuilder::new(3, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
/// let joint = LayeredMonitor::try_new(vec![shallow, deep], CombinePolicy::Any).unwrap();
/// let report = joint.check(&mut net, &xs[0]);
/// assert_eq!(report.per_layer.len(), 2);
/// ```
#[derive(Debug)]
pub struct LayeredMonitor<Z: Zone = BddZone> {
    monitors: Vec<Monitor<Z>>,
    policy: CombinePolicy,
    /// Cached plan over the (deduplicated) monitored layer indices: the
    /// forward pass retains exactly these layers' activations.
    plan: ObservationPlan,
}

impl<Z: Zone> LayeredMonitor<Z> {
    /// Wraps the given monitors, validating the family.
    ///
    /// # Errors
    ///
    /// [`MonitorError::EmptyMonitorFamily`] when `monitors` is empty;
    /// [`MonitorError::ClassCountMismatch`] when the monitors disagree on
    /// the number of classes — the classifier's output width — which
    /// means they were not built over one network.
    pub fn try_new(monitors: Vec<Monitor<Z>>, policy: CombinePolicy) -> Result<Self, MonitorError> {
        validate_monitor_family(monitors.iter().map(|m| m.num_classes()))?;
        let plan = ObservationPlan::new(monitors.iter().map(Monitor::layer).collect());
        Ok(LayeredMonitor {
            monitors,
            policy,
            plan,
        })
    }

    /// Wraps the given monitors — the panicking convenience over
    /// [`LayeredMonitor::try_new`] for construction sites where the
    /// family is known-good by construction (builders, tests).
    ///
    /// # Panics
    ///
    /// Panics if `monitors` is empty or the monitors disagree on the
    /// number of classes.
    pub fn new(monitors: Vec<Monitor<Z>>, policy: CombinePolicy) -> Self {
        match Self::try_new(monitors, policy) {
            Ok(m) => m,
            Err(MonitorError::EmptyMonitorFamily) => panic!("need at least one monitor"),
            Err(MonitorError::ClassCountMismatch { .. }) => {
                panic!("monitors disagree on the number of classes")
            }
            Err(e) => panic!("invalid monitor family: {e}"),
        }
    }

    /// The wrapped monitors, in construction order.
    pub fn monitors(&self) -> &[Monitor<Z>] {
        &self.monitors
    }

    /// The combination policy.
    pub fn policy(&self) -> CombinePolicy {
        self.policy
    }

    /// The observation plan: the deduplicated, ascending set of layer
    /// indices one batched forward pass must retain for this family.
    pub fn plan(&self) -> &ObservationPlan {
        &self.plan
    }

    /// Number of classes of the underlying classifier.
    pub fn num_classes(&self) -> usize {
        self.monitors[0].num_classes()
    }

    /// Extracts, for each input, the predicted class and one observed
    /// pattern per wrapped monitor (construction order) — a single
    /// forward pass retaining only the planned layers, the common front
    /// half of [`LayeredMonitor::check_batch`] /
    /// [`LayeredMonitor::check_graded_batch`].
    pub fn observe_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
    ) -> Vec<(usize, Vec<Pattern>)> {
        observe_layered_batch(
            model,
            inputs,
            &self.plan,
            self.monitors.iter().map(|m| (m.layer(), m.selection())),
        )
    }

    /// Batched graded joint check: one forward pass, then per layer the
    /// full graded ranking ([`Monitor::check_graded_pattern`]) — element
    /// `i` of each report is bit-identical to grading monitor `i` alone
    /// on the same input.
    pub fn check_graded_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Vec<LayeredGradedReport> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(predicted, patterns)| {
                let per_layer: Vec<GradedReport> = self
                    .monitors
                    .iter()
                    .zip(&patterns)
                    .map(|(m, pattern)| m.check_graded_pattern(predicted, pattern, query))
                    .collect();
                let verdicts: Vec<Verdict> = per_layer.iter().map(|g| g.report.verdict).collect();
                let combined = self.policy.combine(&verdicts);
                LayeredGradedReport {
                    predicted,
                    per_layer,
                    combined,
                }
            })
            .collect()
    }
}

impl<Z: Zone> ActivationMonitor for LayeredMonitor<Z> {
    type Report = LayeredReport;

    /// Jointly checks one input.
    fn check(&self, model: &mut Sequential, input: &Tensor) -> LayeredReport {
        self.check_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "check_batch returns one report per input row; the slice has exactly one row")
            .expect("one report per input")
    }

    /// Batched joint check: one forward pass for the whole batch,
    /// regardless of how many layers are monitored, retaining only the
    /// planned layers' activations.
    fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<LayeredReport> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(predicted, patterns)| {
                let per_layer: Vec<Verdict> = self
                    .monitors
                    .iter()
                    .zip(&patterns)
                    .map(|(m, pattern)| m.check_pattern(predicted, pattern))
                    .collect();
                let combined = self.policy.combine(&per_layer);
                LayeredReport {
                    predicted,
                    per_layer,
                    combined,
                }
            })
            .collect()
    }

    /// Grows every wrapped monitor to radius `gamma` (see
    /// [`ActivationMonitor::enlarge_to`]).
    fn enlarge_to(&mut self, gamma: u32) {
        for m in &mut self.monitors {
            m.enlarge_to(gamma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MonitorBuilder;
    use crate::zone::ExactZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_two_layer_net() -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = mlp(&[2, 10, 8, 2], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let s = if i % 2 == 0 { 1.5f32 } else { -1.5 };
            let wiggle = (i as f32 * 0.31).sin() * 0.3;
            xs.push(Tensor::from_vec(vec![2], vec![s + wiggle, s - wiggle]));
            ys.push(i % 2);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 80,
            batch_size: 10,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.04), &mut rng);
        (net, xs, ys)
    }

    fn joint(
        net: &mut Sequential,
        xs: &[Tensor],
        ys: &[usize],
        gamma: u32,
        policy: CombinePolicy,
    ) -> LayeredMonitor<ExactZone> {
        let shallow = MonitorBuilder::new(1, gamma).build::<ExactZone>(net, xs, ys, 2);
        let deep = MonitorBuilder::new(3, gamma).build::<ExactZone>(net, xs, ys, 2);
        LayeredMonitor::new(vec![shallow, deep], policy)
    }

    #[test]
    fn policies_fold_verdicts() {
        use Verdict::*;
        let mixed = [OutOfPattern, InPattern, InPattern];
        assert_eq!(CombinePolicy::Any.combine(&mixed), OutOfPattern);
        assert_eq!(CombinePolicy::All.combine(&mixed), InPattern);
        assert_eq!(CombinePolicy::Majority.combine(&mixed), InPattern);
        let heavy = [OutOfPattern, OutOfPattern, InPattern];
        assert_eq!(CombinePolicy::Majority.combine(&heavy), OutOfPattern);
        assert_eq!(CombinePolicy::All.combine(&heavy), InPattern);
        let unanimous = [OutOfPattern, OutOfPattern];
        assert_eq!(CombinePolicy::All.combine(&unanimous), OutOfPattern);
        // Abstentions are dropped before the fold.
        let with_abstain = [Unmonitored, OutOfPattern];
        assert_eq!(CombinePolicy::All.combine(&with_abstain), OutOfPattern);
        assert_eq!(CombinePolicy::Majority.combine(&with_abstain), OutOfPattern);
        // All abstain.
        assert_eq!(
            CombinePolicy::Any.combine(&[Unmonitored, Unmonitored]),
            Unmonitored
        );
        assert_eq!(CombinePolicy::Any.combine(&[]), Unmonitored);
    }

    /// Exhaustive pin of every policy over every verdict **multiset** of
    /// up to 4 layers (order cannot matter — asserted too), against a
    /// counting oracle.  This nails the documented edge cases forever:
    /// `Majority` does not warn on an exact tie (2 judged, 1 out), and
    /// all-`Unmonitored` abstains as `Unmonitored` under every policy.
    #[test]
    fn policies_pinned_over_all_multisets() {
        use Verdict::*;
        let policies = [
            CombinePolicy::Any,
            CombinePolicy::All,
            CombinePolicy::Majority,
        ];
        // Multisets as counts (out, in, unmonitored) with 0 < total <= 4,
        // plus the empty multiset.
        for out in 0..=4usize {
            for inp in 0..=4 - out {
                for un in 0..=4 - out - inp {
                    let mut verdicts = Vec::new();
                    verdicts.extend(std::iter::repeat_n(OutOfPattern, out));
                    verdicts.extend(std::iter::repeat_n(InPattern, inp));
                    verdicts.extend(std::iter::repeat_n(Unmonitored, un));
                    let judged = out + inp;
                    for policy in policies {
                        let want = if judged == 0 {
                            Unmonitored
                        } else {
                            let warn = match policy {
                                CombinePolicy::Any => out >= 1,
                                CombinePolicy::All => out == judged,
                                CombinePolicy::Majority => 2 * out > judged,
                            };
                            if warn {
                                OutOfPattern
                            } else {
                                InPattern
                            }
                        };
                        assert_eq!(
                            policy.combine(&verdicts),
                            want,
                            "{policy:?} over {out} out / {inp} in / {un} unmonitored"
                        );
                        // Order independence: the reverse folds identically.
                        let mut rev = verdicts.clone();
                        rev.reverse();
                        assert_eq!(policy.combine(&rev), want);
                    }
                }
            }
        }
        // The documented tie-break, spelled out.
        assert_eq!(
            CombinePolicy::Majority.combine(&[OutOfPattern, InPattern]),
            InPattern,
            "an exact tie must not warn"
        );
    }

    #[test]
    fn training_inputs_pass_all_layers() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let jm = joint(&mut net, &xs, &ys, 0, CombinePolicy::Any);
        for (x, &y) in xs.iter().zip(&ys) {
            let rep = jm.check(&mut net, x);
            if rep.predicted == y {
                // Soundness extends layer-wise: a correctly classified
                // training input is in-pattern at every monitored layer.
                assert_eq!(
                    rep.combined,
                    Verdict::InPattern,
                    "layers: {:?}",
                    rep.per_layer
                );
            }
        }
    }

    #[test]
    fn any_warns_at_least_as_often_as_majority_and_all() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let any = joint(&mut net, &xs, &ys, 0, CombinePolicy::Any);
        let all = joint(&mut net, &xs, &ys, 0, CombinePolicy::All);
        let maj = joint(&mut net, &xs, &ys, 0, CombinePolicy::Majority);
        let probes: Vec<Tensor> = (0..50)
            .map(|i| {
                let t = i as f32 * 0.37;
                Tensor::from_vec(vec![2], vec![3.0 * t.sin(), 3.0 * t.cos()])
            })
            .collect();
        let warn = |jm: &LayeredMonitor<ExactZone>, net: &mut Sequential| -> usize {
            probes
                .iter()
                .filter(|p| jm.check(net, p).combined == Verdict::OutOfPattern)
                .count()
        };
        let (w_any, w_all, w_maj) = (
            warn(&any, &mut net),
            warn(&all, &mut net),
            warn(&maj, &mut net),
        );
        assert!(w_any >= w_maj, "any({w_any}) < majority({w_maj})");
        assert!(w_maj >= w_all, "majority({w_maj}) < all({w_all})");
    }

    #[test]
    fn single_layer_joint_agrees_with_plain_monitor() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let plain = MonitorBuilder::new(1, 1).build::<ExactZone>(&mut net, &xs, &ys, 2);
        let reference = MonitorBuilder::new(1, 1).build::<ExactZone>(&mut net, &xs, &ys, 2);
        let jm = LayeredMonitor::new(vec![plain], CombinePolicy::Any);
        for x in xs.iter().take(20) {
            let a = jm.check(&mut net, x);
            let b = reference.check(&mut net, x);
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.combined, b.verdict);
        }
    }

    #[test]
    fn check_batch_matches_single_checks() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let jm = joint(&mut net, &xs, &ys, 1, CombinePolicy::Majority);
        let batch = jm.check_batch(&mut net, &xs[..10]);
        for (x, want) in xs[..10].iter().zip(&batch) {
            assert_eq!(&jm.check(&mut net, x), want);
        }
        assert!(jm.check_batch(&mut net, &[]).is_empty());
    }

    #[test]
    fn graded_batch_matches_per_monitor_grading() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let jm = joint(&mut net, &xs, &ys, 1, CombinePolicy::Any);
        let query = GradedQuery::new(2, 2);
        let graded = jm.check_graded_batch(&mut net, &xs[..12], query);
        let binary = jm.check_batch(&mut net, &xs[..12]);
        for ((g, b), x) in graded.iter().zip(&binary).zip(&xs[..12]) {
            assert_eq!(g.predicted, b.predicted);
            assert_eq!(g.combined, b.combined);
            assert_eq!(g.per_layer.len(), jm.monitors().len());
            // Per-layer grading is bit-identical to grading each wrapped
            // monitor alone.
            for (m, got) in jm.monitors().iter().zip(&g.per_layer) {
                let (predicted, pattern) = m.observe(&mut net, x);
                assert_eq!(predicted, g.predicted);
                assert_eq!(got, &m.check_graded_pattern(predicted, &pattern, query));
            }
        }
        assert!(jm.check_graded_batch(&mut net, &[], query).is_empty());
    }

    #[test]
    fn plan_covers_each_layer_once() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let a = MonitorBuilder::new(1, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
        let b = MonitorBuilder::new(3, 0).build::<ExactZone>(&mut net, &xs, &ys, 2);
        let c = MonitorBuilder::new(3, 1).build::<ExactZone>(&mut net, &xs, &ys, 2);
        // Two monitors share layer 3: the plan observes it once.
        let jm = LayeredMonitor::new(vec![a, b, c], CombinePolicy::Any);
        assert_eq!(jm.plan().layers(), &[1, 3]);
        let rep = jm.check(&mut net, &xs[0]);
        assert_eq!(rep.per_layer.len(), 3);
    }

    #[test]
    fn enlarge_to_propagates_to_all_layers() {
        let (mut net, xs, ys) = trained_two_layer_net();
        let mut jm = joint(&mut net, &xs, &ys, 0, CombinePolicy::Any);
        jm.enlarge_to(2);
        assert!(jm.monitors().iter().all(|m| m.gamma() == 2));
    }

    #[test]
    fn try_new_surfaces_family_errors() {
        use crate::selection::NeuronSelection;
        assert_eq!(
            LayeredMonitor::<ExactZone>::try_new(Vec::new(), CombinePolicy::Any).err(),
            Some(MonitorError::EmptyMonitorFamily)
        );
        let a = Monitor::<ExactZone>::from_zones(
            vec![Some(ExactZone::empty(4)), None],
            1,
            NeuronSelection::all(4),
            0,
        );
        let b = Monitor::<ExactZone>::from_zones(
            vec![Some(ExactZone::empty(4))],
            1,
            NeuronSelection::all(4),
            0,
        );
        assert_eq!(
            LayeredMonitor::try_new(vec![a, b], CombinePolicy::Any).err(),
            Some(MonitorError::ClassCountMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "at least one monitor")]
    fn empty_monitor_list_is_rejected() {
        let _ = LayeredMonitor::<ExactZone>::new(Vec::new(), CombinePolicy::Any);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of classes")]
    fn class_count_mismatch_is_rejected() {
        use crate::selection::NeuronSelection;
        let a = Monitor::<ExactZone>::from_zones(
            vec![Some(ExactZone::empty(4)), None],
            1,
            NeuronSelection::all(4),
            0,
        );
        let b = Monitor::<ExactZone>::from_zones(
            vec![Some(ExactZone::empty(4))],
            1,
            NeuronSelection::all(4),
            0,
        );
        let _ = LayeredMonitor::new(vec![a, b], CombinePolicy::Any);
    }
}
