//! Static variable-ordering heuristics for BDD-backed zones.
//!
//! The size of a comfort-zone BDD depends on the order in which the
//! monitored neurons are tested; the default — neuron index — is
//! arbitrary.  This module derives permutations from quantities the
//! monitor already has:
//!
//! * [`order_by_bias`] places the most *biased* neurons (activation
//!   frequency far from ½ over the recorded patterns) first.  Near-
//!   constant bits at the top of the diagram funnel most paths through a
//!   few nodes.
//! * [`order_by_saliency`] places the most salient neurons (Section II's
//!   gradient criterion) first, so the bits that matter most for the
//!   decision are tested earliest.
//!
//! Both return `perm` with `perm[neuron] = position`, the convention of
//! [`naps_bdd::Bdd::permute`]; [`crate::BddZone::node_count_under`]
//! measures the effect without committing to it.  Ordering is a
//! heuristic: the `bench_reorder` ablation quantifies when it pays off.

use crate::pattern::Pattern;

/// Permutation ordering neurons by activation bias, most biased first.
///
/// The bias of neuron `i` is `|freq_i − ½|` where `freq_i` is the
/// fraction of `patterns` with bit `i` set.  Ties break by neuron index,
/// so the result is deterministic.
///
/// # Panics
///
/// Panics if `patterns` is empty or widths are inconsistent.
///
/// # Example
///
/// ```
/// use naps_core::{order_by_bias, Pattern};
///
/// let pats = [
///     Pattern::from_bools(&[true, true, false]),
///     Pattern::from_bools(&[false, true, true]),
/// ];
/// // Neuron 1 is constant (bias ½) and is placed first; neurons 0 and 2
/// // are fifty-fifty (bias 0) and keep their relative order.
/// assert_eq!(order_by_bias(&pats), vec![1, 0, 2]);
/// ```
pub fn order_by_bias(patterns: &[Pattern]) -> Vec<u32> {
    assert!(!patterns.is_empty(), "need at least one pattern");
    let width = patterns[0].len();
    let mut ones = vec![0usize; width];
    for p in patterns {
        assert_eq!(p.len(), width, "pattern widths differ");
        for (i, count) in ones.iter_mut().enumerate() {
            if p.get(i) {
                *count += 1;
            }
        }
    }
    let n = patterns.len() as f64;
    let bias = |i: usize| (ones[i] as f64 / n - 0.5).abs();
    rank_descending(width, bias)
}

/// Permutation ordering neurons by absolute gradient saliency, most
/// salient first (the same `|∂n_c/∂n_i|` criterion Section II uses to
/// *select* neurons, reused to *order* them).
///
/// # Panics
///
/// Panics if `saliency` is empty.
///
/// # Example
///
/// ```
/// use naps_core::order_by_saliency;
///
/// // Neuron 2 is most influential, then 0, then 1.
/// assert_eq!(order_by_saliency(&[0.5, -0.1, 2.0]), vec![1, 2, 0]);
/// ```
pub fn order_by_saliency(saliency: &[f32]) -> Vec<u32> {
    assert!(!saliency.is_empty(), "need at least one neuron");
    rank_descending(saliency.len(), |i| f64::from(saliency[i].abs()))
}

/// Ranks `0..width` by `key` descending (stable on ties) and returns
/// `perm[i] = rank of i`.
fn rank_descending(width: usize, key: impl Fn(usize) -> f64) -> Vec<u32> {
    let mut idx: Vec<usize> = (0..width).collect();
    // `total_cmp` is a total order: a NaN key sorts deterministically
    // (after +inf) instead of panicking the ranking.
    idx.sort_by(|&a, &b| key(b).total_cmp(&key(a)).then(a.cmp(&b)));
    let mut perm = vec![0u32; width];
    for (pos, &neuron) in idx.iter().enumerate() {
        perm[neuron] = pos as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{BddZone, Zone};

    fn p(bits: &[u8]) -> Pattern {
        Pattern::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn bias_puts_constant_bits_first() {
        let pats = [
            p(&[1, 0, 1, 0]),
            p(&[1, 1, 0, 0]),
            p(&[1, 0, 1, 0]),
            p(&[1, 1, 0, 0]),
        ];
        let perm = order_by_bias(&pats);
        // Neurons 0 (always 1) and 3 (always 0) have maximal bias and
        // take the first two positions, in index order.
        assert_eq!(perm[0], 0);
        assert_eq!(perm[3], 1);
        assert_eq!(perm[1], 2);
        assert_eq!(perm[2], 3);
    }

    #[test]
    fn outputs_are_permutations() {
        let pats = [p(&[1, 0, 1]), p(&[0, 0, 1])];
        for perm in [order_by_bias(&pats), order_by_saliency(&[0.3, 0.3, -0.9])] {
            let mut seen = vec![false; perm.len()];
            for &q in &perm {
                assert!(!seen[q as usize], "duplicate position {q}");
                seen[q as usize] = true;
            }
        }
    }

    #[test]
    fn saliency_ties_break_by_index() {
        assert_eq!(order_by_saliency(&[1.0, 1.0, 1.0]), vec![0, 1, 2]);
        assert_eq!(order_by_saliency(&[-2.0, 2.0]), vec![0, 1]);
    }

    #[test]
    fn node_count_under_bias_order_never_wildly_worse() {
        // Patterns with two constant bits: the bias order groups them at
        // the top; the zone size under that order must not exceed the
        // identity-order size by more than the general reordering bound.
        let seeds: Vec<Pattern> = (0..8u32)
            .map(|i| {
                p(&[
                    1,
                    (i & 1) as u8,
                    ((i >> 1) & 1) as u8,
                    0,
                    ((i >> 2) & 1) as u8,
                ])
            })
            .collect();
        let mut zone = BddZone::empty(5);
        for s in &seeds {
            zone.insert(s);
        }
        let identity = zone.node_count();
        let biased = zone.node_count_under(&order_by_bias(&seeds));
        assert!(biased > 0);
        // Identity order already lists the constant bits early here, so
        // just sanity-check the measurement is in a plausible band.
        assert!(
            biased <= identity * 2 + 2,
            "biased {biased} vs identity {identity}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_pattern_set_is_rejected() {
        let _ = order_by_bias(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn empty_saliency_is_rejected() {
        let _ = order_by_saliency(&[]);
    }
}
