//! Shared batched-forward scaffolding for the monitor family.
//!
//! Every `check_batch` implementation follows the same shape — pack the
//! per-input rows into one `[n, feat]` tensor, run a single forward pass,
//! argmax the logits per row, read the monitored layers' activations —
//! and only the final judgement differs.  Keeping the scaffold here means
//! a fix to the batching logic lands in one place.
//!
//! Observation goes through [`ObservationPlan`]s: the forward pass keeps
//! **only** the planned layers' activations (plus the logits), so a
//! monitor watching two of a ten-layer network's ReLUs allocates two
//! intermediate tensors per batch, not ten — see
//! [`naps_nn::Sequential::forward_observe_plan`].
//!
//! The functions are public so serving layers (e.g. `naps-serve`'s
//! `MonitorEngine` workers) can reuse the exact packing and observation
//! path of the in-process monitors: verdict equivalence between batched,
//! parallel, and one-at-a-time checking rests on every caller funnelling
//! through this one implementation.

use crate::pattern::Pattern;
use crate::selection::NeuronSelection;
use naps_nn::Sequential;
use naps_tensor::Tensor;

pub use naps_nn::{ForwardScratch, ObservationPlan, PreparedModel};

/// Packs per-input rows into one `[n, feat]` batch tensor.
///
/// # Panics
///
/// Panics if `inputs` is empty or the inputs have inconsistent widths.
pub fn pack_batch(inputs: &[Tensor]) -> Tensor {
    let mut out = Tensor::default();
    pack_batch_into(inputs, &mut out);
    out
}

/// Like [`pack_batch`], but writes into the caller-provided `out` tensor
/// (resized in place; allocation-free once its capacity has reached the
/// high-water batch size).
///
/// # Panics
///
/// Panics if `inputs` is empty or the inputs have inconsistent widths.
pub fn pack_batch_into(inputs: &[Tensor], out: &mut Tensor) {
    let feat = inputs[0].len();
    out.resize_in_place(&[inputs.len(), feat]);
    let data = out.data_mut();
    for (i, t) in inputs.iter().enumerate() {
        assert_eq!(t.len(), feat, "inconsistent input widths");
        data[i * feat..(i + 1) * feat].copy_from_slice(t.data());
    }
}

/// Index of the largest logit (first wins on ties), i.e. `dec(in)`.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// One observed batch: per-row predicted classes plus the retained
/// activations of every planned layer.
///
/// The struct is reusable storage: the prepared serving path refills one
/// `ObservedBatch` per worker in place via [`ObservedBatch::refill`], so
/// steady-state micro-batches allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ObservedBatch {
    /// Per-row `dec(in)` (argmax of the logits).
    pub predicted: Vec<usize>,
    /// `observed[i]` is the `[n, width_i]` output of
    /// `plan.layers()[i]` — index monitored layers via
    /// [`ObservationPlan::position`].
    pub observed: Vec<Tensor>,
}

impl ObservedBatch {
    /// The allocation-free counterpart of [`forward_observe_plan`]: runs
    /// the prepared model on a packed `[n, feat]` batch, writing the
    /// planned activations and per-row predictions into this struct's
    /// reused storage.  Bit-identical to the allocating path (the
    /// prepared forward pins this; `argmax` is shared verbatim).
    pub fn refill(&mut self, model: &PreparedModel, batch: &Tensor, scratch: &mut ForwardScratch) {
        model.forward_observe_into(batch, scratch, &mut self.observed);
        self.predicted.clear();
        let rows = batch.shape()[0];
        for r in 0..rows {
            self.predicted.push(argmax(scratch.logits().row(r)));
        }
    }
}

/// Runs one forward pass over a packed `[n, feat]` batch, keeping only
/// the planned layers' activations, and returns them with the per-row
/// predicted classes.
///
/// This is the **only** observation path of the monitor family: every
/// batch check — single-layer, layered, refined, grid, frozen/served —
/// funnels through it, so verdict equivalence across deployments rests
/// on one implementation.
pub fn forward_observe_plan(
    model: &mut Sequential,
    batch: &Tensor,
    plan: &ObservationPlan,
) -> ObservedBatch {
    let rows = batch.shape()[0];
    let (observed, logits) = model.forward_observe_plan(batch, plan, false);
    let predicted = (0..rows).map(|r| argmax(logits.row(r))).collect();
    ObservedBatch {
        predicted,
        observed,
    }
}

/// Extracts, for each input, the predicted class plus one pattern per
/// `(layer, selection)` tap — the shared front half of every
/// **layered** check, live ([`crate::LayeredMonitor`]) and frozen
/// (`naps-serve`'s layered family): one plan-observed forward pass,
/// then per-tap pattern extraction.  Keeping it here means the
/// engine-vs-sequential bit-identical guarantee rests on a single
/// extraction implementation.
///
/// `plan` must observe every tap's layer (the caller builds both from
/// the same monitor family).
///
/// # Panics
///
/// Panics if a tap's layer is not in the plan.
pub fn observe_layered_batch<'a>(
    model: &mut Sequential,
    inputs: &[Tensor],
    plan: &ObservationPlan,
    taps: impl Iterator<Item = (usize, &'a NeuronSelection)> + Clone,
) -> Vec<(usize, Vec<Pattern>)> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let batch = pack_batch(inputs);
    let ObservedBatch {
        predicted,
        observed,
    } = forward_observe_plan(model, &batch, plan);
    predicted
        .into_iter()
        .enumerate()
        .map(|(r, p)| {
            let patterns = taps
                .clone()
                .map(|(layer, selection)| {
                    // naps-lint: allow(typed_errors, "taps was derived from this same plan, so every tapped layer has a position in it")
                    let slot = plan.position(layer).expect("planned layer");
                    selection.pattern_from(observed[slot].row(r))
                })
                .collect();
            (p, patterns)
        })
        .collect()
}
