//! Shared batched-forward scaffolding for the monitor family.
//!
//! Every `check_batch` implementation follows the same shape — pack the
//! per-input rows into one `[n, feat]` tensor, run a single forward pass,
//! argmax the logits per row, read the monitored layer's activations —
//! and only the final judgement differs.  Keeping the scaffold here means
//! a fix to the batching logic lands in one place.
//!
//! The functions are public so serving layers (e.g. `naps-serve`'s
//! `MonitorEngine` workers) can reuse the exact packing and observation
//! path of the in-process monitors: verdict equivalence between batched,
//! parallel, and one-at-a-time checking rests on every caller funnelling
//! through this one implementation.

use naps_nn::Sequential;
use naps_tensor::Tensor;

/// Packs per-input rows into one `[n, feat]` batch tensor.
///
/// # Panics
///
/// Panics if `inputs` is empty or the inputs have inconsistent widths.
pub fn pack_batch(inputs: &[Tensor]) -> Tensor {
    let feat = inputs[0].len();
    let mut data = Vec::with_capacity(inputs.len() * feat);
    for t in inputs {
        assert_eq!(t.len(), feat, "inconsistent input widths");
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec(vec![inputs.len(), feat], data)
}

/// Index of the largest logit (first wins on ties), i.e. `dec(in)`.
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Runs one forward pass over a packed `[n, feat]` batch and returns the
/// per-row predicted classes plus the monitored `layer`'s activations
/// (`[n, width]`).
pub fn forward_observe_packed(
    model: &mut Sequential,
    batch: &Tensor,
    layer: usize,
) -> (Vec<usize>, Tensor) {
    let rows = batch.shape()[0];
    let mut acts = model.forward_all(batch, false);
    let logits = acts.last().expect("nonempty activations");
    let predicted = (0..rows).map(|r| argmax(logits.row(r))).collect();
    let monitored = acts.swap_remove(layer + 1);
    (predicted, monitored)
}
