//! Distribution-shift detection from out-of-pattern rates.
//!
//! The paper's introduction observes that "the frequent appearance of
//! unseen patterns provides an indicator of data distribution shift to the
//! development team".  This module turns that observation into an online
//! detector: feed it every [`Verdict`] the monitor produces in operation,
//! and it compares the recent out-of-pattern rate — estimated both over a
//! sliding window and with an exponentially weighted moving average — to
//! the baseline rate measured on the validation set when γ was chosen
//! (the Table II out-of-pattern column).
//!
//! An alarm is raised only after the elevated rate persists for a
//! configurable number of consecutive observations, so isolated hard
//! inputs do not trigger fleet-wide warnings.

use crate::monitor::Verdict;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`DriftDetector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Out-of-pattern rate expected under no shift — the validation-set
    /// rate of the deployed γ (e.g. 0.6 % for MNIST at γ = 2 in Table II).
    pub baseline_rate: f64,
    /// Rate at or above which the input stream is considered shifted.
    /// Must be greater than `baseline_rate`; a common choice is 3–10×
    /// baseline.  The comparison is **inclusive** (`rate >= alarm_rate`
    /// counts toward the alarm streak) so a windowed rate landing
    /// exactly on the threshold — or `alarm_rate = 1.0` on an
    /// all-out-of-pattern stream — still alarms.
    pub alarm_rate: f64,
    /// Sliding-window length (number of recent verdicts) for the windowed
    /// rate estimate.
    pub window: usize,
    /// EWMA smoothing factor in `(0, 1]`; the weight of the newest
    /// observation.  Smaller is smoother/slower.
    pub ewma_alpha: f64,
    /// Number of consecutive observations with both estimates above
    /// `alarm_rate` required before [`DriftStatus::Drifting`] is reported.
    pub patience: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            baseline_rate: 0.01,
            alarm_rate: 0.10,
            window: 200,
            ewma_alpha: 0.02,
            patience: 20,
        }
    }
}

/// Detector state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStatus {
    /// Not enough observations yet to judge (fewer than the window length).
    Warmup,
    /// Out-of-pattern rate consistent with the validation baseline.
    Stable,
    /// Both rate estimates have been **at or above** the alarm rate for
    /// at least
    /// `patience` consecutive observations: the deployed network is likely
    /// operating outside the training distribution and "may need to be
    /// updated" (paper, Section I).
    Drifting,
}

/// Online out-of-pattern rate tracker with a persistence-filtered alarm.
///
/// [`Verdict::Unmonitored`] observations are ignored: a class without a
/// comfort zone carries no evidence either way.
///
/// # Example
///
/// ```
/// use naps_core::{DriftConfig, DriftDetector, DriftStatus, Verdict};
///
/// let mut det = DriftDetector::new(DriftConfig {
///     baseline_rate: 0.01,
///     alarm_rate: 0.30,
///     window: 50,
///     ewma_alpha: 0.1,
///     patience: 10,
/// });
/// for _ in 0..100 {
///     det.observe(Verdict::InPattern);
/// }
/// assert_eq!(det.status(), DriftStatus::Stable);
/// for _ in 0..100 {
///     det.observe(Verdict::OutOfPattern);
/// }
/// assert_eq!(det.status(), DriftStatus::Drifting);
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    recent: VecDeque<bool>,
    window_hits: usize,
    ewma: f64,
    streak: usize,
    observed: usize,
    out_of_pattern_total: usize,
    alarms: usize,
    alarmed: bool,
}

impl DriftDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `patience` is zero, `ewma_alpha` is outside
    /// `(0, 1]`, rates are outside `[0, 1]`, or
    /// `alarm_rate <= baseline_rate`.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.patience > 0, "patience must be positive");
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.baseline_rate) && (0.0..=1.0).contains(&config.alarm_rate),
            "rates must be in [0, 1]"
        );
        assert!(
            config.alarm_rate > config.baseline_rate,
            "alarm rate must exceed the baseline rate"
        );
        let ewma = config.baseline_rate;
        DriftDetector {
            config,
            recent: VecDeque::new(),
            window_hits: 0,
            ewma,
            streak: 0,
            observed: 0,
            out_of_pattern_total: 0,
            alarms: 0,
            alarmed: false,
        }
    }

    /// The configuration this detector was created with.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Feeds one monitor verdict; returns the status after the update.
    pub fn observe(&mut self, verdict: Verdict) -> DriftStatus {
        let hit = match verdict {
            Verdict::OutOfPattern => true,
            Verdict::InPattern => false,
            Verdict::Unmonitored => return self.status(),
        };
        self.observed += 1;
        if hit {
            self.out_of_pattern_total += 1;
        }
        self.recent.push_back(hit);
        if hit {
            self.window_hits += 1;
        }
        if self.recent.len() > self.config.window && self.recent.pop_front() == Some(true) {
            self.window_hits -= 1;
        }
        let x = if hit { 1.0 } else { 0.0 };
        self.ewma += self.config.ewma_alpha * (x - self.ewma);

        // Inclusive comparisons: a rate landing exactly on `alarm_rate`
        // is alarming evidence.  With strict `>`, `alarm_rate = 1.0`
        // could never alarm (the windowed rate cannot exceed 1), and a
        // windowed rate sitting precisely on the threshold would reset
        // the streak forever.
        if self.recent.len() >= self.config.window
            && self.windowed_rate() >= self.config.alarm_rate
            && self.ewma >= self.config.alarm_rate
        {
            self.streak += 1;
        } else {
            self.streak = 0;
            self.alarmed = false;
        }
        if self.streak >= self.config.patience && !self.alarmed {
            self.alarmed = true;
            self.alarms += 1;
        }
        self.status()
    }

    /// Convenience: feeds every verdict of a batch of reports.
    pub fn observe_all<'a, I>(&mut self, verdicts: I) -> DriftStatus
    where
        I: IntoIterator<Item = &'a Verdict>,
    {
        for v in verdicts {
            self.observe(*v);
        }
        self.status()
    }

    /// Current status (see [`DriftStatus`]).
    pub fn status(&self) -> DriftStatus {
        if self.recent.len() < self.config.window {
            DriftStatus::Warmup
        } else if self.streak >= self.config.patience {
            DriftStatus::Drifting
        } else {
            DriftStatus::Stable
        }
    }

    /// Out-of-pattern rate over the sliding window (0 before any
    /// monitored observation).
    pub fn windowed_rate(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.window_hits as f64 / self.recent.len() as f64
        }
    }

    /// Exponentially weighted out-of-pattern rate, initialised at the
    /// baseline.
    pub fn ewma_rate(&self) -> f64 {
        self.ewma
    }

    /// Lifetime out-of-pattern rate over every monitored observation.
    pub fn lifetime_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.out_of_pattern_total as f64 / self.observed as f64
        }
    }

    /// Number of monitored (non-[`Verdict::Unmonitored`]) observations.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Number of distinct alarm episodes: transitions into
    /// [`DriftStatus::Drifting`] since creation or the last [`reset`].
    ///
    /// [`reset`]: DriftDetector::reset
    pub fn alarm_count(&self) -> usize {
        self.alarms
    }

    /// Clears all streaming state (window, EWMA, streak, counters) while
    /// keeping the configuration — e.g. after the development team ships
    /// an updated network.
    pub fn reset(&mut self) {
        self.recent.clear();
        self.window_hits = 0;
        self.ewma = self.config.baseline_rate;
        self.streak = 0;
        self.observed = 0;
        self.out_of_pattern_total = 0;
        self.alarms = 0;
        self.alarmed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DriftConfig {
        DriftConfig {
            baseline_rate: 0.02,
            alarm_rate: 0.25,
            window: 20,
            ewma_alpha: 0.15,
            patience: 5,
        }
    }

    #[test]
    fn warmup_until_window_filled() {
        let mut det = DriftDetector::new(quick_config());
        for _ in 0..19 {
            assert_eq!(det.observe(Verdict::InPattern), DriftStatus::Warmup);
        }
        assert_eq!(det.observe(Verdict::InPattern), DriftStatus::Stable);
    }

    #[test]
    fn stable_under_baseline_rate() {
        let mut det = DriftDetector::new(quick_config());
        for i in 0..500 {
            // 2 % out-of-pattern, evenly spread.
            let v = if i % 50 == 0 {
                Verdict::OutOfPattern
            } else {
                Verdict::InPattern
            };
            det.observe(v);
        }
        assert_eq!(det.status(), DriftStatus::Stable);
        assert_eq!(det.alarm_count(), 0);
        assert!(det.lifetime_rate() < 0.05);
    }

    #[test]
    fn sustained_shift_raises_alarm_once() {
        let mut det = DriftDetector::new(quick_config());
        for _ in 0..100 {
            det.observe(Verdict::InPattern);
        }
        for _ in 0..100 {
            det.observe(Verdict::OutOfPattern);
        }
        assert_eq!(det.status(), DriftStatus::Drifting);
        assert_eq!(det.alarm_count(), 1, "persisting drift is one episode");
        assert!(det.windowed_rate() > 0.9);
        assert!(det.ewma_rate() > 0.5);
    }

    #[test]
    fn isolated_spikes_are_filtered_by_patience() {
        // Patience longer than the spike (plus the EWMA's decay tail)
        // keeps a short burst from alarming.
        let mut det = DriftDetector::new(DriftConfig {
            patience: 15,
            ..quick_config()
        });
        for _ in 0..40 {
            det.observe(Verdict::InPattern);
        }
        let mut peak = 0.0f64;
        for _ in 0..6 {
            det.observe(Verdict::OutOfPattern);
            peak = peak.max(det.windowed_rate());
        }
        assert!(
            peak > det.config().alarm_rate,
            "spike never crossed the alarm rate"
        );
        let mut drifted = false;
        for _ in 0..60 {
            drifted |= det.observe(Verdict::InPattern) == DriftStatus::Drifting;
        }
        assert!(!drifted, "short spike must not alarm");
        assert_eq!(det.status(), DriftStatus::Stable);
        assert_eq!(det.alarm_count(), 0);
    }

    #[test]
    fn recovery_after_shift_clears_alarm_and_recounts() {
        let mut det = DriftDetector::new(quick_config());
        for _ in 0..60 {
            det.observe(Verdict::OutOfPattern);
        }
        assert_eq!(det.status(), DriftStatus::Drifting);
        for _ in 0..60 {
            det.observe(Verdict::InPattern);
        }
        assert_eq!(det.status(), DriftStatus::Stable);
        // A second shift is a second episode.
        for _ in 0..60 {
            det.observe(Verdict::OutOfPattern);
        }
        assert_eq!(det.alarm_count(), 2);
    }

    #[test]
    fn unmonitored_verdicts_carry_no_evidence() {
        let mut det = DriftDetector::new(quick_config());
        for _ in 0..100 {
            det.observe(Verdict::Unmonitored);
        }
        assert_eq!(det.status(), DriftStatus::Warmup);
        assert_eq!(det.observed(), 0);
        assert_eq!(det.windowed_rate(), 0.0);
    }

    #[test]
    fn observe_all_matches_sequential_observes() {
        let stream: Vec<Verdict> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    Verdict::OutOfPattern
                } else {
                    Verdict::InPattern
                }
            })
            .collect();
        let mut a = DriftDetector::new(quick_config());
        a.observe_all(&stream);
        let mut b = DriftDetector::new(quick_config());
        for v in &stream {
            b.observe(*v);
        }
        assert_eq!(a.status(), b.status());
        assert_eq!(a.windowed_rate(), b.windowed_rate());
        assert_eq!(a.ewma_rate(), b.ewma_rate());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = DriftDetector::new(quick_config());
        for _ in 0..80 {
            det.observe(Verdict::OutOfPattern);
        }
        det.reset();
        assert_eq!(det.status(), DriftStatus::Warmup);
        assert_eq!(det.observed(), 0);
        assert_eq!(det.alarm_count(), 0);
        assert_eq!(det.ewma_rate(), det.config().baseline_rate);
    }

    #[test]
    fn windowed_rate_exactly_on_threshold_alarms() {
        // A period-4 stream with 3 hits pins the 20-wide windowed rate
        // to exactly 15/20 = 0.75 = alarm_rate at every phase.  The
        // EWMA oscillates around 0.75 and is above it right after the
        // third hit of each period, so with patience 1 the boundary
        // step must alarm — under the old strict `>` the windowed test
        // `0.75 > 0.75` failed forever and this stream never alarmed.
        let mut det = DriftDetector::new(DriftConfig {
            baseline_rate: 0.1,
            alarm_rate: 0.75,
            window: 20,
            ewma_alpha: 0.05,
            patience: 1,
        });
        let mut drifted = false;
        for i in 0..400 {
            let v = if i % 4 == 3 {
                Verdict::InPattern
            } else {
                Verdict::OutOfPattern
            };
            drifted |= det.observe(v) == DriftStatus::Drifting;
            if i >= 20 {
                // Once the window saturates it spans 5 whole periods:
                // the rate sits exactly on the boundary, never above.
                assert!(
                    (det.windowed_rate() - det.config().alarm_rate).abs() < 1e-12,
                    "stream must sit exactly on the boundary"
                );
            }
        }
        assert!(
            drifted,
            "rate exactly on the threshold never alarmed (windowed {}, ewma {})",
            det.windowed_rate(),
            det.ewma_rate()
        );
    }

    #[test]
    fn alarm_rate_one_alarms_on_all_out_of_pattern_stream() {
        // alarm_rate = 1.0 is satisfiable only inclusively: the windowed
        // rate tops out at exactly 1.0.  ewma_alpha = 1.0 makes the EWMA
        // track the newest observation exactly.
        let mut det = DriftDetector::new(DriftConfig {
            baseline_rate: 0.0,
            alarm_rate: 1.0,
            window: 10,
            ewma_alpha: 1.0,
            patience: 3,
        });
        for _ in 0..20 {
            det.observe(Verdict::OutOfPattern);
        }
        assert_eq!(det.status(), DriftStatus::Drifting);
        assert_eq!(det.alarm_count(), 1);
    }

    #[test]
    #[should_panic(expected = "alarm rate must exceed")]
    fn alarm_below_baseline_is_rejected() {
        let _ = DriftDetector::new(DriftConfig {
            baseline_rate: 0.5,
            alarm_rate: 0.4,
            ..quick_config()
        });
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        let _ = DriftDetector::new(DriftConfig {
            window: 0,
            ..quick_config()
        });
    }
}
