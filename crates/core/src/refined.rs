//! Binary monitor + numeric envelopes in one deployable unit.
//!
//! The `refinement` experiment shows the Section V item (2) idea — box
//! and difference-bound envelopes over the monitored activations — as
//! loose parts.  [`RefinedMonitor`] packages them: one builder pass
//! records binary patterns *and* numeric envelopes per class, and every
//! deployment query returns the binary verdict, the numeric verdict and
//! their disjunction.  The numeric side never weakens the binary
//! monitor: a combined `InPattern` requires both abstractions to accept.

use crate::activation::{ActivationMonitor, MonitorOutcome};
use crate::batch::{forward_observe_plan, pack_batch, ObservationPlan, ObservedBatch};
use crate::builder::MonitorBuilder;
use crate::dbm::DbmZone;
use crate::interval::IntervalZone;
use crate::monitor::{Monitor, Verdict};
use crate::zone::{BddZone, Zone};
use naps_nn::Sequential;
use naps_tensor::Tensor;

/// Which numeric domain refines the binary monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericDomain {
    /// Per-neuron min/max box ([`IntervalZone`]): `O(d)` per query.
    Box,
    /// Difference-bound matrix ([`DbmZone`]): relational, `O(d²)` per
    /// query, never looser than the box.
    Dbm,
}

/// Outcome of one refined query.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedReport {
    /// The network's decision.
    pub predicted: usize,
    /// The binary pattern monitor's verdict (Definition 3).
    pub binary: Verdict,
    /// The numeric envelope's verdict at the configured slack.
    pub numeric: Verdict,
    /// `OutOfPattern` if either abstraction warns.
    pub combined: Verdict,
    /// The numeric violation (minimal admitting slack), when the
    /// predicted class has an envelope.
    pub violation: Option<f32>,
}

impl MonitorOutcome for RefinedReport {
    fn out_of_pattern(&self) -> bool {
        self.combined == Verdict::OutOfPattern
    }
}

/// A binary activation-pattern monitor refined by per-class numeric
/// envelopes over the same monitored neurons.
///
/// Build with [`MonitorBuilder::build_refined`]; tune the numeric
/// coarseness with [`RefinedMonitor::set_slack`] (the numeric analogue
/// of γ — larger slack, coarser abstraction).
#[derive(Debug)]
pub struct RefinedMonitor<Z: Zone = BddZone> {
    monitor: Monitor<Z>,
    boxes: Vec<Option<IntervalZone>>,
    dbms: Vec<Option<DbmZone>>,
    domain: NumericDomain,
    slack: f32,
}

impl<Z: Zone> RefinedMonitor<Z> {
    pub(crate) fn from_parts(
        monitor: Monitor<Z>,
        boxes: Vec<Option<IntervalZone>>,
        dbms: Vec<Option<DbmZone>>,
        domain: NumericDomain,
    ) -> Self {
        assert_eq!(monitor.num_classes(), boxes.len(), "one box per class");
        assert_eq!(monitor.num_classes(), dbms.len(), "one dbm per class");
        RefinedMonitor {
            monitor,
            boxes,
            dbms,
            domain,
            slack: 0.0,
        }
    }

    /// The underlying binary monitor.
    pub fn monitor(&self) -> &Monitor<Z> {
        &self.monitor
    }

    /// The numeric domain in use.
    pub fn domain(&self) -> NumericDomain {
        self.domain
    }

    /// Current numeric slack.
    pub fn slack(&self) -> f32 {
        self.slack
    }

    /// Sets the numeric slack (coarseness knob).
    ///
    /// # Panics
    ///
    /// Panics if `slack` is negative or non-finite.
    pub fn set_slack(&mut self, slack: f32) {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "slack must be finite and non-negative"
        );
        self.slack = slack;
    }

    /// The numeric envelope verdict for raw monitored values of `class`.
    fn numeric_verdict(&self, class: usize, values: &[f32]) -> (Verdict, Option<f32>) {
        let (inside, violation) = match self.domain {
            NumericDomain::Box => match &self.boxes[class] {
                None => return (Verdict::Unmonitored, None),
                Some(z) => (z.contains(values, self.slack), z.violation(values)),
            },
            NumericDomain::Dbm => match &self.dbms[class] {
                None => return (Verdict::Unmonitored, None),
                Some(z) => (z.contains(values, self.slack), z.violation(values)),
            },
        };
        let verdict = if violation.is_none() {
            // Empty envelope: the class was never correctly predicted in
            // training, so nothing is familiar.
            Verdict::OutOfPattern
        } else if inside {
            Verdict::InPattern
        } else {
            Verdict::OutOfPattern
        };
        (verdict, violation)
    }
}

impl<Z: Zone> ActivationMonitor for RefinedMonitor<Z> {
    type Report = RefinedReport;

    /// Runs the network and judges the decision with both abstractions.
    fn check(&self, model: &mut Sequential, input: &Tensor) -> RefinedReport {
        self.check_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "check_batch returns one report per input row; the slice has exactly one row")
            .expect("one report per input")
    }

    /// Batched refined judgement: one forward pass for the whole batch,
    /// then per-row binary and numeric verdicts.
    fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<RefinedReport> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let batch = pack_batch(inputs);
        let ObservedBatch {
            predicted: predictions,
            observed,
        } = forward_observe_plan(
            model,
            &batch,
            &ObservationPlan::single(self.monitor.layer()),
        );
        let monitored = &observed[0];
        let selection = self.monitor.selection();
        predictions
            .into_iter()
            .enumerate()
            .map(|(r, predicted)| {
                let full = monitored.row(r);
                let pattern = selection.pattern_from(full);
                let binary = self.monitor.check_pattern(predicted, &pattern);
                let values: Vec<f32> = selection.indices().iter().map(|&i| full[i]).collect();
                let (numeric, violation) = self.numeric_verdict(predicted, &values);
                let combined = match (binary, numeric) {
                    (Verdict::OutOfPattern, _) | (_, Verdict::OutOfPattern) => {
                        Verdict::OutOfPattern
                    }
                    (Verdict::Unmonitored, Verdict::Unmonitored) => Verdict::Unmonitored,
                    _ => Verdict::InPattern,
                };
                RefinedReport {
                    predicted,
                    binary,
                    numeric,
                    combined,
                    violation,
                }
            })
            .collect()
    }

    /// Graded judgement through the **binary** monitor: the numeric
    /// envelopes refine the in/out verdict but carry no Hamming
    /// distance, so the graded payload is the wrapped
    /// [`Monitor::check_graded_pattern`] query.
    fn check_graded(
        &self,
        model: &mut Sequential,
        input: &Tensor,
        query: crate::GradedQuery,
    ) -> Option<crate::GradedReport> {
        self.monitor.check_graded(model, input, query)
    }

    /// Grows the **binary** monitor's zones to radius `gamma`.  The
    /// numeric envelopes have their own coarseness knob,
    /// [`RefinedMonitor::set_slack`], and are left untouched.
    fn enlarge_to(&mut self, gamma: u32) {
        self.monitor.enlarge_to(gamma);
    }
}

impl MonitorBuilder {
    /// Like [`MonitorBuilder::build`], but additionally records per-class
    /// numeric envelopes (both box and DBM; query with either via
    /// [`NumericDomain`]) over the monitored neurons' real activations of
    /// the correctly classified training inputs — one extra pass over the
    /// training set.
    ///
    /// # Panics
    ///
    /// As [`MonitorBuilder::build`].
    pub fn build_refined<Z: Zone>(
        &self,
        model: &mut Sequential,
        samples: &[Tensor],
        labels: &[usize],
        num_classes: usize,
        domain: NumericDomain,
    ) -> RefinedMonitor<Z> {
        let monitor = self.build::<Z>(model, samples, labels, num_classes);
        let selection = monitor.selection().clone();
        let width = selection.len();
        let monitored_classes: Vec<bool> = (0..num_classes)
            .map(|c| monitor.zone(c).is_some())
            .collect();
        let mut boxes: Vec<Option<IntervalZone>> = monitored_classes
            .iter()
            .map(|&m| m.then(|| IntervalZone::empty(width)))
            .collect();
        let mut dbms: Vec<Option<DbmZone>> = monitored_classes
            .iter()
            .map(|&m| m.then(|| DbmZone::empty(width)))
            .collect();

        let indices: Vec<usize> = (0..samples.len()).collect();
        for chunk in indices.chunks(64) {
            let feat = samples[chunk[0]].len();
            let mut data = Vec::with_capacity(chunk.len() * feat);
            for &i in chunk {
                data.extend_from_slice(samples[i].data());
            }
            let batch = Tensor::from_vec(vec![chunk.len(), feat], data);
            let ObservedBatch {
                predicted,
                observed,
            } = forward_observe_plan(model, &batch, &ObservationPlan::single(monitor.layer()));
            let monitored = &observed[0];
            for (r, &i) in chunk.iter().enumerate() {
                let pred = predicted[r];
                if pred == labels[i] {
                    let full = monitored.row(r);
                    let values: Vec<f32> = selection.indices().iter().map(|&k| full[k]).collect();
                    if let Some(z) = boxes[pred].as_mut() {
                        z.insert(&values);
                    }
                    if let Some(z) = dbms[pred].as_mut() {
                        z.insert(&values);
                    }
                }
            }
        }
        RefinedMonitor::from_parts(monitor, boxes, dbms, domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ExactZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = mlp(&[2, 10, 2], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            let s = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            let w = (i as f32 * 0.21).sin() * 0.2;
            xs.push(Tensor::from_vec(vec![2], vec![s + w, s - w]));
            ys.push(i % 2);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 8,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
        (net, xs, ys)
    }

    #[test]
    fn training_inputs_pass_both_abstractions() {
        let (mut net, xs, ys) = trained();
        for domain in [NumericDomain::Box, NumericDomain::Dbm] {
            let refined =
                MonitorBuilder::new(1, 0).build_refined::<ExactZone>(&mut net, &xs, &ys, 2, domain);
            for (x, &y) in xs.iter().zip(&ys) {
                let rep = refined.check(&mut net, x);
                if rep.predicted == y {
                    assert_eq!(rep.binary, Verdict::InPattern);
                    assert_eq!(rep.numeric, Verdict::InPattern, "{domain:?}");
                    assert_eq!(rep.combined, Verdict::InPattern);
                    assert_eq!(rep.violation, Some(0.0));
                }
            }
        }
    }

    #[test]
    fn combined_verdict_is_the_disjunction() {
        let (mut net, xs, ys) = trained();
        let refined = MonitorBuilder::new(1, 1).build_refined::<ExactZone>(
            &mut net,
            &xs,
            &ys,
            2,
            NumericDomain::Dbm,
        );
        let probes: Vec<Tensor> = (0..60)
            .map(|i| {
                let t = i as f32 * 0.41;
                Tensor::from_vec(vec![2], vec![2.5 * t.sin(), 2.5 * t.cos()])
            })
            .collect();
        let mut union_seen = false;
        for p in &probes {
            let rep = refined.check(&mut net, p);
            let expect =
                if rep.binary == Verdict::OutOfPattern || rep.numeric == Verdict::OutOfPattern {
                    Verdict::OutOfPattern
                } else {
                    Verdict::InPattern
                };
            assert_eq!(rep.combined, expect);
            if rep.combined == Verdict::OutOfPattern && rep.binary == Verdict::InPattern {
                union_seen = true;
            }
        }
        // At least one probe must be caught only by the numeric side,
        // otherwise the refinement adds nothing on this workload.
        assert!(union_seen, "numeric refinement never added a warning");
    }

    #[test]
    fn slack_relaxes_the_numeric_side_monotonically() {
        let (mut net, xs, ys) = trained();
        let mut refined = MonitorBuilder::new(1, 0).build_refined::<ExactZone>(
            &mut net,
            &xs,
            &ys,
            2,
            NumericDomain::Box,
        );
        let probes: Vec<Tensor> = (0..40)
            .map(|i| {
                let t = i as f32 * 0.37;
                Tensor::from_vec(vec![2], vec![1.8 * t.sin(), 1.8 * t.cos()])
            })
            .collect();
        let numeric_warnings = |rm: &RefinedMonitor<ExactZone>, net: &mut Sequential| {
            probes
                .iter()
                .filter(|p| rm.check(net, p).numeric == Verdict::OutOfPattern)
                .count()
        };
        let strict = numeric_warnings(&refined, &mut net);
        refined.set_slack(1.0);
        let relaxed = numeric_warnings(&refined, &mut net);
        refined.set_slack(1e6);
        let silent = numeric_warnings(&refined, &mut net);
        assert!(strict >= relaxed, "{strict} < {relaxed}");
        assert!(relaxed >= silent, "{relaxed} < {silent}");
        assert_eq!(silent, 0, "huge slack must silence the numeric side");
    }

    #[test]
    fn dbm_warns_at_least_as_often_as_box() {
        let (mut net, xs, ys) = trained();
        let boxm = MonitorBuilder::new(1, 0).build_refined::<ExactZone>(
            &mut net,
            &xs,
            &ys,
            2,
            NumericDomain::Box,
        );
        let dbmm = MonitorBuilder::new(1, 0).build_refined::<ExactZone>(
            &mut net,
            &xs,
            &ys,
            2,
            NumericDomain::Dbm,
        );
        let probes: Vec<Tensor> = (0..60)
            .map(|i| {
                let t = i as f32 * 0.29;
                Tensor::from_vec(vec![2], vec![2.0 * t.sin(), 2.0 * t.cos()])
            })
            .collect();
        for p in &probes {
            let b = boxm.check(&mut net, p);
            let d = dbmm.check(&mut net, p);
            if b.numeric == Verdict::OutOfPattern {
                assert_eq!(
                    d.numeric,
                    Verdict::OutOfPattern,
                    "dbm accepted what the box rejected"
                );
            }
            // And the violations are ordered (dbm at least as strict).
            if let (Some(bv), Some(dv)) = (b.violation, d.violation) {
                assert!(dv + 1e-4 >= bv, "dbm violation {dv} below box {bv}");
            }
        }
    }

    #[test]
    fn unmonitored_class_stays_unmonitored() {
        let (mut net, xs, ys) = trained();
        let refined = MonitorBuilder::new(1, 0)
            .with_classes(vec![0])
            .build_refined::<ExactZone>(&mut net, &xs, &ys, 2, NumericDomain::Dbm);
        let mut saw = false;
        for x in &xs {
            let rep = refined.check(&mut net, x);
            if rep.predicted == 1 {
                assert_eq!(rep.binary, Verdict::Unmonitored);
                assert_eq!(rep.numeric, Verdict::Unmonitored);
                assert_eq!(rep.combined, Verdict::Unmonitored);
                saw = true;
            }
        }
        assert!(saw, "class 1 never predicted");
    }

    #[test]
    #[should_panic(expected = "slack must be finite")]
    fn negative_slack_is_rejected() {
        let (mut net, xs, ys) = trained();
        let mut refined = MonitorBuilder::new(1, 0).build_refined::<ExactZone>(
            &mut net,
            &xs,
            &ys,
            2,
            NumericDomain::Box,
        );
        refined.set_slack(-1.0);
    }
}
