//! The runtime monitor (Definition 3 + the deployment query of Figure 1).

use crate::activation::{ActivationMonitor, MonitorOutcome};
use crate::batch::{forward_observe_plan, pack_batch, ObservationPlan, ObservedBatch};
use crate::error::MonitorError;
use crate::graded::{grade, GradedQuery, GradedReport, NearestZone};
use crate::pattern::Pattern;
use crate::selection::NeuronSelection;
use crate::zone::{BddZone, Zone};
use naps_bdd::BddSnapshot;
use naps_nn::Sequential;
use naps_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Outcome of one monitored classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The activation pattern lies inside the comfort zone of the predicted
    /// class: the decision is supported by prior similarity in training.
    InPattern,
    /// The pattern is **not** in the comfort zone — the paper's warning
    /// that the decision is not based on the training data.
    OutOfPattern,
    /// The predicted class has no monitor (single-class deployments, e.g.
    /// the paper's GTSRB stop-sign monitor).
    Unmonitored,
}

/// Full report of one monitored classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport {
    /// The network's decision `dec(in)`.
    pub predicted: usize,
    /// Whether the decision is inside its class's comfort zone.
    pub verdict: Verdict,
    /// Minimum Hamming distance from the observed pattern to the visited
    /// (γ = 0) patterns of the predicted class, when that class is
    /// monitored and non-empty.  `Some(0)` means the exact pattern was
    /// seen in training.
    pub distance_to_seeds: Option<u32>,
}

impl MonitorOutcome for MonitorReport {
    fn out_of_pattern(&self) -> bool {
        self.verdict == Verdict::OutOfPattern
    }
}

/// A neuron activation pattern monitor `⟨Z^γ_1, …, Z^γ_C⟩`.
///
/// Built by [`crate::MonitorBuilder`] (Algorithm 1).  Queries run in time
/// linear in the number of monitored neurons when `Z` is [`BddZone`].
#[derive(Debug)]
pub struct Monitor<Z: Zone = BddZone> {
    zones: Vec<Option<Z>>,
    layer: usize,
    selection: NeuronSelection,
    gamma: u32,
    /// Per-class "changed since the last [`Monitor::take_dirty`]" flags,
    /// driving incremental republish of the online-enrichment loop.
    dirty: Vec<bool>,
}

impl<Z: Zone> Monitor<Z> {
    /// Assembles a monitor from per-class zones.  Intended for
    /// [`crate::MonitorBuilder`]; exposed for custom pattern sources (e.g.
    /// the YOLO-style grid monitoring sketched in the paper's Section V).
    ///
    /// # Panics
    ///
    /// Panics if any zone's width differs from the selection width.
    pub fn from_zones(
        zones: Vec<Option<Z>>,
        layer: usize,
        selection: NeuronSelection,
        gamma: u32,
    ) -> Self {
        for z in zones.iter().flatten() {
            assert_eq!(
                z.width(),
                selection.len(),
                "zone width does not match selection width"
            );
        }
        let dirty = vec![false; zones.len()];
        Monitor {
            zones,
            layer,
            selection,
            gamma,
            dirty,
        }
    }

    /// Index of the monitored layer in the [`Sequential`] model.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The Hamming-distance budget γ.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// The monitored neuron subset.
    pub fn selection(&self) -> &NeuronSelection {
        &self.selection
    }

    /// Number of classes (monitored or not).
    pub fn num_classes(&self) -> usize {
        self.zones.len()
    }

    /// Classes that have a comfort zone.
    pub fn monitored_classes(&self) -> Vec<usize> {
        self.zones
            .iter()
            .enumerate()
            .filter_map(|(c, z)| z.as_ref().map(|_| c))
            .collect()
    }

    /// The zone of `class`, if monitored.
    pub fn zone(&self, class: usize) -> Option<&Z> {
        self.zones.get(class).and_then(|z| z.as_ref())
    }

    /// Merges `other`'s per-class seed sets into this monitor (set union,
    /// re-dilated to this monitor's γ).  Both monitors must have been
    /// built for the same layer, selection and class count — this is how
    /// monitors built on disjoint data shards (different vehicles,
    /// different collection campaigns) are combined.
    ///
    /// # Panics
    ///
    /// Panics if layer, selection or class counts differ, or if one side
    /// monitors a class the other does not.
    pub fn merge(&mut self, other: &Monitor<Z>) {
        assert_eq!(self.layer, other.layer, "monitored layers differ");
        assert_eq!(self.selection, other.selection, "selections differ");
        assert_eq!(self.zones.len(), other.zones.len(), "class counts differ");
        for (c, (mine, theirs)) in self.zones.iter_mut().zip(&other.zones).enumerate() {
            match (mine, theirs) {
                (Some(a), Some(b)) => {
                    a.absorb(b);
                    self.dirty[c] = true;
                }
                (None, None) => {}
                _ => panic!("monitored class sets differ"),
            }
        }
    }

    /// Feeds operator-confirmed activation patterns back into the comfort
    /// zone of `class` — the paper's Section IV adaptation loop, where an
    /// out-of-pattern decision a human vets as benign should stop
    /// warning.
    ///
    /// Works **post-enlargement**: each pattern is inserted into the seed
    /// set and immediately dilated to the zone's current γ (the
    /// incremental [`Zone::insert`]-after-[`Zone::enlarge_to`] path), so
    /// no rebuild or re-sweep is needed before redeploying.  The class is
    /// marked dirty (see [`Monitor::dirty_classes`] /
    /// [`Monitor::take_dirty`]) so a serving layer can republish only
    /// what changed.
    ///
    /// Returns the number of patterns that were actually new (outside
    /// the seed set before the call).
    ///
    /// # Errors
    ///
    /// [`MonitorError::UnmonitoredClass`] when `class` has no zone,
    /// [`MonitorError::WidthMismatch`] when a pattern's width differs
    /// from the monitored selection; on error the monitor is unchanged.
    pub fn enrich(&mut self, class: usize, patterns: &[Pattern]) -> Result<usize, MonitorError> {
        let width = self.selection.len();
        if let Some(bad) = patterns.iter().find(|p| p.len() != width) {
            return Err(MonitorError::WidthMismatch {
                expected: width,
                actual: bad.len(),
            });
        }
        let zone = self
            .zones
            .get_mut(class)
            .and_then(|z| z.as_mut())
            .ok_or(MonitorError::UnmonitoredClass { class })?;
        let mut fresh = 0usize;
        for p in patterns {
            if zone.distance_to_seeds(p) == Some(0) {
                continue; // already a seed: nothing to learn
            }
            zone.insert(p);
            fresh += 1;
        }
        if fresh > 0 {
            self.dirty[class] = true;
        }
        Ok(fresh)
    }

    /// Classes whose zones changed since the last [`Monitor::take_dirty`]
    /// (via [`Monitor::enrich`], [`Monitor::merge`] or
    /// [`ActivationMonitor::enlarge_to`]), ascending.
    pub fn dirty_classes(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .enumerate()
            .filter_map(|(c, &d)| d.then_some(c))
            .collect()
    }

    /// Returns the dirty class set and clears the flags — call when the
    /// changes have been published (frozen, swapped in, persisted).
    pub fn take_dirty(&mut self) -> Vec<usize> {
        let classes = self.dirty_classes();
        self.dirty.fill(false);
        classes
    }

    /// Per-class construction/coverage summary — seeds recorded, current
    /// γ, and (for diagnostics) how much of the pattern space each zone
    /// spans, via [`Zone::seed_count`].
    pub fn seed_counts(&self) -> Vec<Option<usize>> {
        self.zones
            .iter()
            .map(|z| z.as_ref().map(|z| z.seed_count()))
            .collect()
    }

    /// Checks a pattern directly against the zone of `class`.
    pub fn check_pattern(&self, class: usize, pattern: &Pattern) -> Verdict {
        match self.zone(class) {
            None => Verdict::Unmonitored,
            Some(z) => {
                if z.contains(pattern) {
                    Verdict::InPattern
                } else {
                    Verdict::OutOfPattern
                }
            }
        }
    }

    /// Judges an already-extracted `(predicted, pattern)` pair with full
    /// graded detail: the binary report plus the bounded distance to the
    /// predicted class's zone and the ranked nearest other-class zones
    /// within the query budget (see [`crate::GradedReport`]).
    ///
    /// The ranking and triage logic is shared with `naps-serve`'s frozen
    /// path through [`crate::graded::grade`], and the distances come
    /// from the same budget-bounded DP on both sides, so graded verdicts
    /// are bit-identical between sequential and served checking.
    pub fn check_graded_pattern(
        &self,
        predicted: usize,
        pattern: &Pattern,
        query: GradedQuery,
    ) -> GradedReport {
        let report = MonitorReport {
            predicted,
            verdict: self.check_pattern(predicted, pattern),
            distance_to_seeds: self
                .zone(predicted)
                .and_then(|z| z.distance_to_seeds(pattern)),
        };
        let distance_to_zone = self
            .zone(predicted)
            .and_then(|z| z.distance_to_zone_within(pattern, query.budget));
        let others: Vec<NearestZone> = self
            .zones
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != predicted)
            .filter_map(|(c, z)| {
                let z = z.as_ref()?;
                let distance = z.distance_to_zone_within(pattern, query.budget)?;
                Some(NearestZone { class: c, distance })
            })
            .collect();
        grade(report, distance_to_zone, others, query)
    }

    /// Batched graded judgement sharing one forward pass: the graded
    /// counterpart of [`ActivationMonitor::check_batch`].  Element `i`
    /// equals `check_graded` on input `i`.
    pub fn check_graded_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
        query: GradedQuery,
    ) -> Vec<GradedReport> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(predicted, pattern)| self.check_graded_pattern(predicted, &pattern, query))
            .collect()
    }

    /// Extracts the (predicted class, monitored pattern) pair for one input
    /// without judging it — the [`crate::MonitorBuilder`] and diagnostics
    /// path.
    pub fn observe(&self, model: &mut Sequential, input: &Tensor) -> (usize, Pattern) {
        self.observe_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "observe_batch returns one entry per input row; the slice has exactly one row")
            .expect("one observation per input")
    }

    /// Batched version of [`Monitor::observe`].
    pub fn observe_batch(
        &self,
        model: &mut Sequential,
        inputs: &[Tensor],
    ) -> Vec<(usize, Pattern)> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let batch = pack_batch(inputs);
        let ObservedBatch {
            predicted,
            observed,
        } = forward_observe_plan(model, &batch, &ObservationPlan::single(self.layer));
        let monitored = &observed[0];
        predicted
            .into_iter()
            .enumerate()
            .map(|(r, p)| (p, self.selection.pattern_from(monitored.row(r))))
            .collect()
    }
}

impl<Z: Zone> ActivationMonitor for Monitor<Z> {
    type Report = MonitorReport;

    /// Runs the network on one flat input, extracts the monitored pattern
    /// and returns the network decision plus the monitor verdict — the
    /// deployment-time flow of Figure 1(b).
    fn check(&self, model: &mut Sequential, input: &Tensor) -> MonitorReport {
        self.check_batch(model, std::slice::from_ref(input))
            .pop()
            // naps-lint: allow(typed_errors, "check_batch returns one report per input row; the slice has exactly one row")
            .expect("one report per input")
    }

    /// Batched judgement sharing one forward pass across the batch.
    fn check_batch(&self, model: &mut Sequential, inputs: &[Tensor]) -> Vec<MonitorReport> {
        self.observe_batch(model, inputs)
            .into_iter()
            .map(|(predicted, pattern)| {
                let verdict = self.check_pattern(predicted, &pattern);
                let distance_to_seeds = self
                    .zone(predicted)
                    .and_then(|z| z.distance_to_seeds(&pattern));
                MonitorReport {
                    predicted,
                    verdict,
                    distance_to_seeds,
                }
            })
            .collect()
    }

    /// Graded judgement: distance to the predicted class's zone plus a
    /// ranked nearest-other-class list — always `Some`; see
    /// [`Monitor::check_graded_pattern`].
    fn check_graded(
        &self,
        model: &mut Sequential,
        input: &Tensor,
        query: GradedQuery,
    ) -> Option<GradedReport> {
        self.check_graded_batch(model, std::slice::from_ref(input), query)
            .pop()
    }

    /// Grows every zone to Hamming radius `gamma` (Section III's gradual
    /// enlargement).  Monotone; see [`Zone::enlarge_to`].
    fn enlarge_to(&mut self, gamma: u32) {
        for (c, z) in self.zones.iter_mut().enumerate() {
            if let Some(z) = z {
                // Judged per zone, not against the monitor-level γ: zones
                // assembled via `from_zones` may lag the monitor's γ and
                // still grow here, which must dirty them for republish.
                if gamma > z.gamma() {
                    self.dirty[c] = true;
                }
                z.enlarge_to(gamma);
            }
        }
        self.gamma = gamma;
    }
}

/// Serializable form of a BDD-backed monitor: per-class seed-set snapshots
/// plus the configuration needed to re-dilate and re-attach to a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Monitored layer index.
    pub layer: usize,
    /// Hamming budget γ.
    pub gamma: u32,
    /// The neuron subset.
    pub selection: NeuronSelection,
    /// Per-class seed snapshots (`None` = class unmonitored).
    pub zones: Vec<Option<BddSnapshot>>,
}

impl Monitor<BddZone> {
    /// Garbage-collects every zone's BDD manager (see
    /// [`BddZone::compact`]); call once after the final
    /// [`Monitor::enlarge_to`] to minimise the deployed footprint.
    pub fn compact(&mut self) {
        for z in self.zones.iter_mut().flatten() {
            z.compact();
        }
    }

    /// Garbage-collects only the zones marked dirty since the last
    /// [`Monitor::take_dirty`] — the cheap pre-republish compaction of
    /// the online-enrichment loop ([`Monitor::enrich`] leaves dead
    /// intermediate diagrams behind in exactly those managers).  Dirty
    /// flags are left set; publishing consumes them.
    pub fn compact_dirty(&mut self) {
        for (z, &dirty) in self.zones.iter_mut().zip(&self.dirty) {
            if dirty {
                if let Some(z) = z {
                    z.compact();
                }
            }
        }
    }

    /// Captures a deployable snapshot (seed sets + γ + selection).
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            layer: self.layer,
            gamma: self.gamma,
            selection: self.selection.clone(),
            zones: self
                .zones
                .iter()
                .map(|z| z.as_ref().map(|z| z.snapshot().0))
                .collect(),
        }
    }

    /// Restores a monitor from a snapshot, re-dilating each zone to the
    /// recorded γ.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError`] if a zone snapshot is corrupt or its width
    /// differs from the selection width.
    pub fn from_snapshot(snapshot: &MonitorSnapshot) -> Result<Self, MonitorError> {
        let width = snapshot.selection.len();
        let mut zones = Vec::with_capacity(snapshot.zones.len());
        for s in &snapshot.zones {
            match s {
                None => zones.push(None),
                Some(snap) => {
                    if snap.num_vars() != width {
                        return Err(MonitorError::WidthMismatch {
                            expected: snap.num_vars(),
                            actual: width,
                        });
                    }
                    zones.push(Some(BddZone::from_snapshot(snap, snapshot.gamma)?));
                }
            }
        }
        Ok(Monitor::from_zones(
            zones,
            snapshot.layer,
            snapshot.selection.clone(),
            snapshot.gamma,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ExactZone;
    use naps_nn::{mlp, Adam, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_problem() -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 8, 2], &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let s = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            let wiggle = (i as f32 * 0.13).sin() * 0.2;
            xs.push(Tensor::from_vec(vec![2], vec![s + wiggle, s - wiggle]));
            ys.push(i % 2);
        }
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 8,
            verbose: false,
        });
        trainer.fit(&mut net, &xs, &ys, &mut Adam::new(0.05), &mut rng);
        (net, xs, ys)
    }

    fn build_manual<Z: Zone>(
        net: &mut Sequential,
        xs: &[Tensor],
        ys: &[usize],
        gamma: u32,
    ) -> Monitor<Z> {
        let selection = NeuronSelection::all(8);
        let mut zones: Vec<Option<Z>> = (0..2).map(|_| Some(Z::empty(8))).collect();
        let probe = Monitor::<Z>::from_zones(
            (0..2).map(|_| Some(Z::empty(8))).collect(),
            1,
            selection.clone(),
            0,
        );
        for (x, &y) in xs.iter().zip(ys) {
            let (pred, pat) = probe.observe(net, x);
            if pred == y {
                zones[y].as_mut().expect("zone").insert(&pat);
            }
        }
        for z in zones.iter_mut().flatten() {
            z.enlarge_to(gamma);
        }
        Monitor::from_zones(zones, 1, selection, gamma)
    }

    #[test]
    fn training_inputs_are_in_pattern() {
        let (mut net, xs, ys) = two_blob_problem();
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 0);
        // Soundness: every correctly classified training input must be
        // inside its own comfort zone.
        for (x, &y) in xs.iter().zip(&ys) {
            let rep = monitor.check(&mut net, x);
            if rep.predicted == y {
                assert_eq!(rep.verdict, Verdict::InPattern);
                assert_eq!(rep.distance_to_seeds, Some(0));
            }
        }
    }

    #[test]
    fn far_out_input_is_out_of_pattern_or_unfamiliar() {
        let (mut net, xs, ys) = two_blob_problem();
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 0);
        // A wild input far outside both blobs.
        let novelty = Tensor::from_vec(vec![2], vec![30.0, -42.0]);
        let rep = monitor.check(&mut net, &novelty);
        // The verdict depends on the learned geometry, but the report must
        // be well-formed and the distance populated for monitored classes.
        assert!(rep.predicted < 2);
        assert!(rep.distance_to_seeds.is_some());
    }

    #[test]
    fn unmonitored_class_reports_unmonitored() {
        let (mut net, xs, ys) = two_blob_problem();
        let selection = NeuronSelection::all(8);
        // Only class 0 gets a zone.
        let mut zones: Vec<Option<ExactZone>> = vec![Some(ExactZone::empty(8)), None];
        let probe = Monitor::<ExactZone>::from_zones(
            vec![Some(ExactZone::empty(8)), None],
            1,
            selection.clone(),
            0,
        );
        for (x, &y) in xs.iter().zip(&ys) {
            let (pred, pat) = probe.observe(&mut net, x);
            if pred == y && y == 0 {
                zones[0].as_mut().expect("zone").insert(&pat);
            }
        }
        let monitor = Monitor::from_zones(zones, 1, selection, 0);
        assert_eq!(monitor.monitored_classes(), vec![0]);
        let mut saw_unmonitored = false;
        for x in &xs {
            let rep = monitor.check(&mut net, x);
            if rep.predicted == 1 {
                assert_eq!(rep.verdict, Verdict::Unmonitored);
                saw_unmonitored = true;
            }
        }
        assert!(saw_unmonitored, "class 1 never predicted");
    }

    #[test]
    fn enlarge_makes_membership_monotone() {
        let (mut net, xs, ys) = two_blob_problem();
        let mut monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 0);
        let probe = Tensor::from_vec(vec![2], vec![1.4, 0.4]);
        let before = monitor.check(&mut net, &probe);
        monitor.enlarge_to(3);
        let after = monitor.check(&mut net, &probe);
        if before.verdict == Verdict::InPattern {
            assert_eq!(
                after.verdict,
                Verdict::InPattern,
                "enlarging must not evict"
            );
        }
        assert_eq!(monitor.gamma(), 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_verdicts() {
        let (mut net, xs, ys) = two_blob_problem();
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        let snap = monitor.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MonitorSnapshot = serde_json::from_str(&json).expect("deserialize");
        let restored = Monitor::from_snapshot(&back).expect("restore");
        assert_eq!(restored.gamma(), 1);
        for x in xs.iter().take(10) {
            let a = monitor.check(&mut net, x);
            let b = restored.check(&mut net, x);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn merge_combines_shard_monitors() {
        let (mut net, xs, ys) = two_blob_problem();
        // Build one monitor per data shard, then merge.
        let half = xs.len() / 2;
        let mut shard_a: Monitor<BddZone> = build_manual(&mut net, &xs[..half], &ys[..half], 1);
        let shard_b: Monitor<BddZone> = build_manual(&mut net, &xs[half..], &ys[half..], 1);
        let whole: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        shard_a.merge(&shard_b);
        // The merged monitor agrees with the monitor built on all data.
        for x in &xs {
            let a = shard_a.check(&mut net, x);
            let w = whole.check(&mut net, x);
            assert_eq!(a.verdict, w.verdict);
            assert_eq!(a.distance_to_seeds, w.distance_to_seeds);
        }
        let merged_seeds: usize = shard_a.seed_counts().iter().flatten().sum();
        let whole_seeds: usize = whole.seed_counts().iter().flatten().sum();
        assert_eq!(merged_seeds, whole_seeds);
    }

    #[test]
    fn enrich_admits_confirmed_patterns_post_enlargement() {
        let (mut net, xs, ys) = two_blob_problem();
        let mut monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        assert!(monitor.dirty_classes().is_empty());

        // Find an out-of-pattern probe: flip bits of an observed pattern
        // until the zone rejects it.
        let (class, pattern) = monitor.observe(&mut net, &xs[0]);
        let mut bits = pattern.to_bools();
        let mut confirmed = None;
        for k in 0..bits.len() {
            bits[k] = !bits[k];
            let cand = Pattern::from_bools(&bits);
            if monitor.check_pattern(class, &cand) == Verdict::OutOfPattern {
                confirmed = Some(cand);
                break;
            }
        }
        let confirmed = confirmed.expect("some 1-to-k flip leaves the zone");

        // The operator confirms it benign: enrich and re-check.
        let fresh = monitor
            .enrich(class, std::slice::from_ref(&confirmed))
            .expect("monitored class");
        assert_eq!(fresh, 1);
        assert_eq!(monitor.check_pattern(class, &confirmed), Verdict::InPattern);
        // Distance-to-seeds now sees it as a seed.
        assert_eq!(
            monitor.zone(class).unwrap().distance_to_seeds(&confirmed),
            Some(0)
        );
        // Dirty tracking: exactly that class, consumed by take_dirty.
        assert_eq!(monitor.dirty_classes(), vec![class]);
        assert_eq!(monitor.take_dirty(), vec![class]);
        assert!(monitor.dirty_classes().is_empty());

        // Re-enriching with a known seed is a no-op and stays clean.
        let fresh = monitor
            .enrich(class, std::slice::from_ref(&confirmed))
            .expect("monitored class");
        assert_eq!(fresh, 0);
        assert!(monitor.dirty_classes().is_empty());
    }

    #[test]
    fn enrich_rejects_bad_targets_without_side_effects() {
        let (mut net, xs, ys) = two_blob_problem();
        let mut monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        let pat = Pattern::zeros(8);
        assert_eq!(
            monitor.enrich(7, std::slice::from_ref(&pat)),
            Err(MonitorError::UnmonitoredClass { class: 7 })
        );
        let narrow = Pattern::zeros(3);
        assert_eq!(
            monitor.enrich(0, std::slice::from_ref(&narrow)),
            Err(MonitorError::WidthMismatch {
                expected: 8,
                actual: 3
            })
        );
        assert!(monitor.dirty_classes().is_empty());
    }

    #[test]
    fn compact_dirty_preserves_enriched_semantics() {
        let (mut net, xs, ys) = two_blob_problem();
        let mut monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        let (class, pattern) = monitor.observe(&mut net, &xs[0]);
        let mut bits = pattern.to_bools();
        for b in bits.iter_mut() {
            *b = !*b;
        }
        let far = Pattern::from_bools(&bits);
        monitor.enrich(class, std::slice::from_ref(&far)).unwrap();
        let before: Vec<_> = xs.iter().map(|x| monitor.check(&mut net, x)).collect();
        monitor.compact_dirty();
        // Flags survive compaction (publishing consumes them, not GC)...
        assert_eq!(monitor.dirty_classes(), vec![class]);
        // ...and verdicts are untouched.
        for (x, want) in xs.iter().zip(&before) {
            assert_eq!(&monitor.check(&mut net, x), want);
        }
        assert_eq!(monitor.check_pattern(class, &far), Verdict::InPattern);
    }

    #[test]
    fn enlarge_and_merge_mark_dirty() {
        let (mut net, xs, ys) = two_blob_problem();
        let mut monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        monitor.enlarge_to(2);
        assert_eq!(monitor.take_dirty(), vec![0, 1]);
        // Re-requesting the same gamma changes nothing.
        monitor.enlarge_to(2);
        assert!(monitor.dirty_classes().is_empty());
        let other: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 2);
        monitor.merge(&other);
        assert_eq!(monitor.dirty_classes(), vec![0, 1]);
    }

    #[test]
    fn enlarge_dirties_zones_lagging_the_monitor_gamma() {
        // from_zones does not force zone gamma == the monitor gamma
        // argument; enlarging must dirty any zone that actually grows,
        // judged per zone.
        let zones: Vec<Option<BddZone>> = (0..2)
            .map(|c| {
                let mut z = BddZone::empty(4);
                z.insert(&p(&[c, 0, c, 0]));
                Some(z) // per-zone gamma stays 0
            })
            .collect();
        let mut monitor = Monitor::from_zones(zones, 1, NeuronSelection::all(4), 1);
        assert_eq!(monitor.gamma(), 1);
        monitor.enlarge_to(1); // no-op at monitor level, but zones grow 0 -> 1
        assert_eq!(monitor.take_dirty(), vec![0, 1]);
    }

    fn p(bits: &[u8]) -> Pattern {
        Pattern::from_bools(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn graded_report_embeds_the_binary_report() {
        use crate::graded::{GradedQuery, Triage};
        let (mut net, xs, ys) = two_blob_problem();
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        let query = GradedQuery::new(3, 2);
        let binary = monitor.check_batch(&mut net, &xs);
        let graded = monitor.check_graded_batch(&mut net, &xs, query);
        for (b, g) in binary.iter().zip(&graded) {
            assert_eq!(&g.report, b, "graded must embed the binary verdict");
            match b.verdict {
                Verdict::InPattern => {
                    assert_eq!(g.distance_to_zone, Some(0));
                    assert_eq!(g.triage, Triage::InPattern);
                }
                Verdict::OutOfPattern => {
                    assert_ne!(g.distance_to_zone, Some(0));
                    assert_ne!(g.triage, Triage::InPattern);
                }
                Verdict::Unmonitored => assert_eq!(g.triage, Triage::Unmonitored),
            }
            // The ranking never includes the predicted class and is
            // sorted ascending within the budget.
            assert!(g.nearest.iter().all(|n| n.class != b.predicted));
            assert!(g.nearest.windows(2).all(|w| w[0].distance <= w[1].distance));
            assert!(g.nearest.iter().all(|n| n.distance <= query.budget));
            assert!(g.nearest.len() <= query.top_k);
        }
        // The trait method agrees with the batched path.
        use crate::activation::ActivationMonitor as _;
        let via_trait = monitor
            .check_graded(&mut net, &xs[0], query)
            .expect("Monitor grades");
        assert_eq!(via_trait, graded[0]);
    }

    #[test]
    fn graded_zone_distance_matches_seed_distance_minus_gamma() {
        use crate::graded::GradedQuery;
        let (mut net, xs, ys) = two_blob_problem();
        let gamma = 1;
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, gamma);
        for x in &xs {
            let (predicted, pattern) = monitor.observe(&mut net, x);
            let g = monitor.check_graded_pattern(predicted, &pattern, GradedQuery::new(8, 2));
            if let (Some(dz), Some(ds)) = (g.distance_to_zone, g.report.distance_to_seeds) {
                assert_eq!(dz, ds.saturating_sub(gamma), "ball-union geometry");
            }
        }
    }

    #[test]
    fn misclassification_candidate_when_pattern_sits_in_another_zone() {
        use crate::graded::{GradedQuery, Triage};
        // Hand-built zones: class 0 owns {0000}, class 1 owns {1100}.
        let mut z0 = BddZone::empty(4);
        z0.insert(&p(&[0, 0, 0, 0]));
        let mut z1 = BddZone::empty(4);
        z1.insert(&p(&[1, 1, 0, 0]));
        let monitor = Monitor::from_zones(vec![Some(z0), Some(z1)], 1, NeuronSelection::all(4), 0);
        // Predicted class 0, but the observed pattern is class 1's seed.
        let g = monitor.check_graded_pattern(0, &p(&[1, 1, 0, 0]), GradedQuery::new(2, 3));
        assert_eq!(g.report.verdict, Verdict::OutOfPattern);
        assert_eq!(g.triage, Triage::MisclassificationCandidate);
        assert_eq!(
            g.nearest,
            vec![crate::NearestZone {
                class: 1,
                distance: 0
            }]
        );
        assert_eq!(g.distance_to_zone, Some(2));
        // A pattern beyond the budget from both zones is a novelty.
        let g = monitor.check_graded_pattern(0, &p(&[1, 1, 1, 1]), GradedQuery::new(1, 3));
        assert_eq!(g.triage, Triage::Novelty);
        assert_eq!(g.distance_to_zone, None);
        assert!(g.nearest.is_empty());
    }

    #[test]
    fn check_batch_matches_single_checks() {
        let (mut net, xs, ys) = two_blob_problem();
        let monitor: Monitor<BddZone> = build_manual(&mut net, &xs, &ys, 1);
        let batch_reports = monitor.check_batch(&mut net, &xs[..8]);
        for (x, want) in xs[..8].iter().zip(&batch_reports) {
            let got = monitor.check(&mut net, x);
            assert_eq!(&got, want);
        }
        assert!(monitor.check_batch(&mut net, &[]).is_empty());
    }
}
