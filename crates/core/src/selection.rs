//! Monitored-neuron selection (Section II, "neuron selection via gradient
//! analysis").
//!
//! BDDs have a practical variable budget of a few hundred, so wide layers
//! are monitored only on the neurons whose gradient `|∂n_c/∂n_i|` toward
//! the decision output is large; unmonitored neurons may take arbitrary
//! values in the abstraction.

use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};

/// The subset of a layer's neurons a monitor watches.
///
/// Indices are kept sorted and deduplicated; pattern bit `j` corresponds to
/// layer neuron `indices[j]`.
///
/// # Example
///
/// ```
/// use naps_core::NeuronSelection;
///
/// // Monitor the top 25% most salient of 8 neurons (paper: 25% of 84).
/// let saliency = [0.1, 5.0, 0.2, 3.0, 0.0, 0.0, 1.0, 0.4];
/// let sel = NeuronSelection::top_fraction_by_saliency(&saliency, 0.25);
/// assert_eq!(sel.indices(), &[1, 3]);
/// let p = sel.pattern_from(&[0.0, 2.0, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0]);
/// assert_eq!(p.to_string(), "10");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeuronSelection {
    indices: Vec<usize>,
    layer_width: usize,
}

impl NeuronSelection {
    /// Monitors every neuron of a `width`-neuron layer.
    pub fn all(width: usize) -> Self {
        NeuronSelection {
            indices: (0..width).collect(),
            layer_width: width,
        }
    }

    /// Monitors an explicit neuron subset of a `layer_width`-neuron layer.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is `>= layer_width`.
    pub fn from_indices(mut indices: Vec<usize>, layer_width: usize) -> Self {
        assert!(
            !indices.is_empty(),
            "selection must monitor at least one neuron"
        );
        indices.sort_unstable();
        indices.dedup();
        assert!(
            indices.last().is_none_or(|&i| i < layer_width),
            "neuron index out of range for layer width {layer_width}"
        );
        NeuronSelection {
            indices,
            layer_width,
        }
    }

    /// Monitors the top `fraction` of neurons ranked by `saliency`
    /// (`|∂n_c/∂n_i|` from [`naps_nn::saliency_from_output_weights`] or
    /// [`naps_nn::saliency_by_backward`]).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or `saliency` is empty.
    pub fn top_fraction_by_saliency(saliency: &[f32], fraction: f64) -> Self {
        let indices = naps_nn::top_k_fraction(saliency, fraction);
        NeuronSelection {
            indices,
            layer_width: saliency.len(),
        }
    }

    /// Monitors the top `fraction` of neurons ranked by an arbitrary
    /// per-neuron score — e.g. activation variance over the training set,
    /// the alternative selection criterion the `selection` ablation
    /// compares against gradient saliency.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or `scores` is empty.
    pub fn top_fraction_by_score(scores: &[f32], fraction: f64) -> Self {
        let indices = naps_nn::top_k_fraction(scores, fraction);
        NeuronSelection {
            indices,
            layer_width: scores.len(),
        }
    }

    /// Monitors a uniformly random `fraction` of a `width`-neuron layer —
    /// the no-information baseline for selection ablations.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or `width` is zero.
    pub fn random_fraction(width: usize, fraction: f64, rng: &mut impl rand::Rng) -> Self {
        assert!(width > 0, "layer width must be positive");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        use rand::seq::SliceRandom;
        let k = ((width as f64 * fraction).round() as usize).clamp(1, width);
        let mut all: Vec<usize> = (0..width).collect();
        all.shuffle(rng);
        all.truncate(k);
        NeuronSelection::from_indices(all, width)
    }

    /// The monitored neuron indices, sorted ascending.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of monitored neurons (= pattern width).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `false`: a selection always monitors at least one neuron.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Width of the underlying layer.
    pub fn layer_width(&self) -> usize {
        self.layer_width
    }

    /// Projects raw layer activations onto the monitored subset and
    /// binarises (Definition 1 restricted to the selection).
    ///
    /// # Panics
    ///
    /// Panics if `activations.len() != layer_width`.
    pub fn pattern_from(&self, activations: &[f32]) -> Pattern {
        assert_eq!(
            activations.len(),
            self.layer_width,
            "activation width does not match selection's layer width"
        );
        Pattern::from_selected_activations(activations, &self.indices)
    }

    /// In-place counterpart of [`NeuronSelection::pattern_from`]: refills
    /// `out` from `activations`, reusing its word buffer when the width
    /// already matches (allocation-free on the steady-state serving path).
    ///
    /// # Panics
    ///
    /// Panics if `activations.len() != layer_width`.
    pub fn pattern_into(&self, activations: &[f32], out: &mut Pattern) {
        assert_eq!(
            activations.len(),
            self.layer_width,
            "activation width does not match selection's layer width"
        );
        out.refill_from_selected_activations(activations, &self.indices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_monitors_everything() {
        let s = NeuronSelection::all(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.indices(), &[0, 1, 2, 3]);
        let p = s.pattern_from(&[1.0, -1.0, 0.0, 2.0]);
        assert_eq!(p.to_string(), "1001");
    }

    #[test]
    fn from_indices_sorts_and_dedups() {
        let s = NeuronSelection::from_indices(vec![3, 1, 3], 5);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.layer_width(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = NeuronSelection::from_indices(vec![5], 5);
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn empty_selection_panics() {
        let _ = NeuronSelection::from_indices(vec![], 5);
    }

    #[test]
    fn quarter_of_84_is_21() {
        // The paper's GTSRB configuration: 25% of 84 neurons.
        let saliency: Vec<f32> = (0..84).map(|i| i as f32).collect();
        let s = NeuronSelection::top_fraction_by_saliency(&saliency, 0.25);
        assert_eq!(s.len(), 21);
        // The most salient are the last 21 indices.
        assert_eq!(s.indices()[0], 63);
    }

    #[test]
    fn score_selection_matches_saliency_ranking() {
        let scores: Vec<f32> = vec![0.1, 5.0, 0.2, 3.0];
        let by_score = NeuronSelection::top_fraction_by_score(&scores, 0.5);
        let by_saliency = NeuronSelection::top_fraction_by_saliency(&scores, 0.5);
        assert_eq!(by_score, by_saliency);
        assert_eq!(by_score.indices(), &[1, 3]);
    }

    #[test]
    fn random_selection_has_requested_size_and_valid_indices() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let s = NeuronSelection::random_fraction(84, 0.25, &mut rng);
        assert_eq!(s.len(), 21);
        assert!(s.indices().iter().all(|&i| i < 84));
        assert_eq!(s.layer_width(), 84);
        // Different draws differ (with overwhelming probability).
        let t = NeuronSelection::random_fraction(84, 0.25, &mut rng);
        assert_ne!(s, t);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn random_selection_rejects_bad_fraction() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let _ = NeuronSelection::random_fraction(8, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "activation width")]
    fn pattern_from_checks_width() {
        let s = NeuronSelection::all(3);
        let _ = s.pattern_from(&[1.0]);
    }

    #[test]
    fn pattern_into_matches_pattern_from() {
        let s = NeuronSelection::from_indices(vec![0, 2, 3], 4);
        let acts = [[1.0f32, -1.0, 0.0, 2.0], [-1.0, 3.0, 1.0, 0.0]];
        // A reused (and initially wrong-width) pattern must converge to
        // the same bits as the allocating path on every refill.
        let mut out = Pattern::zeros(1);
        for a in &acts {
            s.pattern_into(a, &mut out);
            assert_eq!(out, s.pattern_from(a));
        }
    }
}
