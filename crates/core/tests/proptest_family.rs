//! Property suites for the whole `ActivationMonitor` family.
//!
//! The trait contract says `check_batch` must be equivalent to mapping
//! `check` over the inputs — the property every batched fast path
//! (shared forward pass, packed frames, and `naps-serve`'s parallel
//! engine) silently depends on.  These tests pin it for **every**
//! implementor on random inputs and random zone contents, alongside
//! `Pattern` bit-accessor round-trips and the compile-time `Send + Sync`
//! audit of the family.

use naps_core::{
    ActivationMonitor, BddZone, CombinePolicy, ExactZone, GridMonitor, LayeredMonitor, Monitor,
    MonitorBuilder, NeuronSelection, NumericDomain, Pattern, RefinedMonitor, Zone,
};
use naps_nn::{mlp, Sequential};
use naps_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const IN_DIM: usize = 4;
const CLASSES: usize = 3;

/// A random flat input vector.
fn input() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, IN_DIM)
}

/// A random batch of inputs (possibly empty — the contract covers that
/// edge too).
fn batch() -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(input(), 0..10)
}

/// Training-shaped data: a few labelled inputs to seed the zones with.
fn labelled() -> impl Strategy<Value = Vec<(Vec<f32>, usize)>> {
    proptest::collection::vec((input(), 0usize..CLASSES), 4..16)
}

fn tensors(rows: &[Vec<f32>]) -> Vec<Tensor> {
    rows.iter()
        .map(|r| Tensor::from_vec(vec![r.len()], r.clone()))
        .collect()
}

/// A deterministic (untrained) network — determinism, not accuracy, is
/// what the equivalence property needs.
fn net(seed: u64, dims: &[usize]) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    mlp(dims, &mut rng)
}

fn build_monitor<Z: Zone>(
    seed: u64,
    layer: usize,
    data: &[(Vec<f32>, usize)],
    gamma: u32,
) -> (Monitor<Z>, Sequential) {
    let mut model = net(seed, &[IN_DIM, 8, 6, CLASSES]);
    let xs = tensors(&data.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>());
    let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
    let monitor = MonitorBuilder::new(layer, gamma).build::<Z>(&mut model, &xs, &ys, CLASSES);
    (monitor, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Monitor::check_batch` ≡ element-wise `Monitor::check`, for both
    /// zone backends.
    #[test]
    fn monitor_batch_equals_elementwise(
        seed in 0u64..1_000,
        data in labelled(),
        probes in batch(),
        gamma in 0u32..3,
    ) {
        let probes = tensors(&probes);
        {
            let (m, mut model) = build_monitor::<BddZone>(seed, 1, &data, gamma);
            let batched = m.check_batch(&mut model, &probes);
            prop_assert_eq!(batched.len(), probes.len());
            for (x, want) in probes.iter().zip(&batched) {
                prop_assert_eq!(&m.check(&mut model, x), want);
            }
        }
        {
            let (m, mut model) = build_monitor::<ExactZone>(seed, 1, &data, gamma);
            let batched = m.check_batch(&mut model, &probes);
            for (x, want) in probes.iter().zip(&batched) {
                prop_assert_eq!(&m.check(&mut model, x), want);
            }
        }
    }

    /// `LayeredMonitor::check_batch` ≡ element-wise `check` across every
    /// combine policy.
    #[test]
    fn layered_batch_equals_elementwise(
        seed in 0u64..1_000,
        data in labelled(),
        probes in batch(),
        policy_idx in 0usize..3,
    ) {
        let policy = [CombinePolicy::Any, CombinePolicy::All, CombinePolicy::Majority][policy_idx];
        let (shallow, _) = build_monitor::<ExactZone>(seed, 1, &data, 1);
        let (deep, mut model) = build_monitor::<ExactZone>(seed, 3, &data, 1);
        let joint = LayeredMonitor::new(vec![shallow, deep], policy);
        let probes = tensors(&probes);
        let batched = joint.check_batch(&mut model, &probes);
        prop_assert_eq!(batched.len(), probes.len());
        for (x, want) in probes.iter().zip(&batched) {
            prop_assert_eq!(&joint.check(&mut model, x), want);
        }
    }

    /// `RefinedMonitor::check_batch` ≡ element-wise `check` in both
    /// numeric domains.
    #[test]
    fn refined_batch_equals_elementwise(
        seed in 0u64..1_000,
        data in labelled(),
        probes in batch(),
        domain_idx in 0usize..2,
    ) {
        let domain = [NumericDomain::Box, NumericDomain::Dbm][domain_idx];
        let mut model = net(seed, &[IN_DIM, 8, 6, CLASSES]);
        let xs = tensors(&data.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>());
        let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
        let refined: RefinedMonitor<ExactZone> = MonitorBuilder::new(1, 1)
            .build_refined(&mut model, &xs, &ys, CLASSES, domain);
        let probes = tensors(&probes);
        let batched = refined.check_batch(&mut model, &probes);
        prop_assert_eq!(batched.len(), probes.len());
        for (x, want) in probes.iter().zip(&batched) {
            prop_assert_eq!(&refined.check(&mut model, x), want);
        }
    }

    /// `GridMonitor::check_batch` ≡ element-wise `check` on random packed
    /// frames.
    #[test]
    fn grid_batch_equals_elementwise(
        seed in 0u64..1_000,
        data in labelled(),
        frames in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 2 * IN_DIM), 0..5),
    ) {
        // A 1x2 grid sharing one head: each frame packs two cell inputs.
        let mut model = net(seed, &[IN_DIM, 8, 6, CLASSES]);
        let builder = MonitorBuilder::new(1, 1);
        let xs = tensors(&data.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>());
        let ys: Vec<usize> = data.iter().map(|(_, y)| *y).collect();
        let per_cell = vec![(xs.clone(), ys.clone()), (xs, ys)];
        let grid: GridMonitor<ExactZone> =
            GridMonitor::build(1, 2, &builder, &mut model, &per_cell, CLASSES);
        let frames = tensors(&frames);
        let batched = grid.check_batch(&mut model, &frames);
        prop_assert_eq!(batched.len(), frames.len());
        for (x, want) in frames.iter().zip(&batched) {
            prop_assert_eq!(&grid.check(&mut model, x), want);
        }
    }

    /// `Pattern` round-trips through `from_bools` and the bit accessors:
    /// `get` reproduces the source bits, `set` is idempotent re-writing,
    /// and `to_bools`/`count_ones` stay consistent.
    #[test]
    fn pattern_bit_accessors_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let p = Pattern::from_bools(&bits);
        prop_assert_eq!(p.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(p.get(i), b, "bit {}", i);
        }
        prop_assert_eq!(p.to_bools(), bits.clone());
        prop_assert_eq!(p.count_ones() as usize, bits.iter().filter(|&&b| b).count());
        // Rebuilding through set() reproduces the same pattern, and
        // flipping a bit changes exactly that bit.
        let mut q = Pattern::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            q.set(i, b);
        }
        prop_assert_eq!(&q, &p);
        let flip = bits.len() / 2;
        q.set(flip, !bits[flip]);
        prop_assert_eq!(p.hamming(&q), 1);
        q.set(flip, bits[flip]);
        prop_assert_eq!(&q, &p);
    }
}

/// Compile-time audit: the whole monitor family is `Send + Sync`, so a
/// monitor behind an `Arc` may be queried from any number of threads —
/// the invariant `naps-serve` builds on.
#[test]
fn monitor_family_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pattern>();
    assert_send_sync::<NeuronSelection>();
    assert_send_sync::<BddZone>();
    assert_send_sync::<ExactZone>();
    assert_send_sync::<Monitor<BddZone>>();
    assert_send_sync::<Monitor<ExactZone>>();
    assert_send_sync::<LayeredMonitor<BddZone>>();
    assert_send_sync::<RefinedMonitor<BddZone>>();
    assert_send_sync::<GridMonitor<BddZone>>();
    assert_send_sync::<naps_core::DriftDetector>();
}
