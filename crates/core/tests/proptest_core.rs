//! Property-based tests for the monitor core: backend equivalence,
//! soundness, monotonicity and pattern invariants over random data.

use naps_core::{BddZone, ExactZone, Pattern, Zone};
use proptest::prelude::*;

const WIDTH: usize = 10;

fn pattern() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), WIDTH)
}

fn pattern_set() -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(pattern(), 1..12)
}

fn hamming(a: &[bool], b: &[bool]) -> u32 {
    a.iter().zip(b).map(|(x, y)| u32::from(x != y)).sum()
}

fn build<Z: Zone>(seeds: &[Vec<bool>], gamma: u32) -> Z {
    let mut z = Z::empty(WIDTH);
    for s in seeds {
        z.insert(&Pattern::from_bools(s));
    }
    z.enlarge_to(gamma);
    z
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every inserted pattern is a member at every γ.
    #[test]
    fn zones_never_forget_seeds(seeds in pattern_set(), gamma in 0u32..3) {
        let bdd: BddZone = build(&seeds, gamma);
        let exact: ExactZone = build(&seeds, gamma);
        for s in &seeds {
            let p = Pattern::from_bools(s);
            prop_assert!(bdd.contains(&p));
            prop_assert!(exact.contains(&p));
        }
    }

    /// The two backends implement the same set semantics.
    #[test]
    fn backends_agree(seeds in pattern_set(), probe in pattern(), gamma in 0u32..3) {
        let bdd: BddZone = build(&seeds, gamma);
        let exact: ExactZone = build(&seeds, gamma);
        let p = Pattern::from_bools(&probe);
        prop_assert_eq!(bdd.contains(&p), exact.contains(&p));
        prop_assert_eq!(bdd.distance_to_seeds(&p), exact.distance_to_seeds(&p));
        prop_assert_eq!(bdd.seed_count(), exact.seed_count());
    }

    /// Membership is exactly "within γ of some seed".
    #[test]
    fn membership_is_gamma_ball(seeds in pattern_set(), probe in pattern(), gamma in 0u32..4) {
        let zone: BddZone = build(&seeds, gamma);
        let p = Pattern::from_bools(&probe);
        let min_dist = seeds.iter().map(|s| hamming(s, &probe)).min().unwrap();
        prop_assert_eq!(zone.contains(&p), min_dist <= gamma,
            "distance {} vs gamma {}", min_dist, gamma);
    }

    /// distance_to_seeds is the true minimum Hamming distance.
    #[test]
    fn distance_is_exact(seeds in pattern_set(), probe in pattern()) {
        let zone: BddZone = build(&seeds, 0);
        let p = Pattern::from_bools(&probe);
        let expect = seeds.iter().map(|s| hamming(s, &probe)).min().unwrap();
        prop_assert_eq!(zone.distance_to_seeds(&p), Some(expect));
    }

    /// Monotonicity: γ-membership is monotone in γ.
    #[test]
    fn enlarge_is_monotone(seeds in pattern_set(), probe in pattern()) {
        let p = Pattern::from_bools(&probe);
        let mut was_member = false;
        let mut zone: BddZone = build(&seeds, 0);
        for gamma in 0..4u32 {
            zone.enlarge_to(gamma);
            let now = zone.contains(&p);
            prop_assert!(!was_member || now, "membership lost at gamma {}", gamma);
            was_member = now;
        }
    }

    /// Incremental dilation equals one-shot dilation.
    #[test]
    fn incremental_equals_oneshot(seeds in pattern_set(), probe in pattern()) {
        let p = Pattern::from_bools(&probe);
        let mut incremental: BddZone = build(&seeds, 0);
        incremental.enlarge_to(1);
        incremental.enlarge_to(2);
        let oneshot: BddZone = build(&seeds, 2);
        prop_assert_eq!(incremental.contains(&p), oneshot.contains(&p));
    }

    /// Pattern bit-packing round-trips through bools and preserves
    /// Hamming arithmetic.
    #[test]
    fn pattern_roundtrip_and_hamming(a in pattern(), b in pattern()) {
        let pa = Pattern::from_bools(&a);
        let pb = Pattern::from_bools(&b);
        prop_assert_eq!(pa.to_bools(), a.clone());
        prop_assert_eq!(pa.hamming(&pb), hamming(&a, &b));
        prop_assert_eq!(pa.hamming(&pb), pb.hamming(&pa));
        // Triangle inequality against a third point.
        let zero = Pattern::zeros(WIDTH);
        prop_assert!(pa.hamming(&pb) <= pa.hamming(&zero) + zero.hamming(&pb));
    }

    /// Selection projection: selected pattern bits equal the projected
    /// full-pattern bits.
    #[test]
    fn selection_projects_consistently(values in proptest::collection::vec(-1.0f32..1.0, 16)) {
        use naps_core::NeuronSelection;
        let sel = NeuronSelection::from_indices(vec![0, 3, 7, 15], 16);
        let projected = sel.pattern_from(&values);
        let full = Pattern::from_activations(&values);
        for (j, &i) in sel.indices().iter().enumerate() {
            prop_assert_eq!(projected.get(j), full.get(i));
        }
    }

    /// BddZone snapshots round-trip membership at arbitrary γ.
    #[test]
    fn zone_snapshot_roundtrip(seeds in pattern_set(), probe in pattern(), gamma in 0u32..3) {
        let zone: BddZone = build(&seeds, gamma);
        let (snap, g) = zone.snapshot();
        let restored = BddZone::from_snapshot(&snap, g).expect("restore");
        let p = Pattern::from_bools(&probe);
        prop_assert_eq!(zone.contains(&p), restored.contains(&p));
        prop_assert_eq!(zone.seed_count(), restored.seed_count());
    }
}

/// A small batch of activation vectors over a fixed width.
fn activation_set(width: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-4.0f32..4.0, width), 1..10)
}

proptest! {
    /// DBM soundness: every inserted activation vector stays a member.
    #[test]
    fn dbm_contains_its_samples(samples in activation_set(5)) {
        use naps_core::DbmZone;
        let mut z = DbmZone::empty(5);
        for s in &samples {
            z.insert(s);
        }
        for s in &samples {
            prop_assert!(z.contains(s, 0.0));
            prop_assert_eq!(z.violation(s), Some(0.0));
        }
    }

    /// The DBM refines the box: it never accepts what the interval
    /// envelope rejects, given identical training data.
    #[test]
    fn dbm_refines_interval(samples in activation_set(4), probe in proptest::collection::vec(-6.0f32..6.0, 4)) {
        use naps_core::{DbmZone, IntervalZone};
        let mut dbm = DbmZone::empty(4);
        let mut boxz = IntervalZone::empty(4);
        for s in &samples {
            dbm.insert(s);
            boxz.insert(s);
        }
        if dbm.contains(&probe, 0.0) {
            prop_assert!(boxz.contains(&probe, 0.0));
        }
        // And the violation measures agree on direction.
        let dv = dbm.violation(&probe).expect("non-empty");
        let bv = boxz.violation(&probe).expect("non-empty");
        prop_assert!(dv + 1e-4 >= bv, "dbm violation {} below box violation {}", dv, bv);
    }

    /// The DBM violation is the minimal admitting slack.
    #[test]
    fn dbm_violation_is_minimal_slack(samples in activation_set(3), probe in proptest::collection::vec(-6.0f32..6.0, 3)) {
        use naps_core::DbmZone;
        let mut z = DbmZone::empty(3);
        for s in &samples {
            z.insert(s);
        }
        let v = z.violation(&probe).expect("non-empty");
        prop_assert!(z.contains(&probe, v + 1e-3));
        if v > 1e-3 {
            prop_assert!(!z.contains(&probe, v - 1e-3));
        }
    }

    /// Insertion order does not matter (the join is commutative and
    /// associative).
    #[test]
    fn dbm_insert_order_is_irrelevant(samples in activation_set(4)) {
        use naps_core::DbmZone;
        let mut fwd = DbmZone::empty(4);
        let mut rev = DbmZone::empty(4);
        for s in &samples {
            fwd.insert(s);
        }
        for s in samples.iter().rev() {
            rev.insert(s);
        }
        prop_assert!(fwd.includes(&rev) && rev.includes(&fwd));
    }

    /// Sharded join equals single-shot construction.
    #[test]
    fn dbm_join_equals_bulk_insert(a in activation_set(4), b in activation_set(4)) {
        use naps_core::DbmZone;
        let mut left = DbmZone::empty(4);
        for s in &a {
            left.insert(s);
        }
        let mut right = DbmZone::empty(4);
        for s in &b {
            right.insert(s);
        }
        left.join(&right);
        let mut bulk = DbmZone::empty(4);
        for s in a.iter().chain(&b) {
            bulk.insert(s);
        }
        prop_assert!(left.includes(&bulk) && bulk.includes(&left));
    }

    /// The windowed drift rate equals the brute-force rate over the last
    /// `window` monitored observations.
    #[test]
    fn drift_windowed_rate_matches_bruteforce(hits in proptest::collection::vec(any::<bool>(), 1..120)) {
        use naps_core::{DriftConfig, DriftDetector, Verdict};
        let window = 16;
        let mut det = DriftDetector::new(DriftConfig {
            baseline_rate: 0.01,
            alarm_rate: 0.5,
            window,
            ewma_alpha: 0.1,
            patience: 4,
        });
        for &h in &hits {
            det.observe(if h { Verdict::OutOfPattern } else { Verdict::InPattern });
        }
        let tail: Vec<&bool> = hits.iter().rev().take(window).collect();
        let expect = tail.iter().filter(|&&&h| h).count() as f64 / tail.len() as f64;
        prop_assert!((det.windowed_rate() - expect).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&det.ewma_rate()));
        prop_assert_eq!(det.observed(), hits.len());
    }

    /// Ordering heuristics always emit permutations, and measuring a zone
    /// under them reports a positive size for non-empty zones.
    #[test]
    fn ordering_outputs_are_valid_permutations(seeds in pattern_set()) {
        use naps_core::order_by_bias;
        let pats: Vec<Pattern> = seeds.iter().map(|s| Pattern::from_bools(s)).collect();
        let perm = order_by_bias(&pats);
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        let zone: BddZone = build(&seeds, 1);
        prop_assert!(zone.node_count_under(&perm) > 0);
    }

    /// Layered-monitor policy algebra: Any ≥ Majority ≥ All in warning
    /// frequency, on arbitrary verdict vectors.
    #[test]
    fn policy_order_on_random_verdicts(raw in proptest::collection::vec(0u8..3, 1..9)) {
        use naps_core::{CombinePolicy, Verdict};
        let verdicts: Vec<Verdict> = raw
            .iter()
            .map(|&v| match v {
                0 => Verdict::InPattern,
                1 => Verdict::OutOfPattern,
                _ => Verdict::Unmonitored,
            })
            .collect();
        let warn = |p: CombinePolicy| p.combine(&verdicts) == Verdict::OutOfPattern;
        if warn(CombinePolicy::All) {
            prop_assert!(warn(CombinePolicy::Majority));
        }
        if warn(CombinePolicy::Majority) {
            prop_assert!(warn(CombinePolicy::Any));
        }
        // Unmonitored propagates only when every verdict abstains.
        let all_abstain = verdicts.iter().all(|v| *v == Verdict::Unmonitored);
        for p in [CombinePolicy::Any, CombinePolicy::All, CombinePolicy::Majority] {
            prop_assert_eq!(p.combine(&verdicts) == Verdict::Unmonitored, all_abstain);
        }
    }
}
