//! Steady-state allocation regression test for the prepared observer.
//!
//! Installs a counting global allocator (each integration test is its
//! own binary, so the allocator is private to this test) and asserts
//! that a warmed [`PreparedObserver`] performs **zero** heap
//! allocations across many consecutive micro-batches — the invariant
//! the `forward` eval gates end to end and the `hot_path_alloc`
//! analyzer rule guards textually.

use naps_core::batch::ObservationPlan;
use naps_core::prepared::PreparedObserver;
use naps_core::NeuronSelection;
use naps_nn::{Dense, Layer, ModelSnapshot, Relu, Sequential};
use naps_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation event while delegating to [`System`].
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the System allocator,
// which upholds the GlobalAlloc contract; the counter is a Relaxed
// atomic add with no other side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: counting wrapper around System::alloc; the caller's contract is forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: relaxed — monotone event counter, read while the
        // measured region is single-threaded.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: direct delegation to System::dealloc; the caller's contract is forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching alloc on System.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: counting wrapper around System::realloc; the caller's contract is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ordering: relaxed — monotone event counter (see alloc).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as our own caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: counting wrapper around System::alloc_zeroed; the caller's contract is forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ordering: relaxed — monotone event counter (see alloc).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A deterministic MLP built from explicit parts — no RNG, no training,
/// so the test allocates nothing surprising while constructing it.
fn model() -> Sequential {
    let dense = |inw: usize, outw: usize, seed: f32| {
        Dense::from_parts(
            Tensor::from_vec(
                vec![inw, outw],
                (0..inw * outw)
                    .map(|i| ((i as f32 + seed) * 0.37).sin())
                    .collect(),
            ),
            Tensor::from_vec(
                vec![outw],
                (0..outw)
                    .map(|i| ((i as f32 + seed) * 0.19).cos())
                    .collect(),
            ),
        )
    };
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(dense(6, 16, 0.0)),
        Box::new(Relu::new()),
        Box::new(dense(16, 8, 5.0)),
        Box::new(Relu::new()),
        Box::new(dense(8, 3, 2.0)),
    ];
    Sequential::new(layers)
}

fn probes(n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|p| {
            Tensor::from_vec(
                vec![6],
                (0..6).map(|i| ((p * 6 + i) as f32 * 0.23).sin()).collect(),
            )
        })
        .collect()
}

#[test]
fn warmed_observer_allocates_nothing_in_steady_state() {
    let snapshot = ModelSnapshot::capture(&model()).expect("MLP captures");
    let plan = ObservationPlan::new(vec![1, 3]);
    let prepared = snapshot.prepare(&plan);
    let sel1 = NeuronSelection::all(16);
    let sel3 = NeuronSelection::from_indices(vec![0, 3, 6], 8);
    let taps = [(1usize, &sel1), (3usize, &sel3)];
    let mut observer = PreparedObserver::new();
    let inputs = probes(8);

    // Warm-up: grow every buffer to its high-water shape, including the
    // largest micro-batch this test will serve.
    for _ in 0..3 {
        std::hint::black_box(observer.observe(&prepared, &inputs, taps.iter().copied()));
    }

    // Steady state: many consecutive micro-batches, including smaller
    // ones (shrinking must reuse, never reallocate), with the exact
    // allocation count pinned at zero.
    let before = ALLOCATIONS.load(Ordering::Relaxed); // ordering: relaxed — quiescent read
    for round in 0..100 {
        let take = [8usize, 3, 1, 5][round % 4];
        let rows = observer.observe(&prepared, &inputs[..take], taps.iter().copied());
        assert_eq!(rows.len(), take);
        std::hint::black_box(rows);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed); // ordering: relaxed — quiescent read
    assert_eq!(
        after - before,
        0,
        "a warmed PreparedObserver must not touch the allocator in steady state"
    );
}
