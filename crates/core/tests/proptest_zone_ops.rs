//! Cross-backend equivalence under arbitrary **operation interleavings**:
//! `BddZone` and `ExactZone` must implement the same set semantics not
//! just for build-then-query usage, but for any order of `insert`,
//! `enlarge_to`, `absorb`, `contains` and `distance_to_seeds` — in
//! particular the post-`enlarge_to` `insert` path that online enrichment
//! (`Monitor::enrich`) leans on.
//!
//! Every generated program is applied to both backends in lockstep; after
//! each query op the answers are compared, and after the whole program
//! the backends are swept over the **entire** pattern space (width 8 →
//! 256 probes), so any divergence in the stored set is caught, not just
//! divergence at sampled probes.

use naps_core::{BddZone, ExactZone, Pattern, Zone};
use proptest::prelude::*;

const WIDTH: usize = 8;

fn pattern() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), WIDTH)
}

/// One interpreted operation: `(kind, pattern, gamma, other_seeds)`.
/// The surplus fields are ignored by kinds that do not need them — the
/// vendored proptest has no `prop_oneof`, so ops are decoded from a
/// uniform tuple shape.
type RawOp = (u8, Vec<bool>, u32, Vec<Vec<bool>>);

fn op() -> impl Strategy<Value = RawOp> {
    (
        0u8..5,
        pattern(),
        0u32..4,
        proptest::collection::vec(pattern(), 1..4),
    )
}

fn program() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec(op(), 1..12)
}

/// Applies `program` to both backends in lockstep, comparing every query
/// answer, then sweeps the full space.
fn run_program(program: &[RawOp]) {
    let mut bdd = BddZone::empty(WIDTH);
    let mut exact = ExactZone::empty(WIDTH);
    for (step, (kind, bits, gamma, other_seeds)) in program.iter().enumerate() {
        let p = Pattern::from_bools(bits);
        match kind {
            0 => {
                bdd.insert(&p);
                exact.insert(&p);
            }
            1 => {
                // Zones only grow: clamp to the current gamma.
                let g = (*gamma).max(bdd.gamma());
                bdd.enlarge_to(g);
                exact.enlarge_to(g);
            }
            2 => {
                // Absorb a shard built from the same seeds on each side
                // (the shard's own gamma is irrelevant to absorb).
                let mut other_bdd = BddZone::empty(WIDTH);
                let mut other_exact = ExactZone::empty(WIDTH);
                for s in other_seeds {
                    let sp = Pattern::from_bools(s);
                    other_bdd.insert(&sp);
                    other_exact.insert(&sp);
                }
                let g = *gamma % 2;
                other_bdd.enlarge_to(g);
                other_exact.enlarge_to(g);
                bdd.absorb(&other_bdd);
                exact.absorb(&other_exact);
            }
            3 => {
                assert_eq!(
                    bdd.contains(&p),
                    exact.contains(&p),
                    "contains diverged at step {step} on {p}"
                );
            }
            _ => {
                assert_eq!(
                    bdd.distance_to_seeds(&p),
                    exact.distance_to_seeds(&p),
                    "distance diverged at step {step} on {p}"
                );
            }
        }
        assert_eq!(bdd.gamma(), exact.gamma(), "gamma diverged at step {step}");
        assert_eq!(
            bdd.seed_count(),
            exact.seed_count(),
            "seed_count diverged at step {step}"
        );
    }
    // Full-space sweep: the stored sets are identical, not merely
    // indistinguishable at the probed points.
    for m in 0..(1u32 << WIDTH) {
        let bits: Vec<bool> = (0..WIDTH).map(|i| (m >> i) & 1 == 1).collect();
        let probe = Pattern::from_bools(&bits);
        assert_eq!(
            bdd.contains(&probe),
            exact.contains(&probe),
            "contains diverged in final sweep at {m:08b}"
        );
        assert_eq!(
            bdd.distance_to_seeds(&probe),
            exact.distance_to_seeds(&probe),
            "distance diverged in final sweep at {m:08b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings keep the backends equivalent.
    #[test]
    fn backends_agree_under_op_interleavings(prog in program()) {
        run_program(&prog);
    }
}

#[test]
fn enrich_shaped_interleaving_agrees() {
    // The exact shape the live-update path produces: build, enlarge,
    // then keep inserting (and absorbing a late shard) post-enlargement.
    let as_ops: Vec<RawOp> = vec![
        (
            0,
            vec![true, false, true, false, true, false, true, false],
            0,
            vec![],
        ),
        (0, vec![false; WIDTH], 0, vec![]),
        (1, vec![false; WIDTH], 2, vec![]), // enlarge to 2
        (0, vec![true; WIDTH], 0, vec![]),  // post-enlarge insert
        (
            3,
            vec![true, true, true, true, true, true, true, false],
            0,
            vec![],
        ), // query
        (
            2,
            vec![false; WIDTH],
            1,
            vec![vec![false, true, false, true, false, true, false, true]],
        ),
        (
            0,
            vec![true, true, false, false, true, true, false, false],
            0,
            vec![],
        ),
        (
            4,
            vec![true, false, false, false, false, false, false, false],
            0,
            vec![],
        ),
    ];
    run_program(&as_ops);
}
