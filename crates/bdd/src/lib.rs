//! Reduced ordered binary decision diagrams (ROBDDs) for activation-pattern
//! monitors.
//!
//! This crate is the storage substrate of the *runtime neuron activation
//! pattern monitoring* approach (Cheng, Nührenberg, Yasuoka; DATE 2019): a
//! set of binary neuron on/off patterns `{0,1}^d` is stored as the
//! characteristic function of a BDD with `d` variables.  The paper's
//! `γ`-comfort-zone construction (Algorithm 1) enlarges a stored set with all
//! patterns within Hamming distance `γ` via repeated existential
//! quantification; [`Bdd::dilate_once`] and [`Bdd::dilate`] implement exactly
//! that operation.
//!
//! # Design
//!
//! * One [`Bdd`] manager owns an arena of hash-consed nodes, so structural
//!   equality coincides with semantic equality and membership queries walk at
//!   most one node per variable (the paper's "linear in the number of
//!   monitored neurons" claim).
//! * Functions are referenced by [`NodeId`]; they stay valid for the lifetime
//!   of the manager (arena allocation, no garbage collection — monitors are
//!   built once and then queried).
//! * All boolean connectives are memoised through an operation cache.
//!
//! # Example
//!
//! ```
//! use naps_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(3);
//! // Store the pattern set {001}.
//! let f = bdd.cube_from_bools(&[false, false, true]);
//! // Enlarge by Hamming distance 1 (Algorithm 1, line 12).
//! let z1 = bdd.dilate_once(f);
//! assert!(bdd.eval(z1, &[false, false, true]));  // the seed
//! assert!(bdd.eval(z1, &[true, false, true]));   // distance 1
//! assert!(!bdd.eval(z1, &[true, true, true]));   // distance 2
//! ```

mod compiled;
mod dot;
mod error;
mod hamming;
mod manager;
mod ops;
mod quant;
mod reorder;
mod sat;
mod serialize;

pub use compiled::{
    bit_slice_block, pack_words, CompiledPath, CompiledZone, SMALL_ZONE_MAX_PATTERNS,
};
pub use error::BddError;
pub use manager::{Bdd, BddStats, NodeId, VarId};
pub use sat::SatIter;
pub use serialize::BddSnapshot;
