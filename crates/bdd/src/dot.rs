//! Graphviz DOT export for inspection and documentation figures.

use crate::manager::{Bdd, NodeId};
use std::collections::HashSet;
use std::fmt::Write as _;

impl Bdd {
    /// Renders the diagram rooted at `f` in Graphviz DOT syntax.
    ///
    /// Solid edges are `high` (variable = 1) branches, dashed edges are
    /// `low` branches, following the usual BDD drawing convention.
    ///
    /// # Example
    ///
    /// ```
    /// use naps_bdd::Bdd;
    ///
    /// let mut bdd = Bdd::new(2);
    /// let x0 = bdd.var(0);
    /// let x1 = bdd.var(1);
    /// let f = bdd.and(x0, x1);
    /// let dot = bdd.to_dot(f, "and");
    /// assert!(dot.contains("digraph"));
    /// ```
    pub fn to_dot(&self, f: NodeId, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  t0 [label=\"0\", shape=box];");
        let _ = writeln!(out, "  t1 [label=\"1\", shape=box];");

        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || seen.contains(&n) {
                continue;
            }
            seen.insert(n);
            let node = self.nodes[n.index()];
            let _ = writeln!(
                out,
                "  n{} [label=\"x{}\", shape=circle];",
                n.index(),
                node.var
            );
            let _ = writeln!(
                out,
                "  n{} -> {} [style=dashed];",
                n.index(),
                dot_target(node.low)
            );
            let _ = writeln!(out, "  n{} -> {};", n.index(), dot_target(node.high));
            stack.push(node.low);
            stack.push(node.high);
        }
        if f.is_terminal() {
            let _ = writeln!(out, "  root -> {};", dot_target(f));
            let _ = writeln!(out, "  root [shape=point];");
        }
        out.push_str("}\n");
        out
    }
}

fn dot_target(n: NodeId) -> String {
    match n {
        NodeId::ZERO => "t0".to_owned(),
        NodeId::ONE => "t1".to_owned(),
        other => format!("n{}", other.index()),
    }
}

#[cfg(test)]
mod tests {
    use crate::Bdd;

    #[test]
    fn dot_contains_all_decision_nodes() {
        let mut bdd = Bdd::new(3);
        let f = bdd.cube_from_bools(&[true, false, true]);
        let dot = bdd.to_dot(f, "cube");
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("x2"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_terminal_has_root_marker() {
        let bdd = Bdd::new(2);
        let dot = bdd.to_dot(bdd.one(), "true");
        assert!(dot.contains("root"));
        assert!(dot.contains("t1"));
    }

    #[test]
    fn dashed_edges_mark_low_branches() {
        let mut bdd = Bdd::new(1);
        let f = bdd.var(0);
        let dot = bdd.to_dot(f, "v");
        assert!(dot.contains("style=dashed"));
    }
}
