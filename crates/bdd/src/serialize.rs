//! Snapshot serialization: persist a function (e.g. a built comfort zone)
//! and restore it into a fresh manager, for monitor deployment.

use crate::error::BddError;
use crate::manager::{Bdd, NodeId, VarId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Memo byte meaning "no satisfying assignment within the remaining
/// budget" in [`BddSnapshot::min_hamming_distance_within`].  Budgets at
/// or above this value fall back to the unbounded sweep.
const BOUNDED_NONE: u8 = 0xFE;
/// Memo byte meaning "state not computed yet".
const BOUNDED_UNVISITED: u8 = 0xFF;

/// A self-contained, manager-independent dump of one BDD function.
///
/// Nodes are stored in topological order (children before parents), with
/// indices `0` and `1` reserved for the terminals, so restoring is a single
/// forward pass of hash-consing insertions.
///
/// # Example
///
/// ```
/// use naps_bdd::{Bdd, BddSnapshot};
///
/// let mut bdd = Bdd::new(3);
/// let f = bdd.cube_from_bools(&[true, false, true]);
/// let z = bdd.dilate_once(f);
/// let snap = BddSnapshot::capture(&bdd, z);
///
/// let mut fresh = Bdd::new(3);
/// let restored = snap.restore(&mut fresh)?;
/// assert!(fresh.eval(restored, &[true, false, true]));
/// # Ok::<(), naps_bdd::BddError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BddSnapshot {
    num_vars: usize,
    /// `(var, low, high)` triples; `low`/`high` index into this list shifted
    /// by 2 (0 and 1 denote the terminals).
    nodes: Vec<(VarId, u32, u32)>,
    /// Index (same encoding) of the root.
    root: u32,
}

impl BddSnapshot {
    /// Captures the function rooted at `root` from `bdd`.
    pub fn capture(bdd: &Bdd, root: NodeId) -> Self {
        let mut order: Vec<NodeId> = Vec::new();
        let mut index_of: HashMap<NodeId, u32> = HashMap::new();
        // Iterative post-order so children precede parents.
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if n.is_terminal() || index_of.contains_key(&n) {
                continue;
            }
            if expanded {
                index_of.insert(n, order.len() as u32 + 2);
                order.push(n);
            } else {
                stack.push((n, true));
                stack.push((bdd.low(n), false));
                stack.push((bdd.high(n), false));
            }
        }
        let encode = |n: NodeId, index_of: &HashMap<NodeId, u32>| -> u32 {
            match n {
                NodeId::ZERO => 0,
                NodeId::ONE => 1,
                other => index_of[&other],
            }
        };
        let nodes = order
            .iter()
            .map(|&n| {
                (
                    // naps-lint: allow(typed_errors, "n iterates this bdd's decision-node set, for which node_var is always Some; terminals were filtered out above")
                    bdd.node_var(n).expect("decision node"),
                    encode(bdd.low(n), &index_of),
                    encode(bdd.high(n), &index_of),
                )
            })
            .collect();
        BddSnapshot {
            num_vars: bdd.num_vars(),
            nodes,
            root: encode(root, &index_of),
        }
    }

    /// Number of variables the captured function was defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of decision nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Raw topo-ordered node array for the compile-time lowering in
    /// [`crate::compiled`] (children precede parents; indices shifted by
    /// 2, with `0`/`1` the terminals).
    pub(crate) fn raw_nodes(&self) -> &[(VarId, u32, u32)] {
        &self.nodes
    }

    /// Raw root entry (same encoding as the node children).
    pub(crate) fn raw_root(&self) -> u32 {
        self.root
    }

    /// Evaluates the captured function under a full assignment without
    /// restoring it into a manager: a single root-to-terminal walk over the
    /// immutable node array.
    ///
    /// This is the lock-free serving path of `naps-serve`: a snapshot is
    /// plain data with no caches or interior mutability, so any number of
    /// threads can evaluate one `Arc<BddSnapshot>` concurrently, each query
    /// touching at most one node per variable.  Agrees bit-for-bit with
    /// [`Bdd::eval`] on the restored function.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length must equal the variable count"
        );
        let mut cur = self.root;
        while cur >= 2 {
            let (var, low, high) = self.nodes[cur as usize - 2];
            cur = if assignment[var as usize] { high } else { low };
        }
        cur == 1
    }

    /// Minimum Hamming distance from `pattern` to any satisfying assignment
    /// of the captured function, or `None` if it is unsatisfiable — the
    /// snapshot counterpart of [`Bdd::min_hamming_distance`], again without
    /// a manager.
    ///
    /// Because snapshot nodes are stored children-before-parents, the
    /// shortest-path recursion becomes a single bottom-up sweep over the
    /// node array: no recursion, no hashing, one `Option<u32>` per node.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance(&self, pattern: &[bool]) -> Option<u32> {
        assert_eq!(
            pattern.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        // dist[i] = min flips to reach ONE from entry i (terminals at 0, 1).
        let mut dist: Vec<Option<u32>> = Vec::with_capacity(self.nodes.len() + 2);
        dist.push(None); // ZERO
        dist.push(Some(0)); // ONE
        for &(var, low, high) in &self.nodes {
            let (agree, disagree) = if pattern[var as usize] {
                (high, low)
            } else {
                (low, high)
            };
            let d_agree = dist[agree as usize];
            let d_disagree = dist[disagree as usize].map(|d| d.saturating_add(1));
            dist.push(match (d_agree, d_disagree) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            });
        }
        dist[self.root as usize]
    }

    /// Budget-bounded [`BddSnapshot::min_hamming_distance`]: the minimum
    /// Hamming distance from `pattern` to any satisfying assignment, but
    /// only if it is at most `budget` — `None` otherwise (conflating
    /// "unsatisfiable" with "further than the budget").
    ///
    /// Where the unbounded query sweeps the **entire** node array
    /// bottom-up, this one searches top-down from the root and prunes
    /// every branch whose accumulated flips exceed `budget`, with two
    /// early exits: a pattern inside the set is answered by one
    /// [`BddSnapshot::eval`] walk (distance 0), and a pattern far from
    /// the whole set exhausts the budget near the root and returns
    /// `None` after touching only the pruned frontier.  Memoisation is
    /// per `(node, remaining budget)` — worst case `O(nodes × budget)`,
    /// typically a small fraction of the array for the graded monitor's
    /// budgets (≤ γ + 2).
    ///
    /// This is the serving-path query behind `naps-serve`'s graded
    /// verdicts: like [`BddSnapshot::eval`] it takes `&self` on plain
    /// immutable data, so any number of threads may query one
    /// `Arc<BddSnapshot>` concurrently.  Agrees with the unbounded query
    /// whenever the true distance is within `budget` (pinned by property
    /// tests against both the unbounded sweep and the manager DP).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance_within(&self, pattern: &[bool], budget: u32) -> Option<u32> {
        assert_eq!(
            pattern.len(),
            self.num_vars,
            "pattern length must equal the variable count"
        );
        if self.eval(pattern) {
            return Some(0);
        }
        if self.root == 0 {
            return None;
        }
        // A budget at or beyond the variable count cannot prune (every
        // distance fits), and very large budgets do not fit the compact
        // memo encoding; both degenerate to the flat full sweep, which
        // is the faster algorithm exactly when nothing can be pruned.
        if budget as usize >= self.num_vars || budget >= BOUNDED_NONE as u32 {
            return self.min_hamming_distance(pattern).filter(|&d| d <= budget);
        }
        // Flat memo, one byte per (node, remaining-budget) state: the
        // pruned frontier is usually a small fraction of
        // `nodes × (budget + 1)`, and byte states keep the memo cheap to
        // allocate and cache-resident (a HashMap's hashing costs more
        // than the DP itself at these sizes).
        let stride = budget as usize + 1;
        let mut memo = vec![BOUNDED_UNVISITED; (self.nodes.len() + 2) * stride];
        let d = self.bounded_dist_rec(self.root, pattern, budget, stride, &mut memo);
        (d != BOUNDED_NONE).then_some(u32::from(d))
    }

    /// Minimum flips to reach the `1` terminal from `entry`, provided it
    /// is ≤ `slack` ([`BOUNDED_NONE`] otherwise).  Recursion depth is
    /// bounded by the variable count (children carry strictly larger
    /// variables).
    fn bounded_dist_rec(
        &self,
        entry: u32,
        pattern: &[bool],
        slack: u32,
        stride: usize,
        memo: &mut [u8],
    ) -> u8 {
        if entry == 1 {
            return 0;
        }
        if entry == 0 {
            return BOUNDED_NONE;
        }
        if slack == 0 {
            return self.agree_walk(entry, pattern, stride, memo);
        }
        let key = entry as usize * stride + slack as usize;
        let cached = memo[key];
        if cached != BOUNDED_UNVISITED {
            return cached;
        }
        let (var, low, high) = self.nodes[entry as usize - 2];
        let (agree, disagree) = if pattern[var as usize] {
            (high, low)
        } else {
            (low, high)
        };
        let d_agree = self.bounded_dist_rec(agree, pattern, slack, stride, memo);
        // The disagreeing branch costs one flip: prune it outright when
        // the budget is spent, skip it when it cannot beat the agreeing
        // branch (its result is ≥ 1, so `d_agree ≤ 1` is unbeatable),
        // and otherwise search it only up to the slack where a win is
        // still possible (`sub + 1 < d_agree` ⇒ `sub ≤ d_agree − 2`;
        // when `d_agree` is `BOUNDED_NONE` the `min` leaves the full
        // `slack − 1`).  The branch-and-bound keeps far-from-everything
        // queries from expanding frontiers that cannot change the
        // answer.
        let d = if d_agree <= 1 {
            d_agree
        } else {
            let sub_slack = (slack - 1).min(u32::from(d_agree) - 2);
            match self.bounded_dist_rec(disagree, pattern, sub_slack, stride, memo) {
                BOUNDED_NONE => d_agree,
                sub => d_agree.min(sub + 1),
            }
        };
        memo[key] = d;
        d
    }

    /// The `slack == 0` base layer of the bounded DP: with no flips
    /// left, only agreeing edges may be followed, so the search is a
    /// straight chain walk (at most one node per variable) — iterated
    /// rather than recursed, with the verdict memoised along the whole
    /// chain.  This is the innermost, most-visited layer: every
    /// disagreeing descent eventually exhausts its budget here.
    fn agree_walk(&self, entry: u32, pattern: &[bool], stride: usize, memo: &mut [u8]) -> u8 {
        let mut cur = entry;
        let verdict = loop {
            if cur == 1 {
                break 0;
            }
            if cur == 0 {
                break BOUNDED_NONE;
            }
            let cached = memo[cur as usize * stride];
            if cached != BOUNDED_UNVISITED {
                break cached;
            }
            let (var, low, high) = self.nodes[cur as usize - 2];
            cur = if pattern[var as usize] { high } else { low };
        };
        // Second pass: stamp the verdict onto every chain node so later
        // descents reaching any of them stop immediately.
        let mut cur = entry;
        loop {
            if cur <= 1 || memo[cur as usize * stride] != BOUNDED_UNVISITED {
                break;
            }
            memo[cur as usize * stride] = verdict;
            let (var, low, high) = self.nodes[cur as usize - 2];
            cur = if pattern[var as usize] { high } else { low };
        }
        verdict
    }

    /// Structurally validates the snapshot **without** a manager: every
    /// child index must precede its parent, variables must be in range and
    /// respect the order, nodes must be reduced, and the root must be in
    /// bounds.  A snapshot passing this check is safe to query via
    /// [`BddSnapshot::eval`] / [`BddSnapshot::min_hamming_distance`] (both
    /// index unchecked along the happy path) and will restore cleanly into
    /// a manager of the right width.
    ///
    /// This is the integrity gate for snapshots read back from disk (e.g.
    /// `naps-serve`'s `FrozenMonitor::load`), where the bytes may be
    /// truncated or hand-edited.
    ///
    /// # Errors
    ///
    /// [`BddError::CorruptSnapshot`] if a child or root index points at or
    /// past its own definition, [`BddError::MalformedSnapshot`] if a node
    /// violates reducedness or the variable order.
    pub fn validate(&self) -> Result<(), BddError> {
        for (i, &(var, low, high)) in self.nodes.iter().enumerate() {
            let slot = i + 2;
            if low as usize >= slot || high as usize >= slot {
                return Err(BddError::CorruptSnapshot { index: i });
            }
            if (var as usize) >= self.num_vars {
                return Err(BddError::MalformedSnapshot {
                    reason: "node variable out of range",
                });
            }
            if low == high {
                return Err(BddError::MalformedSnapshot {
                    reason: "node is not reduced (low == high)",
                });
            }
            for child in [low, high] {
                if child >= 2 {
                    let child_var = self.nodes[child as usize - 2].0;
                    if child_var <= var {
                        return Err(BddError::MalformedSnapshot {
                            reason: "variable ordering violated",
                        });
                    }
                }
            }
        }
        if self.root as usize >= self.nodes.len() + 2 {
            return Err(BddError::CorruptSnapshot {
                index: self.root as usize,
            });
        }
        Ok(())
    }

    /// Rebuilds the function inside `bdd`, returning its root.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VarCountMismatch`] if `bdd` was created with a
    /// different variable count, plus everything
    /// [`BddSnapshot::validate`] rejects.
    pub fn restore(&self, bdd: &mut Bdd) -> Result<NodeId, BddError> {
        if self.num_vars != bdd.num_vars() {
            return Err(BddError::VarCountMismatch {
                expected: self.num_vars,
                actual: bdd.num_vars(),
            });
        }
        self.validate()?;
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.nodes.len() + 2);
        ids.push(NodeId::ZERO);
        ids.push(NodeId::ONE);
        for &(var, low, high) in &self.nodes {
            let lo = ids[low as usize];
            let hi = ids[high as usize];
            ids.push(bdd.mk_node(var, lo, hi));
        }
        Ok(ids[self.root as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_semantics() {
        let mut bdd = Bdd::new(5);
        let p = bdd.cube_from_bools(&[true, false, true, false, true]);
        let q = bdd.cube_from_bools(&[false, true, false, true, false]);
        let u = bdd.or(p, q);
        let z = bdd.dilate(u, 1);
        let snap = BddSnapshot::capture(&bdd, z);

        let mut fresh = Bdd::new(5);
        let r = snap.restore(&mut fresh).expect("restore");
        for m in 0..32usize {
            let a: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(bdd.eval(z, &a), fresh.eval(r, &a), "assignment {a:?}");
        }
    }

    #[test]
    fn terminal_snapshots_roundtrip() {
        let bdd = Bdd::new(3);
        for t in [bdd.zero(), bdd.one()] {
            let snap = BddSnapshot::capture(&bdd, t);
            assert_eq!(snap.node_count(), 0);
            let mut fresh = Bdd::new(3);
            assert_eq!(snap.restore(&mut fresh).expect("restore"), t);
        }
    }

    #[test]
    fn var_count_mismatch_is_reported() {
        let mut bdd = Bdd::new(3);
        let f = bdd.var(0);
        let snap = BddSnapshot::capture(&bdd, f);
        let mut fresh = Bdd::new(4);
        assert_eq!(
            snap.restore(&mut fresh),
            Err(BddError::VarCountMismatch {
                expected: 3,
                actual: 4
            })
        );
    }

    #[test]
    fn corrupt_child_index_is_rejected() {
        let snap = BddSnapshot {
            num_vars: 2,
            nodes: vec![(0, 5, 1)],
            root: 2,
        };
        let mut fresh = Bdd::new(2);
        assert!(matches!(
            snap.restore(&mut fresh),
            Err(BddError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn unreduced_node_is_rejected() {
        let snap = BddSnapshot {
            num_vars: 2,
            nodes: vec![(0, 1, 1)],
            root: 2,
        };
        let mut fresh = Bdd::new(2);
        assert!(matches!(
            snap.restore(&mut fresh),
            Err(BddError::MalformedSnapshot { .. })
        ));
    }

    #[test]
    fn validate_accepts_captured_snapshots() {
        let mut bdd = Bdd::new(4);
        let f = bdd_sample(&mut bdd);
        let snap = BddSnapshot::capture(&bdd, f);
        assert_eq!(snap.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_bounds_root() {
        let snap = BddSnapshot {
            num_vars: 2,
            nodes: vec![(0, 0, 1)],
            root: 9,
        };
        assert!(matches!(
            snap.validate(),
            Err(BddError::CorruptSnapshot { index: 9 })
        ));
    }

    #[test]
    fn validate_rejects_order_violations() {
        // Child's variable (0) is not below its parent's (1).
        let snap = BddSnapshot {
            num_vars: 2,
            nodes: vec![(0, 0, 1), (1, 2, 1)],
            root: 3,
        };
        assert!(snap.validate().is_err());
        // Swapping the variables fixes it.
        let ok = BddSnapshot {
            num_vars: 2,
            nodes: vec![(1, 0, 1), (0, 2, 1)],
            root: 3,
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn restore_into_populated_manager_shares_structure() {
        let mut a = Bdd::new(4);
        let f = bdd_sample(&mut a);
        let snap = BddSnapshot::capture(&a, f);
        // Restoring into the same manager returns the identical node.
        let restored = snap.restore(&mut a).expect("restore");
        assert_eq!(restored, f);
    }

    fn bdd_sample(bdd: &mut Bdd) -> NodeId {
        let p = bdd.cube_from_bools(&[true, true, false, false]);
        let q = bdd.cube_from_bools(&[false, true, true, false]);
        bdd.or(p, q)
    }

    #[test]
    fn bounded_snapshot_distance_matches_unbounded_within_budget() {
        let mut bdd = Bdd::new(5);
        let p = bdd.cube_from_bools(&[true, false, true, false, true]);
        let q = bdd.cube_from_bools(&[false, true, false, true, false]);
        let u = bdd.or(p, q);
        let snap = BddSnapshot::capture(&bdd, u);
        for m in 0..32usize {
            let probe: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let exact = snap.min_hamming_distance(&probe);
            for budget in 0..=5u32 {
                assert_eq!(
                    snap.min_hamming_distance_within(&probe, budget),
                    exact.filter(|&d| d <= budget),
                    "probe {probe:?} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn bounded_snapshot_distance_on_terminals() {
        let bdd = Bdd::new(3);
        let empty = BddSnapshot::capture(&bdd, bdd.zero());
        let full = BddSnapshot::capture(&bdd, bdd.one());
        assert_eq!(empty.min_hamming_distance_within(&[true; 3], 3), None);
        assert_eq!(full.min_hamming_distance_within(&[true; 3], 0), Some(0));
    }

    #[test]
    fn serde_json_roundtrip() {
        let mut bdd = Bdd::new(4);
        let f = bdd_sample(&mut bdd);
        let snap = BddSnapshot::capture(&bdd, f);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: BddSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(snap, back);
    }
}
