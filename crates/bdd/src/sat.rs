//! Satisfying-assignment counting and enumeration.

use crate::manager::{Bdd, NodeId};
use std::collections::HashMap;

impl Bdd {
    /// Number of satisfying assignments (patterns in the stored set),
    /// computed exactly over the full variable set and returned as `f64`
    /// because counts reach `2^d` for monitored layers of width `d`.
    ///
    /// Overflows to `f64::INFINITY` beyond roughly 1023 variables; use
    /// [`Bdd::sat_fraction`] when a normalized measure is needed at any
    /// width.
    pub fn sat_count(&self, f: NodeId) -> f64 {
        // Fraction-of-space semantics keeps skipped levels trivial, then
        // scale by 2^num_vars at the end.
        self.sat_fraction(f) * (2f64).powi(self.num_vars as i32)
    }

    /// Fraction of the full assignment space `{0,1}^d` satisfying `f`,
    /// in `[0, 1]`.
    ///
    /// Unlike [`Bdd::sat_count`] this never overflows: each level halves
    /// the weight instead of doubling a count, so the result is finite
    /// (and exact up to `f64` rounding) for any variable count — including
    /// `d = 0`, where the constant `ONE` yields `1.0` (the empty pattern
    /// is the whole space) and `ZERO` yields `0.0`.
    pub fn sat_fraction(&self, f: NodeId) -> f64 {
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.sat_frac(f, &mut memo)
    }

    fn sat_frac(&self, f: NodeId, memo: &mut HashMap<NodeId, f64>) -> f64 {
        if f == NodeId::ZERO {
            return 0.0;
        }
        if f == NodeId::ONE {
            return 1.0;
        }
        if let Some(&v) = memo.get(&f) {
            return v;
        }
        let node = self.nodes[f.index()];
        let v = 0.5 * self.sat_frac(node.low, memo) + 0.5 * self.sat_frac(node.high, memo);
        memo.insert(f, v);
        v
    }

    /// One satisfying assignment, or `None` when `f` is the empty set.
    ///
    /// Unconstrained variables are reported as `false`.
    pub fn first_sat(&self, f: NodeId) -> Option<Vec<bool>> {
        if f == NodeId::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.num_vars];
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.nodes[cur.index()];
            if node.low != NodeId::ZERO {
                assignment[node.var as usize] = false;
                cur = node.low;
            } else {
                assignment[node.var as usize] = true;
                cur = node.high;
            }
        }
        debug_assert_eq!(cur, NodeId::ONE);
        Some(assignment)
    }

    /// Iterator over all satisfying assignments of `f`.
    ///
    /// Enumerates full assignments (free variables expanded both ways), so
    /// the iterator yields exactly [`Bdd::sat_count`] items; use it only on
    /// sets known to be small (tests, diagnostics, the exact-set ablation).
    pub fn sat_iter(&self, f: NodeId) -> SatIter<'_> {
        let mut it = SatIter {
            bdd: self,
            stack: Vec::new(),
        };
        if f != NodeId::ZERO {
            it.stack.push((f, 0, vec![false; self.num_vars]));
        }
        it
    }
}

/// Iterator over satisfying assignments produced by [`Bdd::sat_iter`].
#[derive(Debug)]
pub struct SatIter<'a> {
    bdd: &'a Bdd,
    /// (node, next level to decide, partial assignment).
    stack: Vec<(NodeId, u32, Vec<bool>)>,
}

impl Iterator for SatIter<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, level, assignment)) = self.stack.pop() {
            if level as usize == self.bdd.num_vars {
                debug_assert_eq!(node, NodeId::ONE);
                return Some(assignment);
            }
            let node_level = self.bdd.level(node);
            if node_level > level {
                // Free variable at `level`: branch both ways.
                let mut with_true = assignment.clone();
                with_true[level as usize] = true;
                self.stack.push((node, level + 1, with_true));
                let mut with_false = assignment;
                with_false[level as usize] = false;
                self.stack.push((node, level + 1, with_false));
            } else {
                let n = self.bdd.nodes[node.index()];
                if n.high != NodeId::ZERO {
                    let mut with_true = assignment.clone();
                    with_true[level as usize] = true;
                    self.stack.push((n.high, level + 1, with_true));
                }
                if n.low != NodeId::ZERO {
                    let mut with_false = assignment;
                    with_false[level as usize] = false;
                    self.stack.push((n.low, level + 1, with_false));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::Bdd;
    use std::collections::HashSet;

    #[test]
    fn sat_count_terminals() {
        let bdd = Bdd::new(4);
        assert_eq!(bdd.sat_count(bdd.zero()), 0.0);
        assert_eq!(bdd.sat_count(bdd.one()), 16.0);
    }

    #[test]
    fn sat_fraction_is_finite_at_any_width() {
        // 1200 variables: sat_count overflows to infinity, the fraction
        // must not.
        let mut bdd = Bdd::new(1200);
        assert_eq!(bdd.sat_fraction(bdd.one()), 1.0);
        assert_eq!(bdd.sat_fraction(bdd.zero()), 0.0);
        let f = bdd.var(17);
        assert_eq!(bdd.sat_fraction(f), 0.5);
        assert!(bdd.sat_count(bdd.one()).is_infinite());
    }

    #[test]
    fn sat_fraction_of_zero_width_space() {
        let bdd = Bdd::new(0);
        assert_eq!(bdd.sat_fraction(bdd.one()), 1.0);
        assert_eq!(bdd.sat_fraction(bdd.zero()), 0.0);
    }

    #[test]
    fn sat_count_single_cube_is_one() {
        let mut bdd = Bdd::new(6);
        let f = bdd.cube_from_bools(&[true, false, true, false, false, true]);
        assert_eq!(bdd.sat_count(f), 1.0);
    }

    #[test]
    fn sat_count_var_is_half_space() {
        let mut bdd = Bdd::new(5);
        let f = bdd.var(2);
        assert_eq!(bdd.sat_count(f), 16.0);
    }

    #[test]
    fn sat_count_union_of_disjoint_cubes_adds() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, true, false, false]);
        let q = bdd.cube_from_bools(&[false, false, true, true]);
        let f = bdd.or(p, q);
        assert_eq!(bdd.sat_count(f), 2.0);
    }

    #[test]
    fn first_sat_is_satisfying() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[false, true, false, true]);
        let q = bdd.cube_from_bools(&[true, true, true, true]);
        let f = bdd.or(p, q);
        let a = bdd.first_sat(f).expect("nonempty");
        assert!(bdd.eval(f, &a));
        assert_eq!(bdd.first_sat(bdd.zero()), None);
    }

    #[test]
    fn sat_iter_enumerates_exactly_the_set() {
        let mut bdd = Bdd::new(4);
        let p = bdd.cube_from_bools(&[true, false, false, false]);
        let q = bdd.cube_from_bools(&[false, true, false, true]);
        let r = bdd.cube_from_bools(&[true, true, true, true]);
        let pq = bdd.or(p, q);
        let f = bdd.or(pq, r);
        let got: HashSet<Vec<bool>> = bdd.sat_iter(f).collect();
        let expect: HashSet<Vec<bool>> = [
            vec![true, false, false, false],
            vec![false, true, false, true],
            vec![true, true, true, true],
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn sat_iter_expands_free_variables() {
        let mut bdd = Bdd::new(3);
        let f = bdd.var(1); // x1, free x0 and x2 -> 4 assignments
        let got: Vec<Vec<bool>> = bdd.sat_iter(f).collect();
        assert_eq!(got.len(), 4);
        for a in &got {
            assert!(a[1]);
        }
    }

    #[test]
    fn sat_iter_count_matches_sat_count_after_dilation() {
        let mut bdd = Bdd::new(6);
        let f = bdd.cube_from_bools(&[true, false, true, false, true, false]);
        let z = bdd.dilate(f, 2);
        let enumerated = bdd.sat_iter(z).count();
        assert_eq!(enumerated as f64, bdd.sat_count(z));
        // |ball(radius 2)| over 6 bits = 1 + 6 + 15 = 22
        assert_eq!(enumerated, 22);
    }

    #[test]
    fn sat_iter_of_empty_set_is_empty() {
        let bdd = Bdd::new(3);
        assert_eq!(bdd.sat_iter(bdd.zero()).count(), 0);
    }
}
