//! Compiled zone evaluators: the serving-time lowering of a
//! [`BddSnapshot`].
//!
//! A snapshot is already a flat, topo-ordered node array, but the serving
//! hot path still *interprets* it: one root-to-terminal walk per pattern,
//! each step a data-dependent branch and a data-dependent load.  This
//! module lowers a snapshot once — at freeze/publish time — into a
//! [`CompiledZone`] that answers the same queries faster, keeping the BDD
//! as the ground truth (every compiled query is pinned bit-identical to
//! the walked snapshot by property tests):
//!
//! * **Flat walk** — the node array re-packed into cache-friendly 12-byte
//!   [`CompiledNode`]s, stepped with branch-free select (`low ^ ((low ^
//!   high) & mask)`) over the pattern's packed `u64` words, so the only
//!   unpredictable thing left is the address stream.
//! * **Bit-sliced block evaluation** ([`CompiledZone::eval_block`]) — 64
//!   patterns packed one-bit-per-lane answer membership in a *single*
//!   pass over the node array: a reachability mask flows root-to-leaves
//!   with two AND/OR pairs per node.  This is the natural shape for the
//!   engine's micro-batches; [`CompiledZone::eval_many`] transposes
//!   pattern words into variable lanes (a 64×64 bit-matrix transpose per
//!   word column) and picks sliced vs. scalar by a cost model.
//! * **Small-zone index** — when the zone holds at most
//!   [`SMALL_ZONE_MAX_PATTERNS`] patterns, compilation enumerates them
//!   outright and membership becomes a range check (contiguous sets) or a
//!   binary search over sorted keys; min-Hamming becomes a popcount scan.
//!   Seed sets — queried for the distance column of *every* verdict — are
//!   almost always this shape.
//! * **Bounded min-Hamming** — the budget-pruned top-down search
//!   ([`BddSnapshot::min_hamming_distance_within`]) ported onto the same
//!   compiled structure, so graded verdicts ride the compiled path too.
//!
//! Compiled evaluators are **derived, never serialized**: persistence
//! stores snapshots only, and loading recompiles (deterministically — a
//! recompiled evaluator is `==` to a freshly frozen one).

use crate::manager::VarId;
use crate::serialize::BddSnapshot;

/// Memo byte meaning "no satisfying assignment within the remaining
/// budget" (mirrors the walked snapshot's encoding).
const BOUNDED_NONE: u8 = 0xFE;
/// Memo byte meaning "state not computed yet".
const BOUNDED_UNVISITED: u8 = 0xFF;

/// Sentinel for "unreachable" in the flat min-Hamming sweep.
const DIST_NONE: u32 = u32::MAX;

/// Zones with at most this many satisfying patterns compile to the
/// enumerated small-zone index (sorted keys or a contiguous interval)
/// instead of the node-array evaluators.  Chosen so the index stays a few
/// cache lines per zone and compile-time enumeration stays microseconds.
pub const SMALL_ZONE_MAX_PATTERNS: u64 = 2048;

/// Use the bit-sliced block evaluator instead of per-pattern scalar walks
/// when a group holds at least this many patterns (below it, transposing
/// costs more than it saves).
const SLICED_MIN_GROUP: usize = 8;

/// One lowered decision node: `(var, low, high)` with child indices in
/// the same `0`/`1`-are-terminals encoding as [`BddSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledNode {
    var: VarId,
    low: u32,
    high: u32,
}

/// Which evaluator a [`CompiledZone`] dispatches membership to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledPath {
    /// Contiguous small zone: membership is `lo <= key <= hi`.
    Interval,
    /// Enumerated small zone: binary search over sorted keys.
    SortedKeys,
    /// Node-array evaluation (scalar walk, or bit-sliced for batches).
    FlatWalk,
}

/// The enumerated form of a small zone.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SmallIndex {
    /// All patterns of a contiguous single-word range (sorted keys that
    /// happen to be `lo, lo+1, …, hi`) — membership is two compares.
    /// Only constructed for widths ≤ 64.
    Interval { lo: u64, hi: u64 },
    /// Sorted pattern keys, `stride` words each, compared as word slices.
    /// Empty `keys` encodes the empty zone (membership is always false).
    Sorted { stride: usize, keys: Vec<u64> },
}

/// A [`BddSnapshot`] lowered for serving: flat branch-free evaluation,
/// bit-sliced batch evaluation, an enumerated fast path for small zones,
/// and budget-bounded min-Hamming on the same structure.
///
/// All queries take `&self` on plain immutable data — like the snapshot
/// it was compiled from, any number of threads may share one compiled
/// zone.  Patterns are passed as packed `u64` words, least-significant
/// bit of word 0 = variable 0 (the layout `naps-core`'s `Pattern` already
/// stores); [`pack_words`] converts a `&[bool]` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledZone {
    num_vars: usize,
    /// Words per packed pattern (`ceil(num_vars / 64)`).
    words_per_pattern: usize,
    nodes: Vec<CompiledNode>,
    root: u32,
    small: Option<SmallIndex>,
}

impl CompiledZone {
    /// Lowers `snapshot` into a compiled evaluator.  Deterministic: equal
    /// snapshots compile to equal (`==`) evaluators, which is what lets
    /// persistence stay snapshot-only.
    ///
    /// The snapshot must be structurally valid (freshly captured, or
    /// gated through [`BddSnapshot::validate`] when read from disk) — the
    /// compiled evaluators index it unchecked.
    pub fn compile(snapshot: &BddSnapshot) -> Self {
        let mut zone = Self::compile_flat_only(snapshot);
        if zone.num_vars > 0 {
            if let Some(count) = zone.bounded_sat_count(SMALL_ZONE_MAX_PATTERNS) {
                zone.small = Some(zone.build_small_index(count));
            }
        }
        zone
    }

    /// Lowers `snapshot` without the small-zone index, so every query
    /// runs the node-array evaluators.  The compiled-≡-walked property
    /// tests use this to pin the flat and bit-sliced paths even on zones
    /// small enough that [`CompiledZone::compile`] would index them.
    pub fn compile_flat_only(snapshot: &BddSnapshot) -> Self {
        CompiledZone {
            num_vars: snapshot.num_vars(),
            words_per_pattern: snapshot.num_vars().div_ceil(64),
            nodes: snapshot
                .raw_nodes()
                .iter()
                .map(|&(var, low, high)| CompiledNode { var, low, high })
                .collect(),
            root: snapshot.raw_root(),
            small: None,
        }
    }

    /// Number of variables (pattern width).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of lowered decision nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Packed words per pattern (`ceil(num_vars / 64)`).
    pub fn words_per_pattern(&self) -> usize {
        self.words_per_pattern
    }

    /// Which fast path membership queries take.
    pub fn path(&self) -> CompiledPath {
        match &self.small {
            Some(SmallIndex::Interval { .. }) => CompiledPath::Interval,
            Some(SmallIndex::Sorted { .. }) => CompiledPath::SortedKeys,
            None => CompiledPath::FlatWalk,
        }
    }

    /// Patterns in the small-zone index (`None` when compiled to the
    /// flat walk).
    pub fn small_len(&self) -> Option<usize> {
        match &self.small {
            Some(SmallIndex::Interval { lo, hi }) => Some((hi - lo + 1) as usize),
            Some(SmallIndex::Sorted { stride, keys }) => {
                Some(if *stride == 0 { 0 } else { keys.len() / stride })
            }
            None => None,
        }
    }

    // -----------------------------------------------------------------
    // Membership
    // -----------------------------------------------------------------

    /// Membership of one packed pattern — the compiled counterpart of
    /// [`BddSnapshot::eval`], bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than [`CompiledZone::words_per_pattern`].
    pub fn eval_words(&self, words: &[u64]) -> bool {
        assert!(
            words.len() >= self.words_per_pattern,
            "pattern words too short for {} variables",
            self.num_vars
        );
        match &self.small {
            Some(index) => self.small_contains(index, words),
            None => self.eval_flat(words),
        }
    }

    /// Membership of a `&[bool]` assignment (packs, then queries) — the
    /// oracle-shaped entry the property tests drive.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn eval_bools(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment width");
        self.eval_words(&pack_words(assignment))
    }

    /// The flat branch-free walk (used when no small index exists; pub
    /// so tests can pin it independently of dispatch).
    // naps-lint: allow-fn(panic_freedom, "cur >= 2 guards the node-slot offset; node vars are < num_vars in a validated snapshot, so var>>6 < words_per_pattern, and every caller asserts words is at least that long")
    fn eval_flat(&self, words: &[u64]) -> bool {
        let mut cur = self.root;
        while cur >= 2 {
            let n = self.nodes[cur as usize - 2];
            let bit = (words[(n.var >> 6) as usize] >> (n.var & 63)) & 1;
            // Branch-free select: mask is all-ones when the variable is
            // set, so `cur` becomes `high`; all-zeros keeps `low`.
            let mask = (bit as u32).wrapping_neg();
            cur = n.low ^ ((n.low ^ n.high) & mask);
        }
        cur == 1
    }

    /// Bit-sliced membership of up to 64 patterns in one pass over the
    /// node array.
    ///
    /// `var_words[v]` holds variable `v` of all lanes: bit `j` is pattern
    /// `j`'s value of variable `v` (see [`bit_slice_block`]).  `lanes`
    /// masks the occupied lanes; the returned word has bit `j` set iff
    /// lane `j`'s pattern is in the zone (bits outside `lanes` are 0).
    ///
    /// One reachability mask flows from the root towards the terminals:
    /// nodes are topo-ordered children-before-parents, so a single
    /// reverse iteration visits parents first, splitting each node's
    /// arrived lanes between its children with two ANDs — ~6 word ops
    /// per node for 64 patterns, vs. 64 dependent-load walks.
    ///
    /// # Panics
    ///
    /// Panics if `var_words.len() < num_vars`.
    // naps-lint: allow-fn(panic_freedom, "var_words.len() >= num_vars is asserted on entry; root and child slots index the validated topo-ordered node array (terminals are peeled off before subtracting 2)")
    pub fn eval_block(&self, var_words: &[u64], lanes: u64) -> u64 {
        assert!(
            var_words.len() >= self.num_vars,
            "need one sliced word per variable"
        );
        if self.root < 2 {
            return if self.root == 1 { lanes } else { 0 };
        }
        // reach[i] = lanes that arrive at node slot i (terminals folded
        // into `one` below; the root is the highest slot by construction
        // of the topo order).
        let mut reach = vec![0u64; self.nodes.len()];
        reach[self.root as usize - 2] = lanes;
        let mut one = 0u64;
        for idx in (0..self.nodes.len()).rev() {
            let m = reach[idx];
            if m == 0 {
                continue;
            }
            let n = self.nodes[idx];
            let highs = m & var_words[n.var as usize];
            let lows = m & !var_words[n.var as usize];
            for (child, lanes_to) in [(n.high, highs), (n.low, lows)] {
                if child >= 2 {
                    reach[child as usize - 2] |= lanes_to;
                } else if child == 1 {
                    one |= lanes_to;
                }
            }
        }
        one
    }

    /// Membership of many packed patterns, choosing the cheapest
    /// evaluator per group: the small-zone index when one exists,
    /// otherwise bit-sliced blocks of 64 when the group is large enough
    /// to amortise one pass over the node array
    /// (`node_count <= group × width`, at least [`SLICED_MIN_GROUP`]),
    /// falling back to scalar walks.  Bit-identical to calling
    /// [`CompiledZone::eval_words`] per pattern.
    pub fn eval_many(&self, patterns: &[&[u64]]) -> Vec<bool> {
        if self.small.is_some() || patterns.len() < SLICED_MIN_GROUP {
            return patterns.iter().map(|w| self.eval_words(w)).collect();
        }
        let amortised =
            self.nodes.len() as u64 <= patterns.len() as u64 * self.num_vars.max(1) as u64;
        if !amortised {
            return patterns.iter().map(|w| self.eval_words(w)).collect();
        }
        let mut out = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(64) {
            let var_words = bit_slice_block(chunk, self.words_per_pattern, self.num_vars);
            let lanes = if chunk.len() == 64 {
                u64::MAX
            } else {
                (1u64 << chunk.len()) - 1
            };
            let hits = self.eval_block(&var_words, lanes);
            for j in 0..chunk.len() {
                out.push((hits >> j) & 1 == 1);
            }
        }
        out
    }

    // naps-lint: allow-fn(panic_freedom, "Interval is built only for single-word zones and Sorted returns early on stride 0; callers assert words.len() >= words_per_pattern == stride")
    fn small_contains(&self, index: &SmallIndex, words: &[u64]) -> bool {
        match index {
            SmallIndex::Interval { lo, hi } => {
                let key = words[0];
                *lo <= key && key <= *hi
            }
            SmallIndex::Sorted { stride, keys } => {
                if *stride == 0 {
                    return false;
                }
                let probe = &words[..*stride];
                keys.chunks_exact(*stride)
                    .collect::<Vec<_>>()
                    .binary_search_by(|k| (*k).cmp(probe))
                    .is_ok()
            }
        }
    }

    // -----------------------------------------------------------------
    // Min-Hamming distance
    // -----------------------------------------------------------------

    /// Minimum Hamming distance from the packed pattern to any pattern in
    /// the zone, `None` for the empty zone — the compiled counterpart of
    /// [`BddSnapshot::min_hamming_distance`], bit-identical to it.
    ///
    /// Small zones scan their enumerated keys with XOR + popcount; flat
    /// zones run the bottom-up sweep over the node array with a `u32`
    /// sentinel array (no `Option` branching).
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than [`CompiledZone::words_per_pattern`].
    pub fn min_hamming_distance_words(&self, words: &[u64]) -> Option<u32> {
        assert!(
            words.len() >= self.words_per_pattern,
            "pattern words too short for {} variables",
            self.num_vars
        );
        match &self.small {
            Some(index) => self.small_min_hamming(index, words, u32::MAX),
            None => self.flat_min_hamming(words),
        }
    }

    /// `&[bool]` convenience for the property tests.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance_bools(&self, pattern: &[bool]) -> Option<u32> {
        assert_eq!(pattern.len(), self.num_vars, "pattern width");
        self.min_hamming_distance_words(&pack_words(pattern))
    }

    /// Budget-bounded [`CompiledZone::min_hamming_distance_words`]:
    /// `Some(d)` iff the distance `d` is at most `budget` — bit-identical
    /// to [`BddSnapshot::min_hamming_distance_within`], which it lowers
    /// onto the compiled structure (same memo layout, same
    /// branch-and-bound, same degenerate-budget fallback), so graded
    /// verdicts ride the compiled path.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than [`CompiledZone::words_per_pattern`].
    pub fn min_hamming_distance_within_words(&self, words: &[u64], budget: u32) -> Option<u32> {
        assert!(
            words.len() >= self.words_per_pattern,
            "pattern words too short for {} variables",
            self.num_vars
        );
        if let Some(index) = &self.small {
            return self.small_min_hamming(index, words, budget);
        }
        if self.eval_flat(words) {
            return Some(0);
        }
        if self.root == 0 {
            return None;
        }
        // Degenerate budgets cannot prune (or don't fit the byte memo):
        // fall back to the full sweep, exactly like the walked query.
        if budget as usize >= self.num_vars || budget >= BOUNDED_NONE as u32 {
            return self.flat_min_hamming(words).filter(|&d| d <= budget);
        }
        let stride = budget as usize + 1;
        let mut memo = vec![BOUNDED_UNVISITED; (self.nodes.len() + 2) * stride];
        let d = self.bounded_rec(self.root, words, budget, stride, &mut memo);
        (d != BOUNDED_NONE).then_some(u32::from(d))
    }

    /// `&[bool]` convenience for the property tests.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != num_vars`.
    pub fn min_hamming_distance_within_bools(&self, pattern: &[bool], budget: u32) -> Option<u32> {
        assert_eq!(pattern.len(), self.num_vars, "pattern width");
        self.min_hamming_distance_within_words(&pack_words(pattern), budget)
    }

    /// Popcount scan over the enumerated keys; `budget == u32::MAX`
    /// means unbounded.  The minimum XOR-popcount over exactly the
    /// satisfying assignments *is* the min-Hamming distance, so this
    /// agrees with the node-array sweeps by construction.
    // naps-lint: allow-fn(panic_freedom, "Interval is built only for single-word zones; callers assert words.len() >= words_per_pattern, and zip bounds the key iteration")
    fn small_min_hamming(&self, index: &SmallIndex, words: &[u64], budget: u32) -> Option<u32> {
        let mut best = u32::MAX;
        match index {
            SmallIndex::Interval { lo, hi } => {
                let key = words[0];
                for k in *lo..=*hi {
                    best = best.min((k ^ key).count_ones());
                    if best == 0 {
                        break;
                    }
                }
            }
            SmallIndex::Sorted { stride, keys } => {
                if *stride == 0 {
                    return None;
                }
                for k in keys.chunks_exact(*stride) {
                    let d: u32 = k.iter().zip(words).map(|(a, b)| (a ^ b).count_ones()).sum();
                    best = best.min(d);
                    if best == 0 {
                        break;
                    }
                }
            }
        }
        (best != u32::MAX && best <= budget).then_some(best)
    }

    /// Bottom-up sweep with a `u32` sentinel array: one pass over the
    /// node array, `DIST_NONE` standing in for "unreachable" so the inner
    /// loop is pure integer min/add.
    // naps-lint: allow-fn(panic_freedom, "dist has one slot per node plus the two terminals; child and root offsets are in range for a validated topo-ordered snapshot, and i+2 is node i's own slot")
    fn flat_min_hamming(&self, words: &[u64]) -> Option<u32> {
        if self.root < 2 {
            return (self.root == 1).then_some(0);
        }
        let mut dist = vec![0u32; self.nodes.len() + 2];
        dist[0] = DIST_NONE;
        dist[1] = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            let bit = (words[(n.var >> 6) as usize] >> (n.var & 63)) & 1;
            let (agree, disagree) = if bit == 1 {
                (n.high, n.low)
            } else {
                (n.low, n.high)
            };
            let a = dist[agree as usize];
            let d = dist[disagree as usize];
            let d1 = if d == DIST_NONE { DIST_NONE } else { d + 1 };
            dist[i + 2] = a.min(d1);
        }
        let d = dist[self.root as usize];
        (d != DIST_NONE).then_some(d)
    }

    /// The budget-pruned top-down search of the walked snapshot, ported
    /// verbatim onto the compiled node array (same `(node, slack)` memo,
    /// same branch-and-bound slack tightening, same slack-0 agree-chain
    /// walk) — structure and visit order are identical, so results are
    /// too.
    // naps-lint: allow-fn(panic_freedom, "memo spans (node_count + 2) * stride bytes and key = entry * stride + slack with slack < stride, so every validated entry fits; terminals return before the node-slot offset")
    fn bounded_rec(
        &self,
        entry: u32,
        words: &[u64],
        slack: u32,
        stride: usize,
        memo: &mut [u8],
    ) -> u8 {
        if entry == 1 {
            return 0;
        }
        if entry == 0 {
            return BOUNDED_NONE;
        }
        if slack == 0 {
            return self.agree_walk(entry, words, stride, memo);
        }
        let key = entry as usize * stride + slack as usize;
        let cached = memo[key];
        if cached != BOUNDED_UNVISITED {
            return cached;
        }
        let n = self.nodes[entry as usize - 2];
        let bit = (words[(n.var >> 6) as usize] >> (n.var & 63)) & 1;
        let (agree, disagree) = if bit == 1 {
            (n.high, n.low)
        } else {
            (n.low, n.high)
        };
        let d_agree = self.bounded_rec(agree, words, slack, stride, memo);
        let d = if d_agree <= 1 {
            d_agree
        } else {
            let sub_slack = (slack - 1).min(u32::from(d_agree) - 2);
            match self.bounded_rec(disagree, words, sub_slack, stride, memo) {
                BOUNDED_NONE => d_agree,
                sub => d_agree.min(sub + 1),
            }
        };
        memo[key] = d;
        d
    }

    /// Slack-0 base layer: only agreeing edges may be followed, so the
    /// search is a straight chain walk, memoised along the whole chain.
    // naps-lint: allow-fn(panic_freedom, "cur > 1 guards every memo probe and node-slot offset; memo spans (node_count + 2) * stride bytes, covering cur * stride for every validated node index")
    fn agree_walk(&self, entry: u32, words: &[u64], stride: usize, memo: &mut [u8]) -> u8 {
        let step = |cur: u32| {
            let n = self.nodes[cur as usize - 2];
            let bit = (words[(n.var >> 6) as usize] >> (n.var & 63)) & 1;
            if bit == 1 {
                n.high
            } else {
                n.low
            }
        };
        let mut cur = entry;
        let verdict = loop {
            if cur == 1 {
                break 0;
            }
            if cur == 0 {
                break BOUNDED_NONE;
            }
            let cached = memo[cur as usize * stride];
            if cached != BOUNDED_UNVISITED {
                break cached;
            }
            cur = step(cur);
        };
        let mut cur = entry;
        while cur > 1 && memo[cur as usize * stride] == BOUNDED_UNVISITED {
            memo[cur as usize * stride] = verdict;
            cur = step(cur);
        }
        verdict
    }

    // -----------------------------------------------------------------
    // Compilation of the small-zone index
    // -----------------------------------------------------------------

    /// Exact satisfying-assignment count when it is at most `limit`,
    /// `None` otherwise.  Bottom-up over the topo-ordered array with
    /// saturating arithmetic: skipped levels double the child's count.
    // naps-lint: allow-fn(panic_freedom, "counts has one slot per node plus the two terminals; children precede parents in a validated topo order, so every child offset was already written")
    fn bounded_sat_count(&self, limit: u64) -> Option<u64> {
        let level = |entry: u32| -> u32 {
            if entry < 2 {
                self.num_vars as u32
            } else {
                self.nodes[entry as usize - 2].var
            }
        };
        // Saturating `count << levels` — each variable level skipped
        // between a node and its child doubles the child's count.
        let shifted = |count: u64, levels: u32| -> u64 {
            if count == 0 {
                0
            } else if levels >= 64 || count > (u64::MAX >> levels) {
                u64::MAX
            } else {
                count << levels
            }
        };
        // counts[entry] = satisfying assignments over the variables from
        // the entry's own level down (children precede parents, so one
        // forward pass suffices).
        let mut counts = vec![0u64; self.nodes.len() + 2];
        counts[1] = 1;
        for (i, n) in self.nodes.iter().enumerate() {
            let low = shifted(counts[n.low as usize], level(n.low) - n.var - 1);
            let high = shifted(counts[n.high as usize], level(n.high) - n.var - 1);
            counts[i + 2] = low.saturating_add(high);
        }
        // Variables above the root's level are free as well.
        let total = match self.root {
            0 => 0,
            1 => shifted(1, self.num_vars as u32),
            r => shifted(counts[r as usize], level(r)),
        };
        (total <= limit).then_some(total)
    }

    /// Enumerates the zone's `count` satisfying patterns into sorted
    /// packed keys, collapsing to an interval when they are contiguous.
    // naps-lint: allow-fn(panic_freedom, "keys_flat's length is a multiple of stride and key indices stay below keys_flat.len()/stride; lvl < num_vars makes lvl>>6 < stride; compile-time only, never on the serving path")
    fn build_small_index(&self, count: u64) -> SmallIndex {
        let stride = self.words_per_pattern;
        let mut keys_flat: Vec<u64> = Vec::with_capacity(count as usize * stride);
        // Stack of (entry, next level to decide, partial key).
        let mut stack: Vec<(u32, u32, Vec<u64>)> = Vec::new();
        if self.root != 0 {
            stack.push((self.root, 0, vec![0u64; stride]));
        }
        let level = |entry: u32| -> u32 {
            if entry < 2 {
                self.num_vars as u32
            } else {
                self.nodes[entry as usize - 2].var
            }
        };
        while let Some((entry, lvl, key)) = stack.pop() {
            if lvl as usize == self.num_vars {
                debug_assert_eq!(entry, 1);
                keys_flat.extend_from_slice(&key);
                continue;
            }
            if level(entry) > lvl {
                // Free variable: branch both ways.
                let mut with_true = key.clone();
                with_true[(lvl >> 6) as usize] |= 1u64 << (lvl & 63);
                stack.push((entry, lvl + 1, with_true));
                stack.push((entry, lvl + 1, key));
            } else {
                let n = self.nodes[entry as usize - 2];
                if n.high != 0 {
                    let mut with_true = key.clone();
                    with_true[(lvl >> 6) as usize] |= 1u64 << (lvl & 63);
                    stack.push((n.high, lvl + 1, with_true));
                }
                if n.low != 0 {
                    stack.push((n.low, lvl + 1, key));
                }
            }
        }
        // Sort keys as word slices so membership can binary-search.
        let mut indexed: Vec<usize> = (0..keys_flat.len() / stride.max(1)).collect();
        if stride > 0 {
            indexed.sort_by(|&a, &b| {
                keys_flat[a * stride..(a + 1) * stride]
                    .cmp(&keys_flat[b * stride..(b + 1) * stride])
            });
        }
        let sorted: Vec<u64> = indexed
            .iter()
            .flat_map(|&i| keys_flat[i * stride..(i + 1) * stride].iter().copied())
            .collect();
        if stride == 1 && !sorted.is_empty() {
            let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
            if hi - lo + 1 == sorted.len() as u64 {
                return SmallIndex::Interval { lo, hi };
            }
        }
        SmallIndex::Sorted {
            stride,
            keys: sorted,
        }
    }
}

/// Packs a `&[bool]` assignment into `u64` words, least-significant bit
/// of word 0 = variable 0 — the layout [`CompiledZone`] queries take and
/// `naps-core`'s `Pattern` stores.
// naps-lint: allow-fn(panic_freedom, "words has ceil(bits.len()/64) entries, so i/64 is in range for every bit index i")
pub fn pack_words(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

/// Transposes up to 64 packed patterns into variable lanes for
/// [`CompiledZone::eval_block`]: the returned vector has one word per
/// variable, bit `j` of word `v` = pattern `j`'s variable `v`.  Patterns
/// beyond the chunk are zero lanes (mask them via the `lanes` argument).
///
/// Uses a 64×64 bit-matrix transpose per word column (`O(64 log 64)` word
/// ops) rather than per-bit extraction.
// naps-lint: allow-fn(panic_freedom, "at most 64 lanes is asserted, so block[j] is in range; each lane carries words_per_pattern words by the documented layout; base + take <= num_vars bounds the copy")
pub fn bit_slice_block(patterns: &[&[u64]], words_per_pattern: usize, num_vars: usize) -> Vec<u64> {
    assert!(patterns.len() <= 64, "at most 64 lanes per block");
    let mut out = vec![0u64; num_vars];
    let mut block = [0u64; 64];
    for w in 0..words_per_pattern {
        for b in block.iter_mut() {
            *b = 0;
        }
        for (j, p) in patterns.iter().enumerate() {
            block[j] = p[w];
        }
        transpose64(&mut block);
        let base = w * 64;
        let take = num_vars.saturating_sub(base).min(64);
        out[base..base + take].copy_from_slice(&block[..take]);
    }
    out
}

/// In-place 64×64 bit-matrix transpose: afterwards, bit `r` of word `c`
/// equals bit `c` of the original word `r`.
// naps-lint: allow-fn(panic_freedom, "a is a fixed 64-word array and the butterfly iteration keeps bit j of k clear, so k and k + j both stay below 64")
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // LSB-first orientation: compare the high half of `a[k]`
            // with the low half of `a[k + j]` and swap the difference.
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Bdd;

    fn snapshot_of(
        build: impl FnOnce(&mut Bdd) -> crate::manager::NodeId,
        vars: usize,
    ) -> BddSnapshot {
        let mut bdd = Bdd::new(vars);
        let f = build(&mut bdd);
        BddSnapshot::capture(&bdd, f)
    }

    #[test]
    fn transpose64_matches_naive() {
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64) << 17;
        }
        let original = a;
        transpose64(&mut a);
        for (r, row) in original.iter().enumerate() {
            for (c, col) in a.iter().enumerate() {
                assert_eq!(
                    (col >> r) & 1,
                    (row >> c) & 1,
                    "bit ({r},{c}) transposed wrong"
                );
            }
        }
        // Involution.
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn compiled_eval_matches_snapshot_all_paths() {
        let snap = snapshot_of(
            |bdd| {
                let p = bdd.cube_from_bools(&[true, false, true, false, true]);
                let q = bdd.cube_from_bools(&[false, true, false, true, false]);
                let u = bdd.or(p, q);
                bdd.dilate(u, 1)
            },
            5,
        );
        let compiled = CompiledZone::compile(&snap);
        let flat = CompiledZone::compile_flat_only(&snap);
        assert_eq!(flat.path(), CompiledPath::FlatWalk);
        for m in 0..32usize {
            let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let expect = snap.eval(&bits);
            assert_eq!(compiled.eval_bools(&bits), expect, "dispatch {m:05b}");
            assert_eq!(flat.eval_bools(&bits), expect, "flat {m:05b}");
        }
        // Bit-sliced: all 32 assignments in one block.
        let packed: Vec<Vec<u64>> = (0..32usize)
            .map(|m| {
                let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
                pack_words(&bits)
            })
            .collect();
        let refs: Vec<&[u64]> = packed.iter().map(|w| w.as_slice()).collect();
        let var_words = bit_slice_block(&refs, 1, 5);
        let hits = flat.eval_block(&var_words, (1u64 << 32) - 1);
        for (m, r) in refs.iter().enumerate() {
            assert_eq!((hits >> m) & 1 == 1, flat.eval_words(r), "lane {m}");
        }
    }

    #[test]
    fn small_zone_builds_interval_or_sorted_index() {
        // A dilated cube over 6 vars: small, not contiguous.
        let snap = snapshot_of(
            |bdd| {
                let f = bdd.cube_from_bools(&[true, false, true, false, true, false]);
                bdd.dilate(f, 1)
            },
            6,
        );
        let compiled = CompiledZone::compile(&snap);
        assert_ne!(compiled.path(), CompiledPath::FlatWalk);
        assert_eq!(compiled.small_len(), Some(7)); // 1 + 6 neighbours
                                                   // Contiguous: variables 2.. free, var 0 and 1 fixed false — the
                                                   // keys {k : bits 0,1 clear} over 3 vars are {0, 4} — not
                                                   // contiguous; instead force a truly contiguous set: all patterns
                                                   // with var 2 = anything, vars 0..2 forming 0..=3.
        let snap = snapshot_of(
            |bdd| {
                let a = bdd.nvar(2); // bit 2 clear -> keys 0..=3 over 3 vars
                a
            },
            3,
        );
        let compiled = CompiledZone::compile(&snap);
        assert_eq!(compiled.path(), CompiledPath::Interval);
        assert_eq!(compiled.small_len(), Some(4));
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(compiled.eval_bools(&bits), snap.eval(&bits));
        }
    }

    #[test]
    fn empty_and_full_zones_compile() {
        let empty = snapshot_of(|bdd| bdd.zero(), 4);
        let full = snapshot_of(|bdd| bdd.one(), 4);
        let ce = CompiledZone::compile(&empty);
        let cf = CompiledZone::compile(&full);
        for m in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert!(!ce.eval_bools(&bits));
            assert!(cf.eval_bools(&bits));
            assert_eq!(ce.min_hamming_distance_bools(&bits), None);
            assert_eq!(cf.min_hamming_distance_bools(&bits), Some(0));
        }
        // Full zone over 4 vars has 16 patterns: small, contiguous.
        assert_eq!(cf.path(), CompiledPath::Interval);
    }

    #[test]
    fn width_zero_zones_compile() {
        let empty = snapshot_of(|bdd| bdd.zero(), 0);
        let full = snapshot_of(|bdd| bdd.one(), 0);
        let ce = CompiledZone::compile(&empty);
        let cf = CompiledZone::compile(&full);
        assert!(!ce.eval_bools(&[]));
        assert!(cf.eval_bools(&[]));
        assert_eq!(ce.min_hamming_distance_bools(&[]), None);
        assert_eq!(cf.min_hamming_distance_bools(&[]), Some(0));
        assert_eq!(cf.min_hamming_distance_within_bools(&[], 0), Some(0));
        assert_eq!(ce.min_hamming_distance_within_bools(&[], 0), None);
    }

    #[test]
    fn distances_match_snapshot_on_both_paths() {
        let snap = snapshot_of(
            |bdd| {
                let p = bdd.cube_from_bools(&[true, false, true, false, true, true]);
                let q = bdd.cube_from_bools(&[false, true, false, true, false, false]);
                bdd.or(p, q)
            },
            6,
        );
        let compiled = CompiledZone::compile(&snap);
        let flat = CompiledZone::compile_flat_only(&snap);
        for m in 0..64usize {
            let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let expect = snap.min_hamming_distance(&bits);
            assert_eq!(compiled.min_hamming_distance_bools(&bits), expect);
            assert_eq!(flat.min_hamming_distance_bools(&bits), expect);
            for budget in 0..=7u32 {
                let expect = snap.min_hamming_distance_within(&bits, budget);
                assert_eq!(
                    compiled.min_hamming_distance_within_bools(&bits, budget),
                    expect,
                    "small path m={m} budget={budget}"
                );
                assert_eq!(
                    flat.min_hamming_distance_within_bools(&bits, budget),
                    expect,
                    "flat path m={m} budget={budget}"
                );
            }
        }
    }

    #[test]
    fn eval_many_agrees_with_scalar_across_group_sizes() {
        let snap = snapshot_of(
            |bdd| {
                let p = bdd.cube_from_bools(&[true; 8]);
                bdd.dilate(p, 3)
            },
            8,
        );
        for zone in [
            CompiledZone::compile(&snap),
            CompiledZone::compile_flat_only(&snap),
        ] {
            let packed: Vec<Vec<u64>> = (0..256usize)
                .map(|m| {
                    let bits: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
                    pack_words(&bits)
                })
                .collect();
            for take in [0usize, 1, 7, 8, 63, 64, 65, 200, 256] {
                let refs: Vec<&[u64]> = packed[..take].iter().map(|w| w.as_slice()).collect();
                let many = zone.eval_many(&refs);
                for (r, got) in refs.iter().zip(&many) {
                    assert_eq!(*got, zone.eval_words(r));
                }
            }
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let snap = snapshot_of(
            |bdd| {
                let p = bdd.cube_from_bools(&[true, false, true, false]);
                bdd.dilate(p, 1)
            },
            4,
        );
        assert_eq!(CompiledZone::compile(&snap), CompiledZone::compile(&snap));
    }

    #[test]
    fn wide_patterns_use_multi_word_keys() {
        // 70 variables: two words per pattern.
        let mut bits = vec![false; 70];
        bits[0] = true;
        bits[69] = true;
        let snap = snapshot_of(|bdd| bdd.cube_from_bools(&bits), 70);
        let compiled = CompiledZone::compile(&snap);
        assert_eq!(compiled.path(), CompiledPath::SortedKeys);
        assert_eq!(compiled.small_len(), Some(1));
        assert!(compiled.eval_bools(&bits));
        let mut off = bits.clone();
        off[35] = true;
        assert!(!compiled.eval_bools(&off));
        assert_eq!(compiled.min_hamming_distance_bools(&off), Some(1));
        assert_eq!(compiled.min_hamming_distance_within_bools(&off, 0), None);
        assert_eq!(compiled.min_hamming_distance_within_bools(&off, 1), Some(1));
    }
}
